//! A vendored, offline subset of the `criterion` benchmark API.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the slice of criterion its benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId::from_parameter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple — per benchmark it runs a short
//! warm-up, then `sample_size` timed samples of an adaptively chosen
//! iteration count, and prints min / median / max per-iteration times.
//! Good enough to compare orders of magnitude and spot regressions by eye;
//! not a substitute for the real crate's analysis.

use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// computation whose result is unused.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark context handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named parameter for per-input benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendering the parameter with `Display`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to the measured closure; `iter` does the timing.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of the routine.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Picks an iteration count so one sample takes roughly 10ms, then times
/// `samples` samples and prints a one-line summary.
fn run_benchmark(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: run once, scale the count toward ~10ms per sample.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(10);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, c| a.partial_cmp(c).expect("times are finite"));
    let fmt = |s: f64| {
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            format!("{:.3} us", s * 1e6)
        } else {
            format!("{:.1} ns", s * 1e9)
        }
    };
    println!(
        "bench {name:<50} min {:>12} med {:>12} max {:>12} ({} samples x {} iters)",
        fmt(times[0]),
        fmt(times[times.len() / 2]),
        fmt(times[times.len() - 1]),
        samples,
        iters,
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
