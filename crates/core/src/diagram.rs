//! Architecture diagrams: render a [`System`]'s topology as Graphviz dot.
//!
//! The output mirrors the paper's box-and-line figures (Figs. 2, 13, 14):
//! components as boxes, each connector as a cluster containing its send
//! ports, channel, and receive ports, with edges following the message
//! flow. `pnp-check --dot` exposes this for `.pnp` specifications.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::system::{Role, System};

impl System {
    /// Renders the architectural topology as a Graphviz dot graph.
    ///
    /// Components appear as boxes; every connector becomes a cluster with
    /// its ports and channel; edges run `component -> send port -> channel
    /// -> receive port -> component` along the message flow.
    pub fn to_dot(&self) -> String {
        let mut out = String::from(
            "digraph architecture {\n  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n",
        );

        // Group connector parts by connector name.
        let mut clusters: HashMap<&str, Vec<(usize, &Role)>> = HashMap::new();
        let mut components: Vec<(usize, &str)> = Vec::new();
        for (pid, role) in self.topology().iter() {
            match role {
                Role::Component { name } => components.push((pid.index(), name)),
                Role::SendPort { connector, .. }
                | Role::RecvPort { connector, .. }
                | Role::Channel { connector, .. }
                | Role::EventBroker { connector }
                | Role::FusedConnector { connector, .. } => {
                    clusters
                        .entry(connector)
                        .or_default()
                        .push((pid.index(), role));
                }
            }
        }

        for (pid, name) in &components {
            let _ = writeln!(out, "  p{pid} [shape=box, style=bold, label=\"{name}\"];");
        }

        let mut cluster_names: Vec<&&str> = clusters.keys().collect();
        cluster_names.sort();
        for (i, cname) in cluster_names.iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{i} {{");
            let _ = writeln!(out, "    label=\"{cname}\"; style=dashed;");
            for (pid, role) in &clusters[**cname] {
                let (shape, label) = match role {
                    Role::SendPort { kind, .. } => ("cds", kind.name().to_string()),
                    Role::RecvPort { kind, .. } => ("cds", kind.name()),
                    Role::Channel { kind, .. } => ("box3d", kind.name()),
                    Role::EventBroker { .. } => ("box3d", "EventBroker".to_string()),
                    Role::FusedConnector { kind, .. } => ("box3d", kind.name()),
                    Role::Component { .. } => unreachable!(),
                };
                let _ = writeln!(out, "    p{pid} [shape={shape}, label=\"{label}\"];");
            }
            let _ = writeln!(out, "  }}");
        }

        // Message-flow edges inside each connector: send ports feed the
        // channel; the channel feeds the receive ports.
        for cname in &cluster_names {
            let parts = &clusters[**cname];
            let hubs: Vec<usize> = parts
                .iter()
                .filter(|(_, r)| {
                    matches!(
                        r,
                        Role::Channel { .. }
                            | Role::EventBroker { .. }
                            | Role::FusedConnector { .. }
                    )
                })
                .map(|(pid, _)| *pid)
                .collect();
            for &hub in &hubs {
                for (pid, role) in parts {
                    match role {
                        Role::SendPort { .. } => {
                            let _ = writeln!(out, "  p{pid} -> p{hub};");
                        }
                        Role::RecvPort { .. } => {
                            let _ = writeln!(out, "  p{hub} -> p{pid};");
                        }
                        _ => {}
                    }
                }
            }
        }

        // Component <-> port wiring, recorded when components were built.
        for (pid, name) in &components {
            let Some((sends, recvs)) = self.wiring_for(name) else {
                continue;
            };
            for label in sends {
                if let Some(port_pid) = self.pid_of_port(label) {
                    let _ = writeln!(out, "  p{pid} -> p{port_pid};");
                }
            }
            for label in recvs {
                if let Some(port_pid) = self.pid_of_port(label) {
                    let _ = writeln!(out, "  p{port_pid} -> p{pid};");
                }
            }
        }

        out.push_str("}\n");
        out
    }

    /// The pid of the process whose program name equals the port label.
    fn pid_of_port(&self, label: &str) -> Option<usize> {
        self.program()
            .processes()
            .iter()
            .position(|p| p.name() == label)
    }
}

#[cfg(test)]
mod tests {
    use crate::{
        ChannelKind, ComponentBuilder, ReceiveBinds, RecvPortKind, SendPortKind, SystemBuilder,
    };

    #[test]
    fn dot_contains_every_role_and_the_wiring() {
        let mut sys = SystemBuilder::new();
        let conn = sys.connector("wire", ChannelKind::Fifo { capacity: 2 });
        let tx = sys.send_port(conn, SendPortKind::AsynBlocking);
        let rx = sys.recv_port(conn, RecvPortKind::blocking());

        let mut producer = ComponentBuilder::new("producer");
        let p0 = producer.location("s0");
        let p1 = producer.location("s1");
        producer.mark_end(p1);
        producer.send_msg(p0, p1, &tx, 1.into(), 0.into(), None);

        let mut consumer = ComponentBuilder::new("consumer");
        let c0 = consumer.location("s0");
        let c1 = consumer.location("s1");
        consumer.mark_end(c1);
        consumer.recv_msg(c0, c1, &rx, None, ReceiveBinds::ignore());

        sys.add_component(producer);
        sys.add_component(consumer);
        let system = sys.build().unwrap();
        let dot = system.to_dot();
        assert!(dot.contains("label=\"producer\""), "{dot}");
        assert!(dot.contains("label=\"consumer\""), "{dot}");
        assert!(dot.contains("AsynBlockingSend"), "{dot}");
        assert!(dot.contains("FIFO(2)"), "{dot}");
        assert!(dot.contains("BlRecv(remove)"), "{dot}");
        assert!(dot.contains("cluster_0"), "{dot}");
        // Wiring edges from/to the components exist: the producer points at
        // its send port (pid 1), the receive port (pid 2) points at the
        // consumer.
        assert!(dot.contains("p3 -> p1;"), "{dot}");
        assert!(dot.contains("p2 -> p4;"), "{dot}");
    }
}
