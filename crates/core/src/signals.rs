//! Protocol signals and message layouts used between components, ports, and
//! channels.
//!
//! This module fixes the on-the-wire conventions of the PnP protocol (the
//! paper's `mtype` declaration and `DataMsg`/`InternalMsg` typedefs):
//!
//! * **signal channels** carry 2-field messages `(signal, port_pid)`;
//! * **data channels** carry 4-field messages whose interpretation depends
//!   on direction:
//!   * component → port → channel (a data message):
//!     `(data, tag, sender_port_pid, 0)`;
//!   * component → port → channel (a receive request):
//!     `(selective, tag, requester_port_pid, remove)`;
//!   * channel → port → component (a delivery):
//!     `(data, tag, sender_port_pid, dest_port_pid)`.
//!
//! The `tag` field doubles as the selective-receive matching key and as the
//! priority for [`crate::ChannelKind::Priority`] channels (larger = more
//! urgent).

use pnp_kernel::{ChanId, ProgramBuilder};

/// Signal: the sent message was (or will be, for non-blocking ports)
/// delivered successfully.
pub const SEND_SUCC: i32 = 1;
/// Signal: the sent message was rejected (checking ports, full buffer).
pub const SEND_FAIL: i32 = 2;
/// Signal: the channel stored the message.
pub const IN_OK: i32 = 3;
/// Signal: the channel's buffer is full.
pub const IN_FAIL: i32 = 4;
/// Signal: the channel accepted a receive request.
pub const OUT_OK: i32 = 5;
/// Signal: no matching message is currently available.
pub const OUT_FAIL: i32 = 6;
/// Signal: the message was received by a receiver (sent to the send port).
pub const RECV_OK: i32 = 7;
/// Signal: the receive request succeeded (sent to the component).
pub const RECV_SUCC: i32 = 8;
/// Signal: the receive request failed (non-blocking receive, no message).
pub const RECV_FAIL: i32 = 9;

/// Returns the conventional name of a signal constant, for diagnostics.
pub fn signal_name(signal: i32) -> &'static str {
    match signal {
        SEND_SUCC => "SEND_SUCC",
        SEND_FAIL => "SEND_FAIL",
        IN_OK => "IN_OK",
        IN_FAIL => "IN_FAIL",
        OUT_OK => "OUT_OK",
        OUT_FAIL => "OUT_FAIL",
        RECV_OK => "RECV_OK",
        RECV_SUCC => "RECV_SUCC",
        RECV_FAIL => "RECV_FAIL",
        _ => "UNKNOWN",
    }
}

/// Number of fields in a signal message: `(signal, port_pid)`.
pub const SIGNAL_ARITY: usize = 2;
/// Number of fields in a data message (see the module docs for layouts).
pub const DATA_ARITY: usize = 4;

/// Data-message field indices.
pub mod field {
    /// Payload (data messages) or `selective` flag (receive requests).
    pub const DATA: usize = 0;
    /// Tag: selective-receive key and priority.
    pub const TAG: usize = 1;
    /// The sending port's pid (data) or requester port's pid (requests).
    pub const SENDER: usize = 2;
    /// Destination port pid on delivery; `remove` flag in receive requests.
    pub const DEST: usize = 3;
}

/// The pid value used when a message is not addressed to a specific port
/// (e.g. status signals delivered to a component).
pub const NO_PID: i32 = -1;

/// A bidirectional link in the PnP protocol: a pair of rendezvous kernel
/// channels, one for status signals and one for data (the paper's `SynChan`
/// typedef).
///
/// One `SynChan` connects a component to its port, or a set of ports to a
/// channel (port pids disambiguate the shared case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynChan {
    /// The rendezvous signal channel (`SIGNAL_ARITY` fields).
    pub signal: ChanId,
    /// The rendezvous data channel (`DATA_ARITY` fields).
    pub data: ChanId,
}

impl SynChan {
    /// Declares a fresh `SynChan` (two rendezvous kernel channels) in
    /// `builder`, named `<name>.signal` and `<name>.data`.
    pub fn declare(builder: &mut ProgramBuilder, name: &str) -> SynChan {
        SynChan {
            signal: builder.channel(format!("{name}.signal"), 0, SIGNAL_ARITY),
            data: builder.channel(format!("{name}.data"), 0, DATA_ARITY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_constants_are_distinct() {
        let all = [
            SEND_SUCC, SEND_FAIL, IN_OK, IN_FAIL, OUT_OK, OUT_FAIL, RECV_OK, RECV_SUCC, RECV_FAIL,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn signal_names_round_trip() {
        assert_eq!(signal_name(SEND_SUCC), "SEND_SUCC");
        assert_eq!(signal_name(RECV_FAIL), "RECV_FAIL");
        assert_eq!(signal_name(0), "UNKNOWN");
    }

    #[test]
    fn declare_creates_two_rendezvous_channels() {
        let mut pb = ProgramBuilder::new();
        let sc = SynChan::declare(&mut pb, "link");
        assert_ne!(sc.signal, sc.data);
        let mut p = pnp_kernel::ProcessBuilder::new("dummy");
        p.location("s0");
        pb.add_process(p).unwrap();
        let program = pb.build().unwrap();
        let decls = program.channels();
        assert_eq!(decls[sc.signal.index()].name(), "link.signal");
        assert!(decls[sc.signal.index()].is_rendezvous());
        assert_eq!(decls[sc.signal.index()].arity(), SIGNAL_ARITY);
        assert_eq!(decls[sc.data.index()].name(), "link.data");
        assert_eq!(decls[sc.data.index()].arity(), DATA_ARITY);
    }
}
