//! Remote-procedure-call connectors.
//!
//! The second extension paradigm named in the paper's Section 6. An RPC
//! connector is *composed from the existing message-passing building
//! blocks* — a call connector and a reply connector — demonstrating that
//! the standard interfaces generalize beyond plain message passing without
//! any new block kinds:
//!
//! * the **call** path uses a synchronous blocking send into a single-slot
//!   buffer, so the client knows the server has accepted the request;
//! * the **reply** path uses an asynchronous blocking send, freeing the
//!   server as soon as the reply is buffered.
//!
//! [`RpcConnector::emit_call`] emits the client side (request then blocking
//! wait for the result); [`RpcConnector::emit_handle`] and
//! [`RpcConnector::emit_reply`] emit the server side. This connector
//! supports one client and one server; request/response correlation for
//! multiple clients would be layered on tags.

use pnp_kernel::{Expr, Loc, LocalId};

use crate::channels::ChannelKind;
use crate::component::{ComponentBuilder, ReceiveBinds};
use crate::ports::{RecvPortKind, SendPortKind};
use crate::system::{RecvAttachment, SendAttachment, SystemBuilder};

/// A packaged RPC connector: a call path and a reply path.
#[derive(Debug, Clone)]
pub struct RpcConnector {
    name: String,
    call_tx: SendAttachment,
    call_rx: RecvAttachment,
    reply_tx: SendAttachment,
    reply_rx: RecvAttachment,
}

impl RpcConnector {
    /// Declares an RPC connector (two message-passing connectors) in `sys`.
    pub fn declare(sys: &mut SystemBuilder, name: &str) -> RpcConnector {
        let call = sys.connector(format!("{name}.call"), ChannelKind::SingleSlot);
        let call_tx = sys.send_port(call, SendPortKind::SynBlocking);
        let call_rx = sys.recv_port(call, RecvPortKind::blocking());
        let reply = sys.connector(format!("{name}.reply"), ChannelKind::SingleSlot);
        let reply_tx = sys.send_port(reply, SendPortKind::AsynBlocking);
        let reply_rx = sys.recv_port(reply, RecvPortKind::blocking());
        RpcConnector {
            name: name.to_string(),
            call_tx,
            call_rx,
            reply_tx,
            reply_rx,
        }
    }

    /// The connector's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Emits a client-side call between `from` and `to`: send `arg` (tagged
    /// `tag`), then block until the result arrives in `result`.
    pub fn emit_call(
        &self,
        client: &mut ComponentBuilder,
        from: Loc,
        to: Loc,
        arg: Expr,
        tag: Expr,
        result: LocalId,
    ) {
        let mid = client.location(format!("{}.await_reply", self.name));
        client.send_msg(from, mid, &self.call_tx, arg, tag, None);
        client.recv_msg(
            mid,
            to,
            &self.reply_rx,
            None,
            ReceiveBinds::data_into(result),
        );
    }

    /// Emits the server-side request wait between `from` and `to`, binding
    /// the request's argument and tag.
    pub fn emit_handle(
        &self,
        server: &mut ComponentBuilder,
        from: Loc,
        to: Loc,
        arg: LocalId,
        tag: Option<LocalId>,
    ) {
        let mut binds = ReceiveBinds::data_into(arg);
        if let Some(t) = tag {
            binds = binds.with_tag(t);
        }
        server.recv_msg(from, to, &self.call_rx, None, binds);
    }

    /// Emits the server-side reply between `from` and `to`.
    pub fn emit_reply(&self, server: &mut ComponentBuilder, from: Loc, to: Loc, result: Expr) {
        server.send_msg(from, to, &self.reply_tx, result, 0.into(), None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_kernel::{expr, Checker, SafetyChecks};

    /// A client that calls `double(21)` and a server that doubles.
    fn rpc_system() -> crate::System {
        let mut sys = SystemBuilder::new();
        let result_g = sys.global("observed_result", 0);
        let rpc = RpcConnector::declare(&mut sys, "double");

        let mut client = ComponentBuilder::new("client");
        let result = client.local("result", 0);
        let c0 = client.location("call");
        let c1 = client.location("publish");
        let c2 = client.location("done");
        client.mark_end(c2);
        rpc.emit_call(&mut client, c0, c1, 21.into(), 0.into(), result);
        client.transition(
            c1,
            c2,
            pnp_kernel::Guard::always(),
            pnp_kernel::Action::assign(result_g, expr::local(result)),
            "publish result",
        );

        let mut server = ComponentBuilder::new("server");
        let arg = server.local("arg", 0);
        let s0 = server.location("serve");
        let s1 = server.location("reply");
        let s2 = server.location("done");
        server.mark_end(s2);
        rpc.emit_handle(&mut server, s0, s1, arg, None);
        rpc.emit_reply(&mut server, s1, s2, expr::local(arg) * 2.into());

        sys.add_component(client);
        sys.add_component(server);
        sys.build().unwrap()
    }

    #[test]
    fn rpc_round_trip_verifies_and_computes() {
        let system = rpc_system();
        let program = system.program();
        let g = program.global_by_name("observed_result").unwrap();
        let checker = Checker::new(program);

        // Deadlock-free...
        let report = checker
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        assert!(report.outcome.is_holds(), "{:?}", report.outcome);

        // ...and the observed result is only ever 0 (not yet returned) or 42.
        let ok = pnp_kernel::Predicate::from_expr(expr::or(
            expr::eq(expr::global(g), 0.into()),
            expr::eq(expr::global(g), 42.into()),
        ));
        let report = checker
            .check_safety(&SafetyChecks::invariants(vec![("result is 42".into(), ok)]))
            .unwrap();
        assert!(report.outcome.is_holds(), "{:?}", report.outcome);

        // And 42 is reachable (the call can complete): the claim "result is
        // never 42" must be violated.
        let never = pnp_kernel::Predicate::from_expr(expr::ne(expr::global(g), 42.into()));
        let report = checker
            .check_safety(&SafetyChecks {
                deadlock: false,
                invariants: vec![("never returns".into(), never)],
            })
            .unwrap();
        assert!(!report.outcome.is_holds());
    }

    /// The paper-faithful blocking receive port *polls* the channel
    /// (Fig. 8's retry loop), so "the call eventually returns" does not
    /// hold even under weak fairness: a schedule may alternate the polling
    /// port and the channel forever, and the reply send port — being
    /// intermittently disabled while the channel handles each poll — is
    /// not protected by weak fairness. SPIN reports the same for the
    /// original Promela models; excluding the schedule needs strong
    /// fairness. This test pins down that (correct) behavior.
    #[test]
    fn polling_receive_port_starves_liveness_under_weak_fairness() {
        let system = rpc_system();
        let program = system.program();
        let g = program.global_by_name("observed_result").unwrap();
        let done = pnp_kernel::Proposition::new(
            "returned",
            pnp_kernel::Predicate::from_expr(expr::eq(expr::global(g), 42.into())),
        );
        let report = Checker::new(program)
            .check_ltl_str("<> returned", &[done])
            .unwrap();
        match report.outcome {
            pnp_kernel::LtlOutcome::Violated { cycle, .. } => {
                // The starving cycle is the receive port's poll loop.
                let text = system.explain_trace(&cycle);
                assert!(
                    text.contains("no matching message") || text.contains("OUT_FAIL"),
                    "{text}"
                );
            }
            other => panic!("expected the polling livelock, got {other:?}"),
        }
    }
}
