//! System assembly: wiring components and connectors into a checkable
//! program.
//!
//! [`SystemBuilder`] is the programmatic equivalent of the paper's
//! design-environment workflow: declare a connector by picking a channel
//! kind, attach send and receive ports by picking port kinds, then add
//! components that talk to the attachments through the standard interfaces.
//! [`SystemBuilder::build`] instantiates the predefined process model of
//! every building block plus the component processes into a single
//! [`pnp_kernel::Program`], and records a [`Topology`] mapping kernel
//! process ids back to architectural roles (used for building-block-level
//! counterexample explanation).
//!
//! The builder is cheap to clone and `build` does not consume it, so
//! swapping one building block and re-verifying — the plug-and-play loop —
//! reuses every other block and all component models:
//!
//! ```
//! # use pnp_core::*;
//! let mut sys = SystemBuilder::new();
//! let conn = sys.connector("wire", ChannelKind::SingleSlot);
//! let tx = sys.send_port(conn, SendPortKind::AsynBlocking);
//! # let rx = sys.recv_port(conn, RecvPortKind::blocking());
//! # let mut c = ComponentBuilder::new("a");
//! # let s0 = c.location("s0");
//! # c.mark_end(s0);
//! # sys.add_component(c);
//! // ... add components ...
//! let v1 = sys.build()?;                      // first design
//! sys.set_send_port_kind(&tx, SendPortKind::SynBlocking);
//! let v2 = sys.build()?;                      // one block swapped, rest reused
//! # assert_eq!(v1.program().processes().len(), v2.program().processes().len());
//! # Ok::<(), pnp_core::SystemBuildError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use pnp_kernel::{BuildError, GlobalId, ProcId, Program, ProgramBuilder};

use crate::channels::{channel_process, ChannelKind};
use crate::component::ComponentBuilder;
use crate::fused::{fused_process, FusedConnectorKind, FusedSpec};
use crate::ports::{recv_port_process, send_port_process, RecvPortKind, SendPortKind};
use crate::pubsub::{broker_process, EventConnectorSpec};
use crate::signals::SynChan;

/// Identifies a connector within a [`SystemBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnectorId(pub(crate) usize);

/// Which architectural element a port is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PortSite {
    /// A regular message-passing connector.
    Connector(usize),
    /// An event (publish/subscribe) connector; for receive ports the second
    /// field is the subscription index.
    Event(usize, usize),
}

/// A component's handle to a send port: pass it to
/// [`ComponentBuilder::send_msg`](crate::ComponentBuilder::send_msg).
#[derive(Debug, Clone)]
pub struct SendAttachment {
    /// Index into the builder's send-port list; `None` for fused-connector
    /// attachments, whose port semantics are baked into the fused process.
    pub(crate) index: Option<usize>,
    pub(crate) link: SynChan,
    pub(crate) label: String,
}

impl SendAttachment {
    /// The component-side [`SynChan`] of this port.
    pub fn component_link(&self) -> SynChan {
        self.link
    }

    /// The attachment's diagnostic label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// A component's handle to a receive port: pass it to
/// [`ComponentBuilder::recv_msg`](crate::ComponentBuilder::recv_msg).
#[derive(Debug, Clone)]
pub struct RecvAttachment {
    /// Index into the builder's receive-port list; `None` for fused
    /// attachments.
    pub(crate) index: Option<usize>,
    pub(crate) link: SynChan,
    pub(crate) label: String,
}

impl RecvAttachment {
    /// The component-side [`SynChan`] of this port.
    pub fn component_link(&self) -> SynChan {
        self.link
    }

    /// The attachment's diagnostic label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// The architectural role of one kernel process (used to explain traces at
/// the building-block level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// A user-defined component.
    Component {
        /// The component's name.
        name: String,
    },
    /// A send-port building block.
    SendPort {
        /// The port kind.
        kind: SendPortKind,
        /// The connector it belongs to.
        connector: String,
    },
    /// A receive-port building block.
    RecvPort {
        /// The port kind.
        kind: RecvPortKind,
        /// The connector it belongs to.
        connector: String,
    },
    /// A channel building block.
    Channel {
        /// The channel kind.
        kind: ChannelKind,
        /// The connector it belongs to.
        connector: String,
    },
    /// A publish/subscribe event broker.
    EventBroker {
        /// The event connector it implements.
        connector: String,
    },
    /// An optimized fused connector (send port + channel + receive port
    /// collapsed into one process; see [`crate::FusedConnectorKind`]).
    FusedConnector {
        /// The fused kind.
        kind: FusedConnectorKind,
        /// The connector's name.
        connector: String,
    },
}

impl Role {
    /// A short human-readable description, used in trace explanations.
    pub fn describe(&self) -> String {
        match self {
            Role::Component { name } => format!("component {name}"),
            Role::SendPort { kind, connector } => {
                format!("send port {} of connector {connector}", kind.name())
            }
            Role::RecvPort { kind, connector } => {
                format!("receive port {} of connector {connector}", kind.name())
            }
            Role::Channel { kind, connector } => {
                format!("channel {} of connector {connector}", kind.name())
            }
            Role::EventBroker { connector } => format!("event broker of {connector}"),
            Role::FusedConnector { kind, connector } => {
                format!("fused connector {connector} ({})", kind.name())
            }
        }
    }

    /// Whether the process is part of a connector (not a component).
    pub fn is_connector_part(&self) -> bool {
        !matches!(self, Role::Component { .. })
    }
}

/// Maps kernel process ids back to architectural roles.
#[derive(Debug, Clone)]
pub struct Topology {
    pub(crate) roles: Vec<Role>,
}

impl Topology {
    /// The role of a process.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn role(&self, proc: ProcId) -> &Role {
        &self.roles[proc.index()]
    }

    /// Iterates over `(ProcId, Role)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, &Role)> {
        self.roles
            .iter()
            .enumerate()
            .map(|(i, r)| (ProcId::from_index(i), r))
    }

    /// The number of processes playing connector roles (ports, channels,
    /// brokers, fused connectors).
    pub fn connector_process_count(&self) -> usize {
        self.roles.iter().filter(|r| r.is_connector_part()).count()
    }

    /// The number of component processes.
    pub fn component_count(&self) -> usize {
        self.roles.len() - self.connector_process_count()
    }
}

/// An error from [`SystemBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemBuildError {
    /// The underlying kernel program failed validation; usually a component
    /// referenced a variable it does not own.
    Kernel(BuildError),
    /// No components were added.
    NoComponents,
    /// A connector has send ports but no receive port at all: sent
    /// messages could never be delivered and synchronous senders would
    /// block forever. (The converse — receive ports with no sender — is a
    /// legal, merely quiet, configuration.)
    UnusableConnector {
        /// The connector's name.
        connector: String,
    },
    /// An event connector's publisher uses a synchronous send port; event
    /// brokers never confirm delivery, so the publisher would deadlock.
    SynchronousPublisher {
        /// The event connector's name.
        connector: String,
    },
}

impl fmt::Display for SystemBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemBuildError::Kernel(e) => write!(f, "kernel build error: {e}"),
            SystemBuildError::NoComponents => write!(f, "system has no components"),
            SystemBuildError::UnusableConnector { connector } => {
                write!(
                    f,
                    "connector '{connector}' has send ports but no receive port; its messages could never be delivered"
                )
            }
            SystemBuildError::SynchronousPublisher { connector } => {
                write!(
                    f,
                    "event connector '{connector}' has a synchronous publisher; publishers must use asynchronous send ports"
                )
            }
        }
    }
}

impl std::error::Error for SystemBuildError {}

impl From<BuildError> for SystemBuildError {
    fn from(e: BuildError) -> SystemBuildError {
        SystemBuildError::Kernel(e)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ConnectorSpec {
    pub(crate) name: String,
    pub(crate) kind: ChannelKind,
    pub(crate) sender_link: SynChan,
    pub(crate) receiver_link: SynChan,
}

#[derive(Debug, Clone)]
pub(crate) struct SendPortSpec {
    pub(crate) site: PortSite,
    pub(crate) kind: SendPortKind,
    pub(crate) component_link: SynChan,
    pub(crate) label: String,
}

#[derive(Debug, Clone)]
pub(crate) struct RecvPortSpec {
    pub(crate) site: PortSite,
    pub(crate) kind: RecvPortKind,
    pub(crate) component_link: SynChan,
    pub(crate) label: String,
}

/// Builder for a PnP [`System`]. See the module docs for the workflow.
#[derive(Debug, Clone, Default)]
pub struct SystemBuilder {
    pub(crate) prog: ProgramBuilder,
    pub(crate) connectors: Vec<ConnectorSpec>,
    pub(crate) events: Vec<EventConnectorSpec>,
    pub(crate) fused: Vec<FusedSpec>,
    pub(crate) send_ports: Vec<SendPortSpec>,
    pub(crate) recv_ports: Vec<RecvPortSpec>,
    pub(crate) components: Vec<ComponentBuilder>,
}

impl SystemBuilder {
    /// Creates an empty system builder.
    pub fn new() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// Declares a global variable (visible to all components and to
    /// property predicates).
    pub fn global(&mut self, name: impl Into<String>, init: i32) -> GlobalId {
        self.prog.global(name, init)
    }

    /// Declares a connector with the given channel kind. Ports are attached
    /// separately with [`SystemBuilder::send_port`] and
    /// [`SystemBuilder::recv_port`].
    pub fn connector(&mut self, name: impl Into<String>, kind: ChannelKind) -> ConnectorId {
        let name = name.into();
        let sender_link = SynChan::declare(&mut self.prog, &format!("{name}.senders"));
        let receiver_link = SynChan::declare(&mut self.prog, &format!("{name}.receivers"));
        self.connectors.push(ConnectorSpec {
            name,
            kind,
            sender_link,
            receiver_link,
        });
        ConnectorId(self.connectors.len() - 1)
    }

    /// Attaches a send port of the given kind to a connector, returning the
    /// attachment a component needs to send through it.
    ///
    /// # Panics
    ///
    /// Panics if `connector` does not belong to this builder.
    pub fn send_port(&mut self, connector: ConnectorId, kind: SendPortKind) -> SendAttachment {
        let spec = &self.connectors[connector.0];
        let site = PortSite::Connector(connector.0);
        let n = self.send_ports.iter().filter(|p| p.site == site).count();
        let label = format!("{}.send[{n}]", spec.name);
        let component_link = SynChan::declare(&mut self.prog, &label);
        self.send_ports.push(SendPortSpec {
            site,
            kind,
            component_link,
            label: label.clone(),
        });
        SendAttachment {
            index: Some(self.send_ports.len() - 1),
            link: component_link,
            label,
        }
    }

    /// Attaches a receive port of the given kind to a connector, returning
    /// the attachment a component needs to receive through it.
    ///
    /// # Panics
    ///
    /// Panics if `connector` does not belong to this builder.
    pub fn recv_port(&mut self, connector: ConnectorId, kind: RecvPortKind) -> RecvAttachment {
        let spec = &self.connectors[connector.0];
        let site = PortSite::Connector(connector.0);
        let n = self
            .recv_ports
            .iter()
            .filter(|p| matches!(p.site, PortSite::Connector(c) if c == connector.0))
            .count();
        let label = format!("{}.recv[{n}]", spec.name);
        let component_link = SynChan::declare(&mut self.prog, &label);
        self.recv_ports.push(RecvPortSpec {
            site,
            kind,
            component_link,
            label: label.clone(),
        });
        RecvAttachment {
            index: Some(self.recv_ports.len() - 1),
            link: component_link,
            label,
        }
    }

    /// Adds a finished component.
    pub fn add_component(&mut self, component: ComponentBuilder) {
        self.components.push(component);
    }

    /// Replaces the kind of an already-attached send port — the
    /// plug-and-play swap. Components and every other block are untouched.
    ///
    /// # Panics
    ///
    /// Panics if the attachment came from a different builder or from a
    /// fused connector (fused connectors bake their port semantics in).
    pub fn set_send_port_kind(&mut self, attachment: &SendAttachment, kind: SendPortKind) {
        let index = attachment
            .index
            .expect("fused-connector attachments cannot be re-ported");
        self.send_ports[index].kind = kind;
    }

    /// Replaces the kind of an already-attached receive port.
    ///
    /// # Panics
    ///
    /// Panics if the attachment came from a different builder or from a
    /// fused connector.
    pub fn set_recv_port_kind(&mut self, attachment: &RecvAttachment, kind: RecvPortKind) {
        let index = attachment
            .index
            .expect("fused-connector attachments cannot be re-ported");
        self.recv_ports[index].kind = kind;
    }

    /// Replaces a connector's channel kind.
    ///
    /// # Panics
    ///
    /// Panics if `connector` does not belong to this builder.
    pub fn set_channel_kind(&mut self, connector: ConnectorId, kind: ChannelKind) {
        self.connectors[connector.0].kind = kind;
    }

    /// The kinds currently configured for a connector (channel kind plus
    /// attached port kinds), for diagnostics.
    pub fn connector_summary(&self, connector: ConnectorId) -> String {
        let spec = &self.connectors[connector.0];
        let site = PortSite::Connector(connector.0);
        let sends: Vec<String> = self
            .send_ports
            .iter()
            .filter(|p| p.site == site)
            .map(|p| p.kind.name().to_string())
            .collect();
        let recvs: Vec<String> = self
            .recv_ports
            .iter()
            .filter(|p| matches!(p.site, PortSite::Connector(c) if c == connector.0))
            .map(|p| p.kind.name())
            .collect();
        format!(
            "{}: [{}] -> {} -> [{}]",
            spec.name,
            sends.join(", "),
            spec.kind.name(),
            recvs.join(", ")
        )
    }

    /// Instantiates every building-block model and component into a
    /// checkable [`System`]. The builder is not consumed: swap a block and
    /// build again to explore an alternative design.
    ///
    /// # Errors
    ///
    /// Returns [`SystemBuildError`] when the system is empty, a connector
    /// is one-sided, an event publisher is synchronous, or a component
    /// fails kernel validation.
    pub fn build(&self) -> Result<System, SystemBuildError> {
        if self.components.is_empty() {
            return Err(SystemBuildError::NoComponents);
        }
        for (i, spec) in self.connectors.iter().enumerate() {
            let site = PortSite::Connector(i);
            let has_send = self.send_ports.iter().any(|p| p.site == site);
            let has_recv = self
                .recv_ports
                .iter()
                .any(|p| matches!(p.site, PortSite::Connector(c) if c == i));
            if has_send && !has_recv {
                return Err(SystemBuildError::UnusableConnector {
                    connector: spec.name.clone(),
                });
            }
        }
        for port in &self.send_ports {
            if let PortSite::Event(e, _) = port.site {
                if port.kind.is_synchronous() {
                    return Err(SystemBuildError::SynchronousPublisher {
                        connector: self.events[e].name.clone(),
                    });
                }
            }
        }

        let mut prog = self.prog.clone();
        let mut roles = Vec::new();

        for spec in &self.connectors {
            let process = channel_process(
                &format!("{}.channel", spec.name),
                spec.kind,
                spec.sender_link,
                spec.receiver_link,
            );
            prog.add_process(process)?;
            roles.push(Role::Channel {
                kind: spec.kind,
                connector: spec.name.clone(),
            });
        }
        for spec in &self.events {
            let process = broker_process(spec);
            prog.add_process(process)?;
            roles.push(Role::EventBroker {
                connector: spec.name.clone(),
            });
        }
        for spec in &self.fused {
            let process = fused_process(spec);
            prog.add_process(process)?;
            roles.push(Role::FusedConnector {
                kind: spec.kind,
                connector: spec.name.clone(),
            });
        }
        for spec in &self.send_ports {
            let (channel_link, connector_name) = match spec.site {
                PortSite::Connector(c) => {
                    let conn = &self.connectors[c];
                    (conn.sender_link, conn.name.clone())
                }
                PortSite::Event(e, _) => {
                    let conn = &self.events[e];
                    (conn.sender_link, conn.name.clone())
                }
            };
            let process =
                send_port_process(&spec.label, spec.kind, spec.component_link, channel_link);
            prog.add_process(process)?;
            roles.push(Role::SendPort {
                kind: spec.kind,
                connector: connector_name,
            });
        }
        for spec in &self.recv_ports {
            let (channel_link, connector_name) = match spec.site {
                PortSite::Connector(c) => {
                    let conn = &self.connectors[c];
                    (conn.receiver_link, conn.name.clone())
                }
                PortSite::Event(e, sub) => {
                    let conn = &self.events[e];
                    (conn.subscriptions[sub].link, conn.name.clone())
                }
            };
            let process =
                recv_port_process(&spec.label, spec.kind, spec.component_link, channel_link);
            prog.add_process(process)?;
            roles.push(Role::RecvPort {
                kind: spec.kind,
                connector: connector_name,
            });
        }
        let mut wiring = HashMap::new();
        for component in &self.components {
            prog.add_process(component.inner.clone())?;
            roles.push(Role::Component {
                name: component.name().to_string(),
            });
            wiring.insert(
                component.name().to_string(),
                (
                    component.used_send_ports.clone(),
                    component.used_recv_ports.clone(),
                ),
            );
        }

        Ok(System {
            program: prog.build()?,
            topology: Topology { roles },
            wiring,
        })
    }
}

/// A fully assembled PnP system: the kernel program plus the architectural
/// topology.
#[derive(Debug, Clone)]
pub struct System {
    program: Program,
    topology: Topology,
    /// Component name -> (send-port labels, receive-port labels) it uses.
    wiring: HashMap<String, (Vec<String>, Vec<String>)>,
}

impl System {
    /// The kernel program (pass it to [`pnp_kernel::Checker`] or
    /// [`pnp_kernel::Simulator`]).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The architectural topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The port labels a component sends through and receives through, as
    /// recorded while the component was built. `None` for unknown names.
    pub fn wiring_for(&self, component: &str) -> Option<(&[String], &[String])> {
        self.wiring
            .get(component)
            .map(|(s, r)| (s.as_slice(), r.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ReceiveBinds;

    fn one_wire_system(
        send_kind: SendPortKind,
        channel: ChannelKind,
        recv_kind: RecvPortKind,
    ) -> SystemBuilder {
        let mut sys = SystemBuilder::new();
        let conn = sys.connector("wire", channel);
        let tx = sys.send_port(conn, send_kind);
        let rx = sys.recv_port(conn, recv_kind);

        let mut producer = ComponentBuilder::new("producer");
        let p0 = producer.location("send");
        let p1 = producer.location("done");
        producer.mark_end(p1);
        producer.send_msg(p0, p1, &tx, 7.into(), 0.into(), None);

        let mut consumer = ComponentBuilder::new("consumer");
        let got = consumer.local("got", 0);
        let c0 = consumer.location("recv");
        let c1 = consumer.location("done");
        consumer.mark_end(c1);
        consumer.recv_msg(c0, c1, &rx, None, ReceiveBinds::data_into(got));

        sys.add_component(producer);
        sys.add_component(consumer);
        sys
    }

    #[test]
    fn builds_a_minimal_system() {
        let sys = one_wire_system(
            SendPortKind::AsynBlocking,
            ChannelKind::SingleSlot,
            RecvPortKind::blocking(),
        );
        let system = sys.build().unwrap();
        // 1 channel + 1 send port + 1 recv port + 2 components.
        assert_eq!(system.program().processes().len(), 5);
        assert_eq!(system.topology().connector_process_count(), 3);
        assert_eq!(system.topology().component_count(), 2);
    }

    #[test]
    fn empty_system_is_rejected() {
        let sys = SystemBuilder::new();
        assert_eq!(sys.build().unwrap_err(), SystemBuildError::NoComponents);
    }

    #[test]
    fn one_sided_connector_is_rejected() {
        let mut sys = SystemBuilder::new();
        let conn = sys.connector("dangling", ChannelKind::SingleSlot);
        let _tx = sys.send_port(conn, SendPortKind::AsynBlocking);
        let mut c = ComponentBuilder::new("c");
        let s0 = c.location("s0");
        c.mark_end(s0);
        sys.add_component(c);
        assert!(matches!(
            sys.build().unwrap_err(),
            SystemBuildError::UnusableConnector { connector } if connector == "dangling"
        ));
    }

    #[test]
    fn build_is_repeatable_and_swaps_reuse_components() {
        let mut sys = one_wire_system(
            SendPortKind::AsynBlocking,
            ChannelKind::SingleSlot,
            RecvPortKind::blocking(),
        );
        let v1 = sys.build().unwrap();
        // Swap the channel and rebuild: same process count, same component
        // definitions (identical names and transition counts).
        sys.set_channel_kind(ConnectorId(0), ChannelKind::Fifo { capacity: 2 });
        let v2 = sys.build().unwrap();
        assert_eq!(
            v1.program().processes().len(),
            v2.program().processes().len()
        );
        let comp1 = &v1.program().processes()[3];
        let comp2 = &v2.program().processes()[3];
        assert_eq!(comp1.name(), comp2.name());
        assert_eq!(comp1.transition_count(), comp2.transition_count());
    }

    #[test]
    fn connector_summary_describes_the_composition() {
        let sys = one_wire_system(
            SendPortKind::SynBlocking,
            ChannelKind::Fifo { capacity: 5 },
            RecvPortKind::blocking(),
        );
        let summary = sys.connector_summary(ConnectorId(0));
        assert!(summary.contains("SynBlockingSend"), "{summary}");
        assert!(summary.contains("FIFO(5)"), "{summary}");
        assert!(summary.contains("BlRecv(remove)"), "{summary}");
    }

    #[test]
    fn topology_roles_align_with_pids() {
        let sys = one_wire_system(
            SendPortKind::AsynBlocking,
            ChannelKind::SingleSlot,
            RecvPortKind::blocking(),
        );
        let system = sys.build().unwrap();
        let names: Vec<String> = system
            .program()
            .processes()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        for (pid, role) in system.topology().iter() {
            match role {
                Role::Component { name } => assert_eq!(&names[pid.index()], name),
                Role::Channel { .. } => assert!(names[pid.index()].ends_with(".channel")),
                Role::SendPort { .. } => assert!(names[pid.index()].contains(".send[")),
                Role::RecvPort { .. } => assert!(names[pid.index()].contains(".recv[")),
                other => panic!("unexpected role {other:?}"),
            }
        }
    }

    #[test]
    fn role_descriptions_are_informative() {
        let role = Role::SendPort {
            kind: SendPortKind::SynBlocking,
            connector: "wire".into(),
        };
        assert!(role.describe().contains("SynBlockingSend"));
        assert!(role.describe().contains("wire"));
        assert!(role.is_connector_part());
        assert!(!Role::Component { name: "x".into() }.is_connector_part());
    }
}
