//! Port building blocks: the synchronization side of connectors.
//!
//! Ports mediate between a component and a channel (paper Figs. 5–8). A
//! *send port* decides when the component's `SendStatus` is delivered —
//! immediately (asynchronous non-blocking), after the channel stores the
//! message (asynchronous blocking/checking), or after a receiver takes it
//! (synchronous blocking/checking). A *receive port* decides whether a
//! component waits for a message (blocking) or gets an immediate
//! failure-status when none is available (non-blocking), and whether
//! delivery removes the message from the channel or leaves a copy.
//!
//! Each port is generated as a [`pnp_kernel`] process from its kind and the
//! two [`SynChan`] links it sits between; the generated processes are the
//! "predefined reusable formal models" the paper provides for design-time
//! verification.

use pnp_kernel::{Action, FieldPat, Guard, LocalId, ProcessBuilder};

use crate::signals::{
    field, SynChan, IN_FAIL, IN_OK, NO_PID, OUT_FAIL, OUT_OK, RECV_FAIL, RECV_OK, RECV_SUCC,
    SEND_FAIL, SEND_SUCC,
};

/// The send-port variants of the building-block library (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SendPortKind {
    /// Confirms to the component immediately; the message may or may not be
    /// accepted by the channel.
    AsynNonblocking,
    /// Confirms after the channel stores the message, retrying while the
    /// buffer is full.
    AsynBlocking,
    /// Confirms after the channel stores the message; reports `SEND_FAIL`
    /// instead of retrying when the buffer is full.
    AsynChecking,
    /// Confirms only after the message has been received by a receiver,
    /// retrying while the buffer is full.
    SynBlocking,
    /// Like `SynBlocking`, but reports `SEND_FAIL` when the buffer is full.
    SynChecking,
    /// A fault-injection variant of `AsynChecking`: the port may crash
    /// after accepting a message but before engaging the channel. The
    /// message is lost; on restart the port reports `SEND_FAIL`, so the
    /// component's standard interface is never wedged.
    ///
    /// Not part of [`SendPortKind::ALL`] — it models an environment fault,
    /// not a library choice (see the fault library in DESIGN.md).
    CrashRestart,
}

impl SendPortKind {
    /// Every *fault-free* send-port kind, in library order (paper Fig. 1).
    /// [`SendPortKind::CrashRestart`] is deliberately excluded: it is a
    /// fault-injection block, not a design choice.
    pub const ALL: [SendPortKind; 5] = [
        SendPortKind::AsynNonblocking,
        SendPortKind::AsynBlocking,
        SendPortKind::AsynChecking,
        SendPortKind::SynBlocking,
        SendPortKind::SynChecking,
    ];

    /// The library name of the kind (e.g. `"AsynBlockingSend"`).
    pub fn name(self) -> &'static str {
        match self {
            SendPortKind::AsynNonblocking => "AsynNonblockingSend",
            SendPortKind::AsynBlocking => "AsynBlockingSend",
            SendPortKind::AsynChecking => "AsynCheckingSend",
            SendPortKind::SynBlocking => "SynBlockingSend",
            SendPortKind::SynChecking => "SynCheckingSend",
            SendPortKind::CrashRestart => "CrashRestartSend",
        }
    }

    /// Whether the component's confirmation waits for delivery to a
    /// receiver (synchronous) rather than just storage (asynchronous).
    pub fn is_synchronous(self) -> bool {
        matches!(self, SendPortKind::SynBlocking | SendPortKind::SynChecking)
    }

    /// Whether a full buffer is reported to the component (`SEND_FAIL`)
    /// instead of being retried.
    pub fn is_checking(self) -> bool {
        matches!(
            self,
            SendPortKind::AsynChecking | SendPortKind::SynChecking | SendPortKind::CrashRestart
        )
    }

    /// Whether the port can nondeterministically crash and restart.
    pub fn is_crash_restart(self) -> bool {
        matches!(self, SendPortKind::CrashRestart)
    }
}

/// Whether a receive port removes the delivered message from the channel or
/// leaves a copy behind (paper Fig. 1's `copy/remove` variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecvMode {
    /// Delivery removes the message.
    #[default]
    Remove,
    /// Delivery leaves the message in the buffer.
    Copy,
}

/// The receive-port variants of the building-block library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecvPortKind {
    /// `true`: wait until a matching message is available. `false`: report
    /// `RECV_FAIL` (with an empty stub message) when none is available.
    pub blocking: bool,
    /// Remove or copy delivery.
    pub mode: RecvMode,
    /// Fault injection: the port may crash after accepting a receive
    /// request but before engaging the channel. On restart it reports
    /// `RECV_FAIL` plus an empty stub message, so the component's standard
    /// interface is never wedged. Not set in any [`RecvPortKind::ALL`]
    /// entry — it models an environment fault, not a library choice.
    pub crash_restart: bool,
}

impl RecvPortKind {
    /// Every *fault-free* receive-port kind, in library order. Crash-restart
    /// variants are deliberately excluded: they are fault-injection blocks,
    /// not design choices.
    pub const ALL: [RecvPortKind; 4] = [
        RecvPortKind {
            blocking: true,
            mode: RecvMode::Remove,
            crash_restart: false,
        },
        RecvPortKind {
            blocking: true,
            mode: RecvMode::Copy,
            crash_restart: false,
        },
        RecvPortKind {
            blocking: false,
            mode: RecvMode::Remove,
            crash_restart: false,
        },
        RecvPortKind {
            blocking: false,
            mode: RecvMode::Copy,
            crash_restart: false,
        },
    ];

    /// A blocking, removing receive port (the most common choice).
    pub fn blocking() -> RecvPortKind {
        RecvPortKind {
            blocking: true,
            mode: RecvMode::Remove,
            crash_restart: false,
        }
    }

    /// A non-blocking, removing receive port.
    pub fn nonblocking() -> RecvPortKind {
        RecvPortKind {
            blocking: false,
            mode: RecvMode::Remove,
            crash_restart: false,
        }
    }

    /// A blocking, removing receive port that may crash and restart.
    pub fn crash_restart() -> RecvPortKind {
        RecvPortKind::blocking().with_crash_restart()
    }

    /// Sets the delivery mode.
    pub fn with_mode(mut self, mode: RecvMode) -> RecvPortKind {
        self.mode = mode;
        self
    }

    /// Marks the port as a crash-restart fault variant.
    pub fn with_crash_restart(mut self) -> RecvPortKind {
        self.crash_restart = true;
        self
    }

    /// The library name of the kind (e.g. `"BlRecv(remove)"`).
    pub fn name(self) -> String {
        let crash = if self.crash_restart {
            "CrashRestart"
        } else {
            ""
        };
        let base = if self.blocking { "BlRecv" } else { "NbRecv" };
        let mode = match self.mode {
            RecvMode::Remove => "remove",
            RecvMode::Copy => "copy",
        };
        format!("{crash}{base}({mode})")
    }
}

/// Receives `(signal, self_pid)` from `link.signal`.
fn recv_signal(link: SynChan, signal: i32) -> Action {
    Action::recv(
        link.signal,
        vec![FieldPat::lit(signal), FieldPat::self_pid()],
        vec![],
    )
}

/// Receives any signal addressed to this port from `link.signal`
/// (the paper's `channelChan.signal?_,eval(_pid)` discard).
fn recv_any_signal(link: SynChan) -> Action {
    Action::recv(
        link.signal,
        vec![FieldPat::Any, FieldPat::self_pid()],
        vec![],
    )
}

/// Receives a data message from the component side, binding payload and tag.
fn recv_component_data(link: SynChan, data: LocalId, tag: LocalId) -> Action {
    Action::recv(
        link.data,
        vec![FieldPat::Any; 4],
        vec![(field::DATA, data.into()), (field::TAG, tag.into())],
    )
}

/// Generates the process for a send port of the given kind.
///
/// `component` is the `SynChan` shared with the component; `channel` is the
/// `SynChan` shared with the connector's channel process.
pub(crate) fn send_port_process(
    name: &str,
    kind: SendPortKind,
    component: SynChan,
    channel: SynChan,
) -> ProcessBuilder {
    use pnp_kernel::expr;

    let mut p = ProcessBuilder::new(name);
    let m_data = p.local("m_data", 0);
    let m_tag = p.local("m_tag", 0);

    let idle = p.location("idle");
    let trying = p.location("trying");
    let succ = p.location("succ");

    // Forwarding the component's message to the channel, stamped with our
    // pid so the channel can address its status signals.
    let forward = Action::send(
        channel.data,
        vec![
            expr::local(m_data),
            expr::local(m_tag),
            expr::self_pid(),
            0.into(),
        ],
    );
    let send_succ = Action::send(component.signal, vec![SEND_SUCC.into(), NO_PID.into()]);
    let send_fail = Action::send(component.signal, vec![SEND_FAIL.into(), NO_PID.into()]);

    match kind {
        SendPortKind::AsynNonblocking => {
            // Paper Fig. 7: confirm first, forward afterwards, ignore every
            // signal from the channel.
            p.transition(
                idle,
                idle,
                Guard::always(),
                recv_any_signal(channel),
                "discard channel signal",
            );
            p.transition(
                idle,
                succ,
                Guard::always(),
                recv_component_data(component, m_data, m_tag),
                "accept message",
            );
            p.transition(succ, trying, Guard::always(), send_succ, "SEND_SUCC");
            p.transition(trying, idle, Guard::always(), forward, "forward to channel");
            // While waiting to forward, stale signals must still be drained
            // or the channel and port would block on each other.
            p.transition(
                trying,
                trying,
                Guard::always(),
                recv_any_signal(channel),
                "discard channel signal",
            );
        }
        SendPortKind::AsynBlocking
        | SendPortKind::AsynChecking
        | SendPortKind::SynBlocking
        | SendPortKind::SynChecking
        | SendPortKind::CrashRestart => {
            let wait_in = p.location("wait_in");
            p.transition(
                idle,
                trying,
                Guard::always(),
                recv_component_data(component, m_data, m_tag),
                "accept message",
            );
            p.transition(
                trying,
                wait_in,
                Guard::always(),
                forward,
                "forward to channel",
            );
            p.transition(succ, idle, Guard::always(), send_succ, "SEND_SUCC");

            if kind.is_crash_restart() {
                // The crash strikes before the channel is engaged, so the
                // connector protocol is never left half-done: the message
                // is simply lost and the restart reports the loss.
                let crashed = p.location("crashed");
                p.transition(
                    trying,
                    crashed,
                    Guard::always(),
                    Action::Skip,
                    "crash (message lost)",
                );
                p.transition(
                    crashed,
                    idle,
                    Guard::always(),
                    send_fail.clone(),
                    "restart: SEND_FAIL",
                );
                p.transition(
                    crashed,
                    crashed,
                    Guard::always(),
                    recv_signal(channel, RECV_OK),
                    "discard stale RECV_OK",
                );
            }

            // Full-buffer handling: retry (blocking) or report (checking).
            if kind.is_checking() {
                let fail = p.location("fail");
                p.transition(
                    wait_in,
                    fail,
                    Guard::always(),
                    recv_signal(channel, IN_FAIL),
                    "IN_FAIL from channel",
                );
                p.transition(fail, idle, Guard::always(), send_fail, "SEND_FAIL");
            } else {
                p.transition(
                    wait_in,
                    trying,
                    Guard::always(),
                    recv_signal(channel, IN_FAIL),
                    "IN_FAIL from channel (retry)",
                );
            }

            if kind.is_synchronous() {
                // Wait for the receiver's confirmation before SEND_SUCC.
                let wait_recv = p.location("wait_recv");
                p.transition(
                    wait_in,
                    wait_recv,
                    Guard::always(),
                    recv_signal(channel, IN_OK),
                    "IN_OK from channel",
                );
                p.transition(
                    wait_recv,
                    succ,
                    Guard::always(),
                    recv_signal(channel, RECV_OK),
                    "RECV_OK from channel",
                );
            } else {
                p.transition(
                    wait_in,
                    succ,
                    Guard::always(),
                    recv_signal(channel, IN_OK),
                    "IN_OK from channel",
                );
                // Asynchronous ports return before delivery, so a RECV_OK
                // for an earlier message can arrive at any time; drain it
                // everywhere the port may rendezvous with the channel.
                for loc in [idle, trying, wait_in] {
                    p.transition(
                        loc,
                        loc,
                        Guard::always(),
                        recv_signal(channel, RECV_OK),
                        "discard stale RECV_OK",
                    );
                }
            }
        }
    }

    // A resting send port counts as properly terminated.
    p.mark_end(idle);
    p
}

/// Generates the process for a receive port of the given kind.
pub(crate) fn recv_port_process(
    name: &str,
    kind: RecvPortKind,
    component: SynChan,
    channel: SynChan,
) -> ProcessBuilder {
    use pnp_kernel::expr;

    let mut p = ProcessBuilder::new(name);
    let r_sel = p.local("req_selective", 0);
    let r_tag = p.local("req_tag", 0);
    let m_data = p.local("m_data", 0);
    let m_tag = p.local("m_tag", 0);
    let m_sender = p.local("m_sender", 0);

    let idle = p.location("idle");
    let trying = p.location("trying");
    let wait_out = p.location("wait_out");
    let get_data = p.location("get_data");
    let ok_status = p.location("ok_status");
    let ok_data = p.location("ok_data");

    // Accept the component's receive request (selective flag + tag).
    p.transition(
        idle,
        trying,
        Guard::always(),
        Action::recv(
            component.data,
            vec![FieldPat::Any; 4],
            vec![(field::DATA, r_sel.into()), (field::TAG, r_tag.into())],
        ),
        "accept receive request",
    );
    // Forward it to the channel, stamped with our pid and our remove/copy
    // mode (the port variant, not the component, fixes the mode).
    let remove_flag: i32 = match kind.mode {
        RecvMode::Remove => 1,
        RecvMode::Copy => 0,
    };
    p.transition(
        trying,
        wait_out,
        Guard::always(),
        Action::send(
            channel.data,
            vec![
                expr::local(r_sel),
                expr::local(r_tag),
                expr::self_pid(),
                remove_flag.into(),
            ],
        ),
        "forward receive request",
    );
    if kind.crash_restart {
        // The crash strikes before the channel is engaged, so the channel
        // never holds a dangling request; the restart reports RECV_FAIL
        // plus the empty stub the standard interface expects.
        let crashed = p.location("crashed");
        let crash_fail = p.location("crash_fail");
        p.transition(
            trying,
            crashed,
            Guard::always(),
            Action::Skip,
            "crash (request lost)",
        );
        p.transition(
            crashed,
            crash_fail,
            Guard::always(),
            Action::send(component.signal, vec![RECV_FAIL.into(), NO_PID.into()]),
            "restart: RECV_FAIL",
        );
        p.transition(
            crash_fail,
            idle,
            Guard::always(),
            Action::send(
                component.data,
                vec![0.into(), 0.into(), NO_PID.into(), expr::self_pid()],
            ),
            "deliver empty stub",
        );
    }
    p.transition(
        wait_out,
        get_data,
        Guard::always(),
        recv_signal(channel, OUT_OK),
        "OUT_OK from channel",
    );
    if kind.blocking {
        // Blocking: keep asking until a message is available.
        p.transition(
            wait_out,
            trying,
            Guard::always(),
            recv_signal(channel, OUT_FAIL),
            "OUT_FAIL from channel (retry)",
        );
    } else {
        // Non-blocking: report failure and deliver an empty stub message so
        // the component's standard interface still sees a data message.
        let fail_status = p.location("fail_status");
        let fail_data = p.location("fail_data");
        p.transition(
            wait_out,
            fail_status,
            Guard::always(),
            recv_signal(channel, OUT_FAIL),
            "OUT_FAIL from channel",
        );
        p.transition(
            fail_status,
            fail_data,
            Guard::always(),
            Action::send(component.signal, vec![RECV_FAIL.into(), NO_PID.into()]),
            "RECV_FAIL",
        );
        p.transition(
            fail_data,
            idle,
            Guard::always(),
            Action::send(
                component.data,
                vec![0.into(), 0.into(), NO_PID.into(), expr::self_pid()],
            ),
            "deliver empty stub",
        );
    }
    // Take the message addressed to us, then confirm and deliver.
    p.transition(
        get_data,
        ok_status,
        Guard::always(),
        Action::recv(
            channel.data,
            vec![
                FieldPat::Any,
                FieldPat::Any,
                FieldPat::Any,
                FieldPat::self_pid(),
            ],
            vec![
                (field::DATA, m_data.into()),
                (field::TAG, m_tag.into()),
                (field::SENDER, m_sender.into()),
            ],
        ),
        "message from channel",
    );
    p.transition(
        ok_status,
        ok_data,
        Guard::always(),
        Action::send(component.signal, vec![RECV_SUCC.into(), NO_PID.into()]),
        "RECV_SUCC",
    );
    p.transition(
        ok_data,
        idle,
        Guard::always(),
        Action::send(
            component.data,
            vec![
                expr::local(m_data),
                expr::local(m_tag),
                expr::local(m_sender),
                expr::self_pid(),
            ],
        ),
        "deliver message",
    );

    p.mark_end(idle);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_kind_names_are_unique() {
        let names: Vec<&str> = SendPortKind::ALL.iter().map(|k| k.name()).collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn send_kind_classification() {
        assert!(SendPortKind::SynBlocking.is_synchronous());
        assert!(SendPortKind::SynChecking.is_synchronous());
        assert!(!SendPortKind::AsynBlocking.is_synchronous());
        assert!(SendPortKind::AsynChecking.is_checking());
        assert!(SendPortKind::SynChecking.is_checking());
        assert!(!SendPortKind::AsynNonblocking.is_checking());
    }

    #[test]
    fn recv_kind_names_cover_all_variants() {
        let names: Vec<String> = RecvPortKind::ALL.iter().map(|k| k.name()).collect();
        assert!(names.contains(&"BlRecv(remove)".to_string()));
        assert!(names.contains(&"BlRecv(copy)".to_string()));
        assert!(names.contains(&"NbRecv(remove)".to_string()));
        assert!(names.contains(&"NbRecv(copy)".to_string()));
    }

    #[test]
    fn recv_kind_constructors() {
        assert!(RecvPortKind::blocking().blocking);
        assert!(!RecvPortKind::nonblocking().blocking);
        assert_eq!(
            RecvPortKind::blocking().with_mode(RecvMode::Copy).mode,
            RecvMode::Copy
        );
    }

    /// Port templates must be valid processes referencing only their two
    /// SynChans.
    #[test]
    fn all_port_templates_validate() {
        use pnp_kernel::ProgramBuilder;
        let mut pb = ProgramBuilder::new();
        let comp = SynChan::declare(&mut pb, "comp");
        let chan = SynChan::declare(&mut pb, "chan");
        for kind in SendPortKind::ALL {
            let port = send_port_process(kind.name(), kind, comp, chan);
            pb.add_process(port).unwrap();
        }
        for kind in RecvPortKind::ALL {
            let port = recv_port_process(&kind.name(), kind, comp, chan);
            pb.add_process(port).unwrap();
        }
        let program = pb.build().unwrap();
        assert_eq!(program.processes().len(), 9);
    }

    #[test]
    fn crash_restart_ports_are_outside_the_library_and_validate() {
        use pnp_kernel::ProgramBuilder;
        // Crash variants are fault blocks, not library entries.
        assert!(!SendPortKind::ALL.contains(&SendPortKind::CrashRestart));
        assert!(RecvPortKind::ALL.iter().all(|k| !k.crash_restart));
        assert!(SendPortKind::CrashRestart.is_checking());
        assert!(SendPortKind::CrashRestart.is_crash_restart());
        assert!(!SendPortKind::CrashRestart.is_synchronous());
        assert_eq!(SendPortKind::CrashRestart.name(), "CrashRestartSend");
        assert_eq!(
            RecvPortKind::crash_restart().name(),
            "CrashRestartBlRecv(remove)"
        );
        assert_eq!(
            RecvPortKind::nonblocking()
                .with_mode(RecvMode::Copy)
                .with_crash_restart()
                .name(),
            "CrashRestartNbRecv(copy)"
        );

        let mut pb = ProgramBuilder::new();
        let comp = SynChan::declare(&mut pb, "comp");
        let chan = SynChan::declare(&mut pb, "chan");
        pb.add_process(send_port_process(
            "crash_send",
            SendPortKind::CrashRestart,
            comp,
            chan,
        ))
        .unwrap();
        pb.add_process(recv_port_process(
            "crash_recv",
            RecvPortKind::crash_restart(),
            comp,
            chan,
        ))
        .unwrap();
        pb.build().unwrap();
    }

    #[test]
    fn synchronous_ports_have_a_wait_recv_stage() {
        use pnp_kernel::ProgramBuilder;
        let mut pb = ProgramBuilder::new();
        let comp = SynChan::declare(&mut pb, "comp");
        let chan = SynChan::declare(&mut pb, "chan");
        let syn = send_port_process("syn", SendPortKind::SynBlocking, comp, chan);
        let asyn = send_port_process("asyn", SendPortKind::AsynBlocking, comp, chan);
        // The synchronous variant has one more location (wait_recv).
        assert_eq!(syn.location_count(), asyn.location_count() + 1);
    }
}
