//! # pnp-core — plug-and-play connector building blocks
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Plug-and-Play Architectural Design and Verification*, Wang, Avrunin,
//! Clarke): a library of predefined, reusable **building blocks** from which
//! connectors — the interaction glue between architectural components — are
//! composed, together with **standard component interfaces** that keep
//! component logic unchanged when connector semantics change.
//!
//! ## Building blocks
//!
//! A message-passing connector is composed of three kinds of blocks
//! (paper Figs. 1–2):
//!
//! * **send ports** ([`SendPortKind`]) capture the sender-side
//!   synchronization semantics: asynchronous non-blocking / blocking /
//!   checking, synchronous blocking / checking;
//! * **channels** ([`ChannelKind`]) capture storage and delivery: a
//!   single-slot buffer, a FIFO queue, a priority queue, or a dropping
//!   buffer;
//! * **receive ports** ([`RecvPortKind`]) capture the receiver-side
//!   semantics: blocking / non-blocking, each with remove or copy delivery
//!   and optional selective (tag-matching) receive.
//!
//! Swapping any block changes the interaction semantics *without touching
//! the components*, because components talk to every connector through the
//! same two standard interfaces (paper Fig. 3): send a message then await a
//! `SendStatus`; send a receive request, await a `RecvStatus`, then take the
//! (possibly empty) message.
//!
//! ## Fault injection
//!
//! Channels can be wrapped in *fault decorators* ([`ChannelFault`]): lossy,
//! duplicating, and reordering variants of every base kind
//! ([`BaseChannel`]). Ports have crash-restart fault variants
//! ([`SendPortKind::CrashRestart`], [`RecvPortKind::with_crash_restart`])
//! that nondeterministically lose a message or request and report the
//! failure on restart. Fault blocks plug in like any other block, so a
//! design can be verified against an unreliable environment — and hardened
//! by swapping ports — without touching its components.
//!
//! ## Assembly and verification
//!
//! [`SystemBuilder`] wires components and connectors into a
//! [`pnp_kernel::Program`]; the resulting [`System`] carries a
//! [`Topology`] so counterexample traces can be explained at the
//! building-block level. Verification (safety invariants, deadlock, LTL) is
//! provided by the [`pnp_kernel`] checker; every building block has a
//! predefined process model, so re-verification after a connector change
//! reuses both the block models and the untouched component models.
//!
//! ## Example
//!
//! ```
//! use pnp_core::{
//!     ChannelKind, ComponentBuilder, ReceiveBinds, SendPortKind, RecvPortKind, SystemBuilder,
//! };
//! use pnp_kernel::{expr, Checker, SafetyChecks};
//!
//! let mut sys = SystemBuilder::new();
//! let conn = sys.connector("wire", ChannelKind::SingleSlot);
//! let tx = sys.send_port(conn, SendPortKind::AsynBlocking);
//! let rx = sys.recv_port(conn, RecvPortKind::blocking());
//!
//! let mut producer = ComponentBuilder::new("producer");
//! let p0 = producer.location("send");
//! let p1 = producer.location("done");
//! producer.mark_end(p1);
//! producer.send_msg(p0, p1, &tx, 7.into(), 0.into(), None);
//!
//! let mut consumer = ComponentBuilder::new("consumer");
//! let got = consumer.local("got", 0);
//! let c0 = consumer.location("recv");
//! let c1 = consumer.location("done");
//! consumer.mark_end(c1);
//! consumer.recv_msg(c0, c1, &rx, None, ReceiveBinds::data_into(got));
//!
//! sys.add_component(producer);
//! sys.add_component(consumer);
//! let system = sys.build()?;
//!
//! let report = Checker::new(system.program()).check_safety(&SafetyChecks::deadlock_only())?;
//! assert!(report.outcome.is_holds());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
mod channels;
mod component;
mod diagram;
mod explain;
mod fused;
mod library;
mod ports;
mod pubsub;
mod rpc;
pub mod signals;
mod system;

pub use channels::{channel_occupancy, BaseChannel, ChannelFault, ChannelKind};
pub use component::{ComponentBuilder, ReceiveBinds};
pub use fused::FusedConnectorKind;
pub use library::{BlockCategory, BlockInfo, BlockLibrary};
pub use ports::{RecvMode, RecvPortKind, SendPortKind};
pub use pubsub::{EventChannelSpec, EventConnectorId, Subscription};
pub use rpc::RpcConnector;
pub use signals::SynChan;
pub use system::{
    ConnectorId, RecvAttachment, Role, SendAttachment, System, SystemBuildError, SystemBuilder,
    Topology,
};
