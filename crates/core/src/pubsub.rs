//! Publish/subscribe (event) connectors.
//!
//! The paper's Section 6 names publish/subscribe as the first interaction
//! paradigm beyond message passing that the standard interfaces should
//! extend to. This module provides that extension: an **event broker**
//! building block that fans every published event out to all matching
//! subscriptions, while publishers and subscribers keep using the ordinary
//! send/receive ports and the unchanged standard component interfaces.
//!
//! * Publishing is fire-and-forget: the broker always confirms storage
//!   (`IN_OK`) and silently drops events for subscriptions whose queue is
//!   full. Synchronous send ports would wait forever for a delivery
//!   confirmation, so [`crate::SystemBuilder::build`] rejects them.
//! * Each subscription has its own bounded queue and an optional tag
//!   filter; a subscriber only sees events whose tag matches its filter.

use pnp_kernel::{expr, Action, FieldPat, Guard, NativeGuard, NativeOp, ProcessBuilder};

use crate::ports::{RecvPortKind, SendPortKind};
use crate::signals::{field, SynChan, IN_OK, OUT_FAIL, OUT_OK};
use crate::system::{
    PortSite, RecvAttachment, RecvPortSpec, SendAttachment, SendPortSpec, SystemBuilder,
};

/// Identifies an event connector within a [`SystemBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventConnectorId(usize);

/// Configuration of an event connector.
#[derive(Debug, Clone, Copy)]
pub struct EventChannelSpec {
    /// Capacity of each subscription's queue (≥ 1). Events arriving at a
    /// full queue are dropped for that subscription only.
    pub per_subscription_capacity: usize,
}

impl Default for EventChannelSpec {
    fn default() -> EventChannelSpec {
        EventChannelSpec {
            per_subscription_capacity: 1,
        }
    }
}

/// A subscription: which events a subscriber sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subscription {
    /// `None` receives every event; `Some(tag)` receives only events
    /// published with that tag.
    pub filter: Option<i32>,
}

impl Subscription {
    /// Subscribes to every event.
    pub fn all() -> Subscription {
        Subscription { filter: None }
    }

    /// Subscribes to events with the given tag.
    pub fn to_tag(tag: i32) -> Subscription {
        Subscription { filter: Some(tag) }
    }

    fn matches(self, tag: i32) -> bool {
        self.filter.is_none_or(|f| f == tag)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct SubscriptionSpec {
    pub(crate) link: SynChan,
    pub(crate) subscription: Subscription,
}

#[derive(Debug, Clone)]
pub(crate) struct EventConnectorSpec {
    pub(crate) name: String,
    pub(crate) capacity: usize,
    pub(crate) sender_link: SynChan,
    pub(crate) subscriptions: Vec<SubscriptionSpec>,
}

impl SystemBuilder {
    /// Declares an event (publish/subscribe) connector.
    pub fn event_connector(
        &mut self,
        name: impl Into<String>,
        spec: EventChannelSpec,
    ) -> EventConnectorId {
        let name = name.into();
        assert!(
            spec.per_subscription_capacity >= 1,
            "per-subscription capacity must be at least 1"
        );
        let sender_link = SynChan::declare(&mut self.prog, &format!("{name}.publishers"));
        self.events.push(EventConnectorSpec {
            name,
            capacity: spec.per_subscription_capacity,
            sender_link,
            subscriptions: Vec::new(),
        });
        EventConnectorId(self.events.len() - 1)
    }

    /// Attaches a publisher (an ordinary send port) to an event connector.
    ///
    /// `kind` must be asynchronous; synchronous kinds are rejected at
    /// [`SystemBuilder::build`] because event delivery is never confirmed.
    ///
    /// # Panics
    ///
    /// Panics if `connector` does not belong to this builder.
    pub fn publisher(&mut self, connector: EventConnectorId, kind: SendPortKind) -> SendAttachment {
        let spec = &self.events[connector.0];
        let site_match = |s: &PortSite| matches!(s, PortSite::Event(e, _) if *e == connector.0);
        let n = self
            .send_ports
            .iter()
            .filter(|p| site_match(&p.site))
            .count();
        let label = format!("{}.pub[{n}]", spec.name);
        let component_link = SynChan::declare(&mut self.prog, &label);
        self.send_ports.push(SendPortSpec {
            site: PortSite::Event(connector.0, 0),
            kind,
            component_link,
            label: label.clone(),
        });
        SendAttachment {
            index: Some(self.send_ports.len() - 1),
            link: component_link,
            label,
        }
    }

    /// Attaches a subscriber: a new subscription queue on the broker plus
    /// an ordinary receive port for the component.
    ///
    /// # Panics
    ///
    /// Panics if `connector` does not belong to this builder.
    pub fn subscriber(
        &mut self,
        connector: EventConnectorId,
        kind: RecvPortKind,
        subscription: Subscription,
    ) -> RecvAttachment {
        let sub_index = self.events[connector.0].subscriptions.len();
        let name = self.events[connector.0].name.clone();
        let broker_label = format!("{name}.sub[{sub_index}]");
        let broker_link = SynChan::declare(&mut self.prog, &broker_label);
        self.events[connector.0]
            .subscriptions
            .push(SubscriptionSpec {
                link: broker_link,
                subscription,
            });
        let label = format!("{broker_label}.port");
        let component_link = SynChan::declare(&mut self.prog, &label);
        self.recv_ports.push(RecvPortSpec {
            site: PortSite::Event(connector.0, sub_index),
            kind,
            component_link,
            label: label.clone(),
        });
        RecvAttachment {
            index: Some(self.recv_ports.len() - 1),
            link: component_link,
            label,
        }
    }
}

/// Generates the broker process for an event connector.
pub(crate) fn broker_process(spec: &EventConnectorSpec) -> ProcessBuilder {
    const SLOT: usize = 2; // (data, tag)
    let cap = spec.capacity;
    let n_subs = spec.subscriptions.len();

    let mut p = ProcessBuilder::new(format!("{}.broker", spec.name));

    // Per-subscription queues followed by their lengths, then scratch.
    let queues = p.local_block("queues", n_subs.max(1) * cap * SLOT, 0);
    let lens = p.local_block("lens", n_subs.max(1), 0);
    let in_data = p.local("in_data", 0);
    let in_tag = p.local("in_tag", 0);
    let in_sender = p.local("in_sender", 0);
    let req_sel = p.local("req_sel", 0);
    let req_tag = p.local("req_tag", 0);
    let req_pid = p.local("req_pid", 0);
    let req_remove = p.local("req_remove", 0);
    let out_data = p.local("out_data", 0);
    let out_tag = p.local("out_tag", 0);
    let notify_pid = p.local("notify_pid", 0);

    let q0 = queues.index();
    let l0 = lens.index();
    let (ind, int, ins) = (in_data.index(), in_tag.index(), in_sender.index());
    let (rs, rt, rp, rr) = (
        req_sel.index(),
        req_tag.index(),
        req_pid.index(),
        req_remove.index(),
    );
    let (od, ot, np) = (out_data.index(), out_tag.index(), notify_pid.index());

    let idle = p.location("idle");
    let publish = p.location("publish");
    let pub_ack = p.location("pub_ack");

    p.transition(
        idle,
        publish,
        Guard::always(),
        Action::recv(
            spec.sender_link.data,
            vec![FieldPat::Any; 4],
            vec![
                (field::DATA, in_data.into()),
                (field::TAG, in_tag.into()),
                (field::SENDER, in_sender.into()),
            ],
        ),
        "event from publisher",
    );

    let filters: Vec<Subscription> = spec.subscriptions.iter().map(|s| s.subscription).collect();
    let fanout = NativeOp::new("fan out event", move |loc| {
        for (j, sub) in filters.iter().enumerate() {
            if !sub.matches(loc[int]) {
                continue;
            }
            let len = loc[l0 + j] as usize;
            if len >= cap {
                continue; // drop for this full subscription
            }
            let base = q0 + (j * cap + len) * SLOT;
            loc[base] = loc[ind];
            loc[base + 1] = loc[int];
            loc[l0 + j] += 1;
        }
        loc[np] = loc[ins];
        loc[ind] = 0;
        loc[int] = 0;
        loc[ins] = 0;
    });
    p.transition(
        publish,
        pub_ack,
        Guard::always(),
        Action::Native(fanout),
        "fan out",
    );
    p.transition(
        pub_ack,
        idle,
        Guard::always(),
        Action::send(
            spec.sender_link.signal,
            vec![IN_OK.into(), expr::local(notify_pid)],
        ),
        "IN_OK to publisher",
    );

    // Per-subscription request handling.
    for (j, sub) in spec.subscriptions.iter().enumerate() {
        let got_req = p.location(format!("got_req[{j}]"));
        let ok_status = p.location(format!("ok_status[{j}]"));
        let ok_data = p.location(format!("ok_data[{j}]"));
        let cleanup = p.location(format!("cleanup[{j}]"));
        let fail = p.location(format!("fail[{j}]"));

        p.transition(
            idle,
            got_req,
            Guard::always(),
            Action::recv(
                sub.link.data,
                vec![FieldPat::Any; 4],
                vec![
                    (field::DATA, req_sel.into()),
                    (field::TAG, req_tag.into()),
                    (field::SENDER, req_pid.into()),
                    (field::DEST, req_remove.into()),
                ],
            ),
            format!("receive request from subscription {j}"),
        );

        let match_at = move |loc: &[i32]| -> Option<usize> {
            let n = loc[l0 + j] as usize;
            if loc[rs] == 0 {
                (n > 0).then_some(0)
            } else {
                (0..n).find(|&i| loc[q0 + (j * cap + i) * SLOT + 1] == loc[rt])
            }
        };
        let has_match = NativeGuard::new("event available", move |loc| match_at(loc).is_some());
        let no_match = NativeGuard::new("no event available", move |loc| match_at(loc).is_none());
        let take = NativeOp::new("take event", move |loc| {
            let i = match_at(loc).expect("take fired without a match");
            let base = q0 + (j * cap + i) * SLOT;
            loc[od] = loc[base];
            loc[ot] = loc[base + 1];
            if loc[rr] != 0 {
                let n = loc[l0 + j] as usize;
                for k in i..n - 1 {
                    let dst = q0 + (j * cap + k) * SLOT;
                    let src = q0 + (j * cap + k + 1) * SLOT;
                    loc[dst] = loc[src];
                    loc[dst + 1] = loc[src + 1];
                }
                let last = q0 + (j * cap + n - 1) * SLOT;
                loc[last] = 0;
                loc[last + 1] = 0;
                loc[l0 + j] -= 1;
            }
            loc[np] = loc[rp];
            loc[rs] = 0;
            loc[rt] = 0;
            loc[rp] = 0;
            loc[rr] = 0;
        });
        let reject = NativeOp::new("reject receive request", move |loc| {
            loc[np] = loc[rp];
            loc[rs] = 0;
            loc[rt] = 0;
            loc[rp] = 0;
            loc[rr] = 0;
        });
        let clear_out = NativeOp::new("clear delivery scratch", move |loc| {
            loc[od] = 0;
            loc[ot] = 0;
        });

        p.transition(
            got_req,
            ok_status,
            Guard::native(has_match),
            Action::Native(take),
            "take event",
        );
        p.transition(
            got_req,
            fail,
            Guard::native(no_match),
            Action::Native(reject),
            "no event",
        );
        p.transition(
            ok_status,
            ok_data,
            Guard::always(),
            Action::send(
                sub.link.signal,
                vec![OUT_OK.into(), expr::local(notify_pid)],
            ),
            "OUT_OK to subscription port",
        );
        p.transition(
            ok_data,
            cleanup,
            Guard::always(),
            Action::send(
                sub.link.data,
                vec![
                    expr::local(out_data),
                    expr::local(out_tag),
                    crate::signals::NO_PID.into(),
                    expr::local(notify_pid),
                ],
            ),
            "deliver event",
        );
        p.transition(
            cleanup,
            idle,
            Guard::always(),
            Action::Native(clear_out),
            "cleanup",
        );
        p.transition(
            fail,
            idle,
            Guard::always(),
            Action::send(
                sub.link.signal,
                vec![OUT_FAIL.into(), expr::local(notify_pid)],
            ),
            "OUT_FAIL to subscription port",
        );
    }

    p.mark_end(idle);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscription_matching() {
        assert!(Subscription::all().matches(5));
        assert!(Subscription::to_tag(5).matches(5));
        assert!(!Subscription::to_tag(5).matches(6));
    }

    #[test]
    fn default_spec_has_capacity_one() {
        assert_eq!(EventChannelSpec::default().per_subscription_capacity, 1);
    }

    #[test]
    fn broker_template_validates() {
        let mut sys = SystemBuilder::new();
        let ev = sys.event_connector("news", EventChannelSpec::default());
        let _pub = sys.publisher(ev, SendPortKind::AsynNonblocking);
        let _sub1 = sys.subscriber(ev, RecvPortKind::nonblocking(), Subscription::all());
        let _sub2 = sys.subscriber(ev, RecvPortKind::nonblocking(), Subscription::to_tag(2));
        let mut c = crate::ComponentBuilder::new("c");
        let s0 = c.location("s0");
        c.mark_end(s0);
        sys.add_component(c);
        let system = sys.build().unwrap();
        // broker + pub port + 2 sub ports + component.
        assert_eq!(system.program().processes().len(), 5);
    }

    #[test]
    fn synchronous_publisher_is_rejected() {
        let mut sys = SystemBuilder::new();
        let ev = sys.event_connector("news", EventChannelSpec::default());
        let _pub = sys.publisher(ev, SendPortKind::SynBlocking);
        let _sub = sys.subscriber(ev, RecvPortKind::nonblocking(), Subscription::all());
        let mut c = crate::ComponentBuilder::new("c");
        let s0 = c.location("s0");
        c.mark_end(s0);
        sys.add_component(c);
        assert!(matches!(
            sys.build().unwrap_err(),
            crate::SystemBuildError::SynchronousPublisher { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_event_connector_panics() {
        let mut sys = SystemBuilder::new();
        sys.event_connector(
            "bad",
            EventChannelSpec {
                per_subscription_capacity: 0,
            },
        );
    }
}
