//! Fused (optimized) connector models.
//!
//! The paper's Section 6 observes that decomposing a connector into port and
//! channel processes adds internal concurrency and inflates the state space,
//! and proposes recognizing *common* connector compositions and substituting
//! specially optimized models. This module provides such fused models: a
//! single process that implements the end-to-end observable protocol of a
//! (send port, channel, receive port) triple with a fraction of the internal
//! steps.
//!
//! Fused connectors support exactly one sender and one receiver component
//! and bake their port semantics in — [`crate::SystemBuilder`] rejects
//! attempts to re-port them. The `fused_vs_composed` benchmark quantifies
//! the state-space savings.
//!
//! One deliberate semantic nuance: a *composed* blocking receive polls the
//! channel (request, `OUT_FAIL`, retry), so an unsatisfiable selective
//! receive livelocks; the fused model simply waits, so the same situation
//! is reported as a deadlock. For the verification questions in this
//! reproduction (safety invariants, deadlock-freedom of correct designs)
//! the models agree.

use pnp_kernel::{expr, Action, FieldPat, Guard, NativeGuard, NativeOp, ProcessBuilder};

use crate::signals::{field, SynChan, NO_PID, RECV_SUCC, SEND_SUCC};
use crate::system::{RecvAttachment, SendAttachment, SystemBuilder};

/// The available fused connector models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusedConnectorKind {
    /// Equivalent to `AsynBlockingSend -> FIFO(capacity) -> BlRecv(remove)`:
    /// the sender is released as soon as the message is buffered; the
    /// receiver blocks until a matching message exists.
    AsyncFifo {
        /// Buffer capacity (≥ 1).
        capacity: usize,
    },
    /// Equivalent to `SynBlockingSend -> SingleSlot -> BlRecv(remove)`: the
    /// sender is released only after the receiver has taken the message.
    SyncHandshake,
}

impl FusedConnectorKind {
    /// The library name of the kind.
    pub fn name(self) -> String {
        match self {
            FusedConnectorKind::AsyncFifo { capacity } => format!("FusedAsyncFifo({capacity})"),
            FusedConnectorKind::SyncHandshake => "FusedSyncHandshake".to_string(),
        }
    }

    /// The composed blocks this fused model replaces, for documentation and
    /// the ablation benchmark.
    pub fn replaces(self) -> String {
        match self {
            FusedConnectorKind::AsyncFifo { capacity } => {
                format!("AsynBlockingSend -> FIFO({capacity}) -> BlRecv(remove)")
            }
            FusedConnectorKind::SyncHandshake => {
                "SynBlockingSend -> SingleSlot -> BlRecv(remove)".to_string()
            }
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct FusedSpec {
    pub(crate) name: String,
    pub(crate) kind: FusedConnectorKind,
    pub(crate) sender_link: SynChan,
    pub(crate) receiver_link: SynChan,
}

impl SystemBuilder {
    /// Declares a fused connector, returning the attachments for its single
    /// sender and single receiver component.
    pub fn fused_connector(
        &mut self,
        name: impl Into<String>,
        kind: FusedConnectorKind,
    ) -> (SendAttachment, RecvAttachment) {
        let name = name.into();
        let sender_link = SynChan::declare(&mut self.prog, &format!("{name}.sender"));
        let receiver_link = SynChan::declare(&mut self.prog, &format!("{name}.receiver"));
        self.fused.push(FusedSpec {
            name: name.clone(),
            kind,
            sender_link,
            receiver_link,
        });
        (
            SendAttachment {
                index: None,
                link: sender_link,
                label: format!("{name}.sender"),
            },
            RecvAttachment {
                index: None,
                link: receiver_link,
                label: format!("{name}.receiver"),
            },
        )
    }
}

pub(crate) fn fused_process(spec: &FusedSpec) -> ProcessBuilder {
    match spec.kind {
        FusedConnectorKind::AsyncFifo { capacity } => {
            async_fifo_process(&spec.name, capacity, spec.sender_link, spec.receiver_link)
        }
        FusedConnectorKind::SyncHandshake => {
            sync_handshake_process(&spec.name, spec.sender_link, spec.receiver_link)
        }
    }
}

fn async_fifo_process(
    name: &str,
    capacity: usize,
    sender: SynChan,
    receiver: SynChan,
) -> ProcessBuilder {
    assert!(capacity >= 1, "fused connector capacity must be at least 1");
    const SLOT: usize = 2; // (data, tag)

    let mut p = ProcessBuilder::new(format!("{name}.fused"));
    let buf = p.local_block("buf", capacity * SLOT, 0);
    let len = p.local("len", 0);
    let m_data = p.local("m_data", 0);
    let m_tag = p.local("m_tag", 0);
    let r_sel = p.local("r_sel", 0);
    let r_tag = p.local("r_tag", 0);
    let out_data = p.local("out_data", 0);
    let out_tag = p.local("out_tag", 0);

    let idle = p.location("idle");
    let store_msg = p.location("store_msg");
    let ack_send = p.location("ack_send");
    let pending = p.location("pending");
    let pending_store = p.location("pending_store");
    let pending_ack = p.location("pending_ack");
    let deliver_status = p.location("deliver_status");
    let deliver_data = p.location("deliver_data");
    let cleanup = p.location("cleanup");

    let (b, l, md, mt, rs, rt, od, ot) = (
        buf.index(),
        len.index(),
        m_data.index(),
        m_tag.index(),
        r_sel.index(),
        r_tag.index(),
        out_data.index(),
        out_tag.index(),
    );

    let has_space = NativeGuard::new("buffer has space", move |loc| (loc[l] as usize) < capacity);
    let push = NativeOp::new("buffer message", move |loc| {
        let n = loc[l] as usize;
        loc[b + n * SLOT] = loc[md];
        loc[b + n * SLOT + 1] = loc[mt];
        loc[l] += 1;
        loc[md] = 0;
        loc[mt] = 0;
    });
    let match_at = move |loc: &[i32]| -> Option<usize> {
        let n = loc[l] as usize;
        if loc[rs] == 0 {
            (n > 0).then_some(0)
        } else {
            (0..n).find(|&i| loc[b + i * SLOT + 1] == loc[rt])
        }
    };
    let has_match = NativeGuard::new("matching message buffered", move |loc| {
        match_at(loc).is_some()
    });
    let no_match_has_space = NativeGuard::new("no match, space left", move |loc| {
        match_at(loc).is_none() && (loc[l] as usize) < capacity
    });
    let take = NativeOp::new("take message", move |loc| {
        let i = match_at(loc).expect("take fired without a match");
        loc[od] = loc[b + i * SLOT];
        loc[ot] = loc[b + i * SLOT + 1];
        let n = loc[l] as usize;
        for j in i..n - 1 {
            loc[b + j * SLOT] = loc[b + (j + 1) * SLOT];
            loc[b + j * SLOT + 1] = loc[b + (j + 1) * SLOT + 1];
        }
        loc[b + (n - 1) * SLOT] = 0;
        loc[b + (n - 1) * SLOT + 1] = 0;
        loc[l] -= 1;
        loc[rs] = 0;
        loc[rt] = 0;
    });
    let clear_out = NativeOp::new("clear delivery scratch", move |loc| {
        loc[od] = 0;
        loc[ot] = 0;
    });

    let recv_msg = Action::recv(
        sender.data,
        vec![FieldPat::Any; 4],
        vec![(field::DATA, m_data.into()), (field::TAG, m_tag.into())],
    );
    let recv_req = Action::recv(
        receiver.data,
        vec![FieldPat::Any; 4],
        vec![(field::DATA, r_sel.into()), (field::TAG, r_tag.into())],
    );
    let send_succ = Action::send(sender.signal, vec![SEND_SUCC.into(), NO_PID.into()]);

    p.transition(
        idle,
        store_msg,
        Guard::native(has_space.clone()),
        recv_msg.clone(),
        "accept message",
    );
    p.transition(
        store_msg,
        ack_send,
        Guard::always(),
        Action::Native(push.clone()),
        "buffer",
    );
    p.transition(
        ack_send,
        idle,
        Guard::always(),
        send_succ.clone(),
        "SEND_SUCC",
    );
    p.transition(
        idle,
        pending,
        Guard::always(),
        recv_req,
        "accept receive request",
    );
    // While a receive request waits for a matching message, the sender may
    // continue filling the buffer.
    p.transition(
        pending,
        pending_store,
        Guard::native(no_match_has_space),
        recv_msg,
        "accept message while receiver waits",
    );
    p.transition(
        pending_store,
        pending_ack,
        Guard::always(),
        Action::Native(push),
        "buffer",
    );
    p.transition(
        pending_ack,
        pending,
        Guard::always(),
        send_succ,
        "SEND_SUCC",
    );
    p.transition(
        pending,
        deliver_status,
        Guard::native(has_match),
        Action::Native(take),
        "select message",
    );
    p.transition(
        deliver_status,
        deliver_data,
        Guard::always(),
        Action::send(receiver.signal, vec![RECV_SUCC.into(), NO_PID.into()]),
        "RECV_SUCC",
    );
    p.transition(
        deliver_data,
        cleanup,
        Guard::always(),
        Action::send(
            receiver.data,
            vec![
                expr::local(out_data),
                expr::local(out_tag),
                NO_PID.into(),
                NO_PID.into(),
            ],
        ),
        "deliver message",
    );
    p.transition(
        cleanup,
        idle,
        Guard::always(),
        Action::Native(clear_out),
        "cleanup",
    );

    p.mark_end(idle);
    p
}

fn sync_handshake_process(name: &str, sender: SynChan, receiver: SynChan) -> ProcessBuilder {
    let mut p = ProcessBuilder::new(format!("{name}.fused"));
    let m_data = p.local("m_data", 0);
    let m_tag = p.local("m_tag", 0);

    let idle = p.location("idle");
    let have_msg = p.location("have_msg");
    let have_req = p.location("have_req");
    let deliver_status = p.location("deliver_status");
    let deliver_data = p.location("deliver_data");
    let ack_send = p.location("ack_send");

    let recv_msg = Action::recv(
        sender.data,
        vec![FieldPat::Any; 4],
        vec![(field::DATA, m_data.into()), (field::TAG, m_tag.into())],
    );
    let recv_req = Action::recv(receiver.data, vec![FieldPat::Any; 4], vec![]);

    p.transition(
        idle,
        have_msg,
        Guard::always(),
        recv_msg.clone(),
        "accept message",
    );
    p.transition(
        idle,
        have_req,
        Guard::always(),
        recv_req.clone(),
        "accept receive request",
    );
    p.transition(
        have_msg,
        deliver_status,
        Guard::always(),
        recv_req,
        "accept receive request",
    );
    p.transition(
        have_req,
        deliver_status,
        Guard::always(),
        recv_msg,
        "accept message",
    );
    p.transition(
        deliver_status,
        deliver_data,
        Guard::always(),
        Action::send(receiver.signal, vec![RECV_SUCC.into(), NO_PID.into()]),
        "RECV_SUCC",
    );
    p.transition(
        deliver_data,
        ack_send,
        Guard::always(),
        Action::send(
            receiver.data,
            vec![
                expr::local(m_data),
                expr::local(m_tag),
                NO_PID.into(),
                NO_PID.into(),
            ],
        ),
        "deliver message",
    );
    // The sender's SEND_SUCC only after the receiver has the message: the
    // synchronous contract.
    p.transition(
        ack_send,
        idle,
        Guard::always(),
        Action::send(sender.signal, vec![SEND_SUCC.into(), NO_PID.into()]),
        "SEND_SUCC",
    );

    p.mark_end(idle);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_replacements() {
        let k = FusedConnectorKind::AsyncFifo { capacity: 3 };
        assert_eq!(k.name(), "FusedAsyncFifo(3)");
        assert!(k.replaces().contains("FIFO(3)"));
        let k = FusedConnectorKind::SyncHandshake;
        assert_eq!(k.name(), "FusedSyncHandshake");
        assert!(k.replaces().contains("SynBlockingSend"));
    }

    #[test]
    fn fused_templates_validate() {
        let mut sys = SystemBuilder::new();
        let (tx, rx) = sys.fused_connector("f1", FusedConnectorKind::AsyncFifo { capacity: 2 });
        let (tx2, rx2) = sys.fused_connector("f2", FusedConnectorKind::SyncHandshake);
        assert!(tx.index.is_none() && rx.index.is_none());
        assert_ne!(tx.component_link(), tx2.component_link());
        assert_ne!(rx.component_link(), rx2.component_link());
        let mut c = crate::ComponentBuilder::new("c");
        let s0 = c.location("s0");
        c.mark_end(s0);
        sys.add_component(c);
        let system = sys.build().unwrap();
        assert_eq!(system.program().processes().len(), 3); // 2 fused + 1 component
    }

    #[test]
    #[should_panic(expected = "fused-connector attachments cannot be re-ported")]
    fn fused_attachments_cannot_be_swapped() {
        let mut sys = SystemBuilder::new();
        let (tx, _rx) = sys.fused_connector("f", FusedConnectorKind::SyncHandshake);
        sys.set_send_port_kind(&tx, crate::SendPortKind::AsynBlocking);
    }
}
