//! Component construction and the standard component interfaces.
//!
//! [`ComponentBuilder`] wraps the kernel's [`ProcessBuilder`] and adds the
//! two standard interfaces of the paper (Fig. 3):
//!
//! * [`ComponentBuilder::send_msg`] — send a data message through a send
//!   port, then block until the port's `SendStatus` arrives (Fig. 9);
//! * [`ComponentBuilder::recv_msg`] — send a receive request through a
//!   receive port, await the `RecvStatus`, then take the (possibly stub)
//!   data message (Fig. 10).
//!
//! Because these interfaces are identical for every port kind, a connector
//! can be re-composed from different building blocks without touching any
//! component: the central claim of the plug-and-play approach.

use pnp_kernel::{Action, Expr, FieldPat, Guard, LValue, Loc, LocalId, ProcessBuilder};

use crate::signals::field;
use crate::system::{RecvAttachment, SendAttachment};

/// Where [`ComponentBuilder::recv_msg`] stores what it received.
///
/// Every field is optional; unbound fields are discarded.
#[derive(Debug, Clone, Default)]
pub struct ReceiveBinds {
    /// Receives the `RecvStatus` signal (`RECV_SUCC` or `RECV_FAIL`).
    pub status: Option<LocalId>,
    /// Receives the message payload (unspecified on `RECV_FAIL`).
    pub data: Option<LocalId>,
    /// Receives the message tag.
    pub tag: Option<LocalId>,
}

impl ReceiveBinds {
    /// Binds nothing (fire-and-forget receive).
    pub fn ignore() -> ReceiveBinds {
        ReceiveBinds::default()
    }

    /// Binds only the payload.
    pub fn data_into(data: LocalId) -> ReceiveBinds {
        ReceiveBinds {
            data: Some(data),
            ..ReceiveBinds::default()
        }
    }

    /// Binds the status signal.
    pub fn with_status(mut self, status: LocalId) -> ReceiveBinds {
        self.status = Some(status);
        self
    }

    /// Binds the tag.
    pub fn with_tag(mut self, tag: LocalId) -> ReceiveBinds {
        self.tag = Some(tag);
        self
    }
}

/// Builder for an architectural component.
///
/// A component is an ordinary kernel process; this builder adds the
/// standard interfaces for interacting with connectors. See the crate-level
/// example.
#[derive(Debug, Clone)]
pub struct ComponentBuilder {
    pub(crate) inner: ProcessBuilder,
    name: String,
    gensym: u32,
    /// Labels of the send/receive ports this component talks through,
    /// recorded for the architecture diagram.
    pub(crate) used_send_ports: Vec<String>,
    pub(crate) used_recv_ports: Vec<String>,
}

impl ComponentBuilder {
    /// Starts building a component.
    pub fn new(name: impl Into<String>) -> ComponentBuilder {
        let name = name.into();
        ComponentBuilder {
            inner: ProcessBuilder::new(name.clone()),
            name,
            gensym: 0,
            used_send_ports: Vec::new(),
            used_recv_ports: Vec::new(),
        }
    }

    /// The component's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a local variable.
    pub fn local(&mut self, name: impl Into<String>, init: i32) -> LocalId {
        self.inner.local(name, init)
    }

    /// Adds a control location.
    pub fn location(&mut self, name: impl Into<String>) -> Loc {
        self.inner.location(name)
    }

    /// Marks a location as a valid end state.
    pub fn mark_end(&mut self, loc: Loc) {
        self.inner.mark_end(loc)
    }

    /// Sets the initial location (defaults to the first added).
    pub fn set_initial(&mut self, loc: Loc) {
        self.inner.set_initial(loc)
    }

    /// Adds a raw transition (guards, assignments, assertions — anything
    /// not involving a connector).
    pub fn transition(
        &mut self,
        from: Loc,
        to: Loc,
        guard: Guard,
        action: Action,
        label: impl Into<String>,
    ) {
        self.inner.transition(from, to, guard, action, label)
    }

    /// Adds an unguarded skip transition.
    pub fn goto(&mut self, from: Loc, to: Loc, label: impl Into<String>) {
        self.inner
            .transition(from, to, Guard::always(), Action::Skip, label)
    }

    fn fresh_loc(&mut self, hint: &str) -> Loc {
        self.gensym += 1;
        let n = self.gensym;
        self.inner.location(format!("{hint}#{n}"))
    }

    /// Emits the standard *send* interface between `from` and `to`
    /// (paper Fig. 9): send `(data, tag)` through `port`, then wait for the
    /// `SendStatus` signal, optionally binding it into `status`.
    ///
    /// The interface is the same for every [`crate::SendPortKind`]; which
    /// point of the delivery the status confirms is the port's choice.
    pub fn send_msg(
        &mut self,
        from: Loc,
        to: Loc,
        port: &SendAttachment,
        data: Expr,
        tag: Expr,
        status: Option<LocalId>,
    ) {
        let link = port.component_link();
        if !self.used_send_ports.iter().any(|l| l == port.label()) {
            self.used_send_ports.push(port.label().to_string());
        }
        let awaiting = self.fresh_loc("await_send_status");
        self.inner.transition(
            from,
            awaiting,
            Guard::always(),
            Action::send(link.data, vec![data, tag, 0.into(), 0.into()]),
            format!("send via {}", port.label()),
        );
        let binds: Vec<(usize, LValue)> = status
            .map(|s| vec![(0usize, LValue::from(s))])
            .unwrap_or_default();
        self.inner.transition(
            awaiting,
            to,
            Guard::always(),
            Action::recv(link.signal, vec![FieldPat::Any, FieldPat::Any], binds),
            "await SendStatus",
        );
    }

    /// Emits the standard *receive* interface between `from` and `to`
    /// (paper Fig. 10): send a receive request through `port` (selective on
    /// `selective`'s tag when given), wait for the `RecvStatus`, then take
    /// the data message.
    ///
    /// On a non-blocking port the status may be `RECV_FAIL`, in which case
    /// the data message is an empty stub and `binds.data`/`binds.tag`
    /// receive meaningless values — check `binds.status` before use.
    pub fn recv_msg(
        &mut self,
        from: Loc,
        to: Loc,
        port: &RecvAttachment,
        selective: Option<Expr>,
        binds: ReceiveBinds,
    ) {
        let link = port.component_link();
        if !self.used_recv_ports.iter().any(|l| l == port.label()) {
            self.used_recv_ports.push(port.label().to_string());
        }
        let (sel_flag, sel_tag): (Expr, Expr) = match selective {
            Some(tag) => (1.into(), tag),
            None => (0.into(), 0.into()),
        };
        let awaiting_status = self.fresh_loc("await_recv_status");
        let awaiting_data = self.fresh_loc("await_recv_data");
        self.inner.transition(
            from,
            awaiting_status,
            Guard::always(),
            Action::send(link.data, vec![sel_flag, sel_tag, 0.into(), 0.into()]),
            format!("receive request via {}", port.label()),
        );
        let status_binds: Vec<(usize, LValue)> = binds
            .status
            .map(|s| vec![(0usize, LValue::from(s))])
            .unwrap_or_default();
        self.inner.transition(
            awaiting_status,
            awaiting_data,
            Guard::always(),
            Action::recv(
                link.signal,
                vec![FieldPat::Any, FieldPat::Any],
                status_binds,
            ),
            "await RecvStatus",
        );
        let mut data_binds: Vec<(usize, LValue)> = Vec::new();
        if let Some(d) = binds.data {
            data_binds.push((field::DATA, d.into()));
        }
        if let Some(t) = binds.tag {
            data_binds.push((field::TAG, t.into()));
        }
        self.inner.transition(
            awaiting_data,
            to,
            Guard::always(),
            Action::recv(link.data, vec![FieldPat::Any; 4], data_binds),
            "receive message",
        );
    }

    /// The number of locations created so far (interface emissions add
    /// hidden intermediate locations).
    pub fn location_count(&self) -> usize {
        self.inner.location_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receive_binds_builders() {
        let mut p = ProcessBuilder::new("x");
        let a = p.local("a", 0);
        let b = p.local("b", 0);
        let c = p.local("c", 0);
        let binds = ReceiveBinds::data_into(a).with_status(b).with_tag(c);
        assert_eq!(binds.data, Some(a));
        assert_eq!(binds.status, Some(b));
        assert_eq!(binds.tag, Some(c));
        let none = ReceiveBinds::ignore();
        assert!(none.data.is_none() && none.status.is_none() && none.tag.is_none());
    }

    #[test]
    fn send_msg_adds_one_hidden_location() {
        // Built through a real system so attachments exist.
        let mut sys = crate::SystemBuilder::new();
        let conn = sys.connector("c", crate::ChannelKind::SingleSlot);
        let tx = sys.send_port(conn, crate::SendPortKind::AsynBlocking);
        let mut comp = ComponentBuilder::new("comp");
        let s0 = comp.location("s0");
        let s1 = comp.location("s1");
        let before = comp.location_count();
        comp.send_msg(s0, s1, &tx, 1.into(), 0.into(), None);
        assert_eq!(comp.location_count(), before + 1);
    }

    #[test]
    fn recv_msg_adds_two_hidden_locations() {
        let mut sys = crate::SystemBuilder::new();
        let conn = sys.connector("c", crate::ChannelKind::SingleSlot);
        let rx = sys.recv_port(conn, crate::RecvPortKind::blocking());
        let mut comp = ComponentBuilder::new("comp");
        let s0 = comp.location("s0");
        let s1 = comp.location("s1");
        let before = comp.location_count();
        comp.recv_msg(s0, s1, &rx, None, ReceiveBinds::ignore());
        assert_eq!(comp.location_count(), before + 2);
    }
}
