//! Building-block-level explanation of counterexample traces.
//!
//! The paper's Section 6 asks for counterexamples that speak the designer's
//! language — "the deadlock is due to the buffer dropping messages" rather
//! than a list of low-level channel operations. [`System::explain_trace`]
//! renders a kernel [`Trace`] with every process resolved to its
//! architectural [`Role`](crate::Role) and every protocol signal decoded to
//! its name (`IN_OK`, `RECV_SUCC`, ...).

use std::fmt::Write as _;

use pnp_kernel::{EventKind, Trace, TraceEvent};

use crate::signals::{signal_name, SIGNAL_ARITY};
use crate::system::System;

impl System {
    /// Renders one trace event at the architectural level.
    pub fn explain_event(&self, event: &TraceEvent) -> String {
        if matches!(event.kind(), EventKind::Stutter) {
            return "(system idles)".to_string();
        }
        let actor = self.topology().role(event.proc()).describe();
        match event.kind() {
            EventKind::Internal => format!("[{actor}] {}", event.label()),
            EventKind::Send { chan, msg } | EventKind::Recv { chan, msg } => {
                let decl = &self.program().channels()[chan.index()];
                let decoded = decode(decl.name(), decl.arity(), msg.fields());
                format!("[{actor}] {} — {decoded}", event.label())
            }
            EventKind::Rendezvous {
                chan,
                msg,
                receiver,
            } => {
                let decl = &self.program().channels()[chan.index()];
                let decoded = decode(decl.name(), decl.arity(), msg.fields());
                let peer = self.topology().role(*receiver).describe();
                format!("[{actor}] -> [{peer}] {} — {decoded}", event.label())
            }
            EventKind::Stutter => unreachable!(),
        }
    }

    /// Renders a whole trace, one numbered line per event.
    ///
    /// # Example
    ///
    /// The buggy bridge design's counterexample (paper Section 4) renders
    /// lines like:
    ///
    /// ```text
    ///   3. [send port AsynBlockingSend of connector BlueEnter] IN_OK from channel — ...
    /// ```
    pub fn explain_trace(&self, trace: &Trace) -> String {
        let mut out = String::new();
        for (i, event) in trace.events().iter().enumerate() {
            let _ = writeln!(out, "{:3}. {}", i + 1, self.explain_event(event));
        }
        out
    }
}

/// Decodes a protocol message against the channel it traveled on: signal
/// channels get their first field rendered symbolically.
fn decode(chan_name: &str, arity: usize, fields: &[i32]) -> String {
    if arity == SIGNAL_ARITY && chan_name.ends_with(".signal") {
        let target = if fields[1] < 0 {
            "component".to_string()
        } else {
            format!("port #{}", fields[1])
        };
        format!("{chan_name}: {} to {target}", signal_name(fields[0]))
    } else {
        let rendered: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
        format!("{chan_name}!({})", rendered.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ChannelKind, ComponentBuilder, ReceiveBinds, RecvPortKind, SendPortKind, SystemBuilder,
    };
    use pnp_kernel::{Checker, Predicate, SafetyChecks};

    fn small_system() -> System {
        let mut sys = SystemBuilder::new();
        let got_g = sys.global("got", 0);
        let conn = sys.connector("wire", ChannelKind::SingleSlot);
        let tx = sys.send_port(conn, SendPortKind::AsynBlocking);
        let rx = sys.recv_port(conn, RecvPortKind::blocking());

        let mut producer = ComponentBuilder::new("producer");
        let p0 = producer.location("send");
        let p1 = producer.location("done");
        producer.mark_end(p1);
        producer.send_msg(p0, p1, &tx, 7.into(), 0.into(), None);

        let mut consumer = ComponentBuilder::new("consumer");
        let got = consumer.local("got", 0);
        let c0 = consumer.location("recv");
        let c1 = consumer.location("mark");
        let c2 = consumer.location("done");
        consumer.mark_end(c2);
        consumer.recv_msg(c0, c1, &rx, None, ReceiveBinds::data_into(got));
        consumer.transition(
            c1,
            c2,
            pnp_kernel::Guard::always(),
            pnp_kernel::Action::assign(got_g, pnp_kernel::expr::local(got)),
            "publish",
        );

        sys.add_component(producer);
        sys.add_component(consumer);
        sys.build().unwrap()
    }

    #[test]
    fn explanation_names_roles_and_signals() {
        let system = small_system();
        let g = system.program().global_by_name("got").unwrap();
        // Force a violation once the message arrives, to get a full trace
        // through the connector.
        let report = Checker::new(system.program())
            .check_safety(&SafetyChecks::invariants(vec![(
                "never delivered".into(),
                Predicate::from_expr(pnp_kernel::expr::ne(pnp_kernel::expr::global(g), 7.into())),
            )]))
            .unwrap();
        let trace = report
            .outcome
            .trace()
            .expect("expected a violation")
            .clone();
        let text = system.explain_trace(&trace);
        assert!(text.contains("component producer"), "{text}");
        assert!(text.contains("send port AsynBlockingSend"), "{text}");
        assert!(text.contains("channel SingleSlot"), "{text}");
        assert!(text.contains("IN_OK"), "{text}");
        assert!(text.contains("RECV_SUCC"), "{text}");
    }
}
