//! Channel building blocks: the storage-and-delivery side of connectors.
//!
//! A channel is the connector's buffer process (paper Fig. 11, generalized):
//! it accepts data messages from send ports (replying `IN_OK`/`IN_FAIL`),
//! accepts receive requests from receive ports (replying
//! `OUT_OK`+message or `OUT_FAIL`), and notifies the originating send port
//! with `RECV_OK` the first time a message is delivered (so synchronous
//! send ports can release their component).
//!
//! Five storage disciplines are provided:
//!
//! * [`ChannelKind::SingleSlot`] — one message (paper Fig. 11);
//! * [`ChannelKind::Fifo`] — bounded FIFO queue;
//! * [`ChannelKind::Priority`] — bounded queue delivered highest-tag-first;
//! * [`ChannelKind::Dropping`] — bounded FIFO that silently discards new
//!   messages when full (it still replies `IN_OK`, so the sender cannot
//!   tell — the paper's "drops messages without notifying the sender");
//! * [`ChannelKind::Sliding`] — bounded FIFO that evicts the *oldest*
//!   message when full (keep-latest; a library extension demonstrating the
//!   paper's claim that the block set "can be expanded").
//!
//! All kinds support *selective receive* (requests carrying a tag match
//! only messages with that tag) and *copy receive* (delivery leaves the
//! message buffered; `RECV_OK` is only sent on first delivery).
//!
//! # Fault decorators
//!
//! Any base kind can be wrapped in a [`ChannelFault`] decorator
//! ([`ChannelKind::lossy`], [`ChannelKind::duplicating`],
//! [`ChannelKind::reordering`]) to model an unreliable medium. The
//! decorated channel keeps the base kind's storage discipline and adds
//! nondeterministic faulty behaviour that the checker explores alongside
//! the normal behaviour:
//!
//! * **lossy** — an incoming message may be lost in transit; the channel
//!   discards it and replies `IN_FAIL` to the send port (so a retrying or
//!   checking port can compensate, while a fire-and-forget port silently
//!   loses data);
//! * **duplicating** — an incoming message may be stored twice (the
//!   duplicate never triggers a second `RECV_OK`, so synchronous senders
//!   are acknowledged exactly once);
//! * **reordering** — delivery may take *any* matching buffered message
//!   (bag delivery), not just the head.
//!
//! Decorators do not nest: faults compose with base disciplines, not with
//! each other.

use pnp_kernel::{expr, Action, FieldPat, Guard, NativeGuard, NativeOp, ProcessBuilder};

use crate::signals::{field, SynChan, IN_FAIL, IN_OK, OUT_FAIL, OUT_OK, RECV_OK};

/// A fault-injection decorator for channels (robustness extension; not in
/// the paper's Fig. 1 library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelFault {
    /// May lose an incoming message in transit, replying `IN_FAIL`.
    Lossy,
    /// May store an incoming message twice.
    Duplicating,
    /// May deliver any matching buffered message, not just the head.
    Reordering,
}

impl ChannelFault {
    /// Every fault decorator, in library order.
    pub const ALL: [ChannelFault; 3] = [
        ChannelFault::Lossy,
        ChannelFault::Duplicating,
        ChannelFault::Reordering,
    ];

    /// The decorator's library name.
    pub fn name(self) -> &'static str {
        match self {
            ChannelFault::Lossy => "Lossy",
            ChannelFault::Duplicating => "Duplicating",
            ChannelFault::Reordering => "Reordering",
        }
    }
}

/// The base storage disciplines a [`ChannelFault`] decorator can wrap: the
/// five non-faulty [`ChannelKind`]s, kept as a separate `Copy` enum so
/// decorated kinds stay `Copy` and decorators provably do not nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseChannel {
    /// A buffer holding a single message.
    SingleSlot,
    /// A FIFO queue of the given capacity.
    Fifo {
        /// Maximum number of buffered messages (≥ 1).
        capacity: usize,
    },
    /// A priority queue of the given capacity.
    Priority {
        /// Maximum number of buffered messages (≥ 1).
        capacity: usize,
    },
    /// A FIFO queue that silently drops new messages when full.
    Dropping {
        /// Maximum number of buffered messages (≥ 1).
        capacity: usize,
    },
    /// A sliding-window FIFO (evicts the oldest message when full).
    Sliding {
        /// Maximum number of buffered messages (≥ 1).
        capacity: usize,
    },
}

impl BaseChannel {
    /// The equivalent undecorated [`ChannelKind`].
    pub fn kind(self) -> ChannelKind {
        match self {
            BaseChannel::SingleSlot => ChannelKind::SingleSlot,
            BaseChannel::Fifo { capacity } => ChannelKind::Fifo { capacity },
            BaseChannel::Priority { capacity } => ChannelKind::Priority { capacity },
            BaseChannel::Dropping { capacity } => ChannelKind::Dropping { capacity },
            BaseChannel::Sliding { capacity } => ChannelKind::Sliding { capacity },
        }
    }
}

impl From<BaseChannel> for ChannelKind {
    fn from(base: BaseChannel) -> ChannelKind {
        base.kind()
    }
}

/// The channel variants of the building-block library (paper Fig. 1), plus
/// the fault decorators of the robustness extension (module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// A buffer holding a single message.
    SingleSlot,
    /// A FIFO queue of the given capacity.
    Fifo {
        /// Maximum number of buffered messages (≥ 1).
        capacity: usize,
    },
    /// A priority queue of the given capacity; messages with larger tags
    /// are delivered first (FIFO among equal tags).
    Priority {
        /// Maximum number of buffered messages (≥ 1).
        capacity: usize,
    },
    /// A FIFO queue that silently drops new messages when full.
    Dropping {
        /// Maximum number of buffered messages (≥ 1).
        capacity: usize,
    },
    /// A sliding-window FIFO: when full, the *oldest* message is discarded
    /// to make room (keep-latest semantics, e.g. sensor readings).
    Sliding {
        /// Maximum number of buffered messages (≥ 1).
        capacity: usize,
    },
    /// A base kind that may nondeterministically lose a message in transit
    /// (the channel discards it and replies `IN_FAIL`).
    Lossy {
        /// The wrapped storage discipline.
        base: BaseChannel,
    },
    /// A base kind that may nondeterministically store a message twice.
    Duplicating {
        /// The wrapped storage discipline.
        base: BaseChannel,
    },
    /// A base kind whose delivery may take any matching buffered message
    /// (bag delivery) instead of the head.
    Reordering {
        /// The wrapped storage discipline.
        base: BaseChannel,
    },
}

impl ChannelKind {
    /// Wraps a base kind in the lossy fault decorator.
    ///
    /// # Panics
    ///
    /// Panics if `inner` is already decorated (faults do not nest).
    pub fn lossy(inner: ChannelKind) -> ChannelKind {
        ChannelKind::Lossy {
            base: inner.into_base(),
        }
    }

    /// Wraps a base kind in the duplicating fault decorator.
    ///
    /// # Panics
    ///
    /// Panics if `inner` is already decorated (faults do not nest).
    pub fn duplicating(inner: ChannelKind) -> ChannelKind {
        ChannelKind::Duplicating {
            base: inner.into_base(),
        }
    }

    /// Wraps a base kind in the reordering fault decorator.
    ///
    /// # Panics
    ///
    /// Panics if `inner` is already decorated (faults do not nest).
    pub fn reordering(inner: ChannelKind) -> ChannelKind {
        ChannelKind::Reordering {
            base: inner.into_base(),
        }
    }

    /// Wraps a base kind in the given fault decorator.
    ///
    /// # Panics
    ///
    /// Panics if `inner` is already decorated (faults do not nest).
    pub fn with_fault(fault: ChannelFault, inner: ChannelKind) -> ChannelKind {
        match fault {
            ChannelFault::Lossy => ChannelKind::lossy(inner),
            ChannelFault::Duplicating => ChannelKind::duplicating(inner),
            ChannelFault::Reordering => ChannelKind::reordering(inner),
        }
    }

    fn into_base(self) -> BaseChannel {
        match self {
            ChannelKind::SingleSlot => BaseChannel::SingleSlot,
            ChannelKind::Fifo { capacity } => BaseChannel::Fifo { capacity },
            ChannelKind::Priority { capacity } => BaseChannel::Priority { capacity },
            ChannelKind::Dropping { capacity } => BaseChannel::Dropping { capacity },
            ChannelKind::Sliding { capacity } => BaseChannel::Sliding { capacity },
            ChannelKind::Lossy { .. }
            | ChannelKind::Duplicating { .. }
            | ChannelKind::Reordering { .. } => {
                panic!("fault decorators do not nest")
            }
        }
    }

    /// The fault decorator, if any.
    pub fn fault(self) -> Option<ChannelFault> {
        match self {
            ChannelKind::Lossy { .. } => Some(ChannelFault::Lossy),
            ChannelKind::Duplicating { .. } => Some(ChannelFault::Duplicating),
            ChannelKind::Reordering { .. } => Some(ChannelFault::Reordering),
            _ => None,
        }
    }

    /// The storage discipline with any fault decorator stripped.
    pub fn undecorated(self) -> ChannelKind {
        match self {
            ChannelKind::Lossy { base }
            | ChannelKind::Duplicating { base }
            | ChannelKind::Reordering { base } => base.kind(),
            other => other,
        }
    }

    /// The buffer capacity.
    pub fn capacity(self) -> usize {
        match self.undecorated() {
            ChannelKind::SingleSlot => 1,
            ChannelKind::Fifo { capacity }
            | ChannelKind::Priority { capacity }
            | ChannelKind::Dropping { capacity }
            | ChannelKind::Sliding { capacity } => capacity,
            decorated => unreachable!("undecorated returned {decorated:?}"),
        }
    }

    /// The library name of the kind (e.g. `"FIFO(5)"`, `"Lossy(FIFO(5))"`).
    pub fn name(self) -> String {
        match self {
            ChannelKind::SingleSlot => "SingleSlot".to_string(),
            ChannelKind::Fifo { capacity } => format!("FIFO({capacity})"),
            ChannelKind::Priority { capacity } => format!("Priority({capacity})"),
            ChannelKind::Dropping { capacity } => format!("Dropping({capacity})"),
            ChannelKind::Sliding { capacity } => format!("Sliding({capacity})"),
            ChannelKind::Lossy { base } => format!("Lossy({})", base.kind().name()),
            ChannelKind::Duplicating { base } => {
                format!("Duplicating({})", base.kind().name())
            }
            ChannelKind::Reordering { base } => {
                format!("Reordering({})", base.kind().name())
            }
        }
    }

    fn is_priority(self) -> bool {
        matches!(self.undecorated(), ChannelKind::Priority { .. })
    }

    fn is_dropping(self) -> bool {
        matches!(self.undecorated(), ChannelKind::Dropping { .. })
    }

    fn is_sliding(self) -> bool {
        matches!(self.undecorated(), ChannelKind::Sliding { .. })
    }
}

/// Per-slot fields in the channel's buffer block.
const SLOT_FIELDS: usize = 4;
const S_DATA: usize = 0;
const S_TAG: usize = 1;
const S_SENDER: usize = 2;
/// Set once the slot has been delivered at least once (so `RECV_OK` is sent
/// exactly once per message, even under copy receive).
const S_NOTIFIED: usize = 3;

/// Indices of the channel process's scratch locals, relative to the start
/// of the locals (the buffer block comes first).
struct Layout {
    cap: usize,
    buf: usize,
    len: usize,
    in_data: usize,
    in_tag: usize,
    in_sender: usize,
    req_sel: usize,
    req_tag: usize,
    req_pid: usize,
    req_remove: usize,
    out_data: usize,
    out_tag: usize,
    out_sender: usize,
    do_notify: usize,
    notify_pid: usize,
}

impl Layout {
    fn slot(&self, index: usize, field: usize) -> usize {
        self.buf + index * SLOT_FIELDS + field
    }
}

/// Finds the buffer index a request would take, or `None`.
///
/// Non-selective requests take the head (index 0 — for priority channels
/// insertion keeps the buffer sorted, so the head is the most urgent).
/// Selective requests take the first message whose tag matches.
fn match_index(l: &Layout, locals: &[i32]) -> Option<usize> {
    let len = locals[l.len] as usize;
    if locals[l.req_sel] == 0 {
        if len > 0 {
            Some(0)
        } else {
            None
        }
    } else {
        let want = locals[l.req_tag];
        (0..len).find(|&i| locals[l.buf + i * SLOT_FIELDS + S_TAG] == want)
    }
}

/// Whether slot `i` is occupied and satisfies the pending request (used by
/// reordering channels, whose delivery may take any matching slot).
fn slot_matches(l: &Layout, locals: &[i32], i: usize) -> bool {
    let len = locals[l.len] as usize;
    i < len && (locals[l.req_sel] == 0 || locals[l.slot(i, S_TAG)] == locals[l.req_tag])
}

/// Inserts the staged incoming message (`in_*`) into the buffer at the
/// position the storage discipline dictates: the tail for FIFO, sorted
/// descending by tag (stable) for priority. `pre_notified` marks the slot
/// as already acknowledged — fault duplicates use it so a message never
/// triggers a second `RECV_OK`.
fn insert_incoming(l: &Layout, locals: &mut [i32], priority: bool, pre_notified: bool) {
    let n = locals[l.len] as usize;
    let pos = if priority {
        (0..n)
            .find(|&i| locals[l.slot(i, S_TAG)] < locals[l.in_tag])
            .unwrap_or(n)
    } else {
        n
    };
    let mut i = n;
    while i > pos {
        for f in 0..SLOT_FIELDS {
            locals[l.buf + i * SLOT_FIELDS + f] = locals[l.buf + (i - 1) * SLOT_FIELDS + f];
        }
        i -= 1;
    }
    locals[l.slot(pos, S_DATA)] = locals[l.in_data];
    locals[l.slot(pos, S_TAG)] = locals[l.in_tag];
    locals[l.slot(pos, S_SENDER)] = locals[l.in_sender];
    locals[l.slot(pos, S_NOTIFIED)] = pre_notified as i32;
    locals[l.len] += 1;
}

/// Latches the reply address and clears the incoming scratch.
fn finish_incoming(l: &Layout, locals: &mut [i32]) {
    locals[l.notify_pid] = locals[l.in_sender];
    locals[l.in_data] = 0;
    locals[l.in_tag] = 0;
    locals[l.in_sender] = 0;
}

/// Copies slot `i` into the outgoing scratch and removes or marks it
/// according to the pending request, then clears the request scratch.
fn take_slot(l: &Layout, locals: &mut [i32], i: usize) {
    locals[l.out_data] = locals[l.slot(i, S_DATA)];
    locals[l.out_tag] = locals[l.slot(i, S_TAG)];
    locals[l.out_sender] = locals[l.slot(i, S_SENDER)];
    locals[l.do_notify] = (locals[l.slot(i, S_NOTIFIED)] == 0) as i32;
    if locals[l.req_remove] != 0 {
        // Remove slot i, shifting the tail left.
        let n = locals[l.len] as usize;
        for j in i..n - 1 {
            for f in 0..SLOT_FIELDS {
                locals[l.buf + j * SLOT_FIELDS + f] = locals[l.buf + (j + 1) * SLOT_FIELDS + f];
            }
        }
        for f in 0..SLOT_FIELDS {
            locals[l.buf + (n - 1) * SLOT_FIELDS + f] = 0;
        }
        locals[l.len] -= 1;
    } else {
        locals[l.slot(i, S_NOTIFIED)] = 1;
    }
    locals[l.notify_pid] = locals[l.req_pid];
    locals[l.req_sel] = 0;
    locals[l.req_tag] = 0;
    locals[l.req_pid] = 0;
    locals[l.req_remove] = 0;
}

/// Generates the channel process for the given kind.
///
/// `sender` is the `SynChan` shared with every send port of the connector;
/// `receiver` is the `SynChan` shared with every receive port.
///
/// # Panics
///
/// Panics if the kind's capacity is zero.
pub(crate) fn channel_process(
    name: &str,
    kind: ChannelKind,
    sender: SynChan,
    receiver: SynChan,
) -> ProcessBuilder {
    let cap = kind.capacity();
    let fault = kind.fault();
    assert!(cap >= 1, "channel capacity must be at least 1");

    let mut p = ProcessBuilder::new(name);
    let buf = p.local_block("buf", cap * SLOT_FIELDS, 0);
    let len = p.local("len", 0);
    let in_data = p.local("in_data", 0);
    let in_tag = p.local("in_tag", 0);
    let in_sender = p.local("in_sender", 0);
    let req_sel = p.local("req_sel", 0);
    let req_tag = p.local("req_tag", 0);
    let req_pid = p.local("req_pid", 0);
    let req_remove = p.local("req_remove", 0);
    let out_data = p.local("out_data", 0);
    let out_tag = p.local("out_tag", 0);
    let out_sender = p.local("out_sender", 0);
    let do_notify = p.local("do_notify", 0);
    let notify_pid = p.local("notify_pid", 0);

    let l = Layout {
        cap,
        buf: buf.index(),
        len: len.index(),
        in_data: in_data.index(),
        in_tag: in_tag.index(),
        in_sender: in_sender.index(),
        req_sel: req_sel.index(),
        req_tag: req_tag.index(),
        req_pid: req_pid.index(),
        req_remove: req_remove.index(),
        out_data: out_data.index(),
        out_tag: out_tag.index(),
        out_sender: out_sender.index(),
        do_notify: do_notify.index(),
        notify_pid: notify_pid.index(),
    };

    let idle = p.location("idle");
    let got_msg = p.location("got_msg");
    let stored = p.location("stored");
    let reply_in_fail = p.location("reply_in_fail");
    let got_req = p.location("got_req");
    let reply_out_ok = p.location("reply_out_ok");
    let deliver = p.location("deliver");
    let post_deliver = p.location("post_deliver");
    let clear_out = p.location("clear_out");
    let reply_out_fail = p.location("reply_out_fail");

    // --- idle: accept either a data message or a receive request ---------
    p.transition(
        idle,
        got_msg,
        Guard::always(),
        Action::recv(
            sender.data,
            vec![FieldPat::Any; 4],
            vec![
                (field::DATA, in_data.into()),
                (field::TAG, in_tag.into()),
                (field::SENDER, in_sender.into()),
            ],
        ),
        "message from send port",
    );
    p.transition(
        idle,
        got_req,
        Guard::always(),
        Action::recv(
            receiver.data,
            vec![FieldPat::Any; 4],
            vec![
                (field::DATA, req_sel.into()),
                (field::TAG, req_tag.into()),
                (field::SENDER, req_pid.into()),
                (field::DEST, req_remove.into()),
            ],
        ),
        "receive request from receive port",
    );

    // --- got_msg: store or reject ----------------------------------------
    let lay = copy_layout(&l);
    let has_space = NativeGuard::new("buffer has space", move |locals| {
        (locals[lay.len] as usize) < lay.cap
    });
    let lay = copy_layout(&l);
    let is_full = NativeGuard::new("buffer full", move |locals| {
        (locals[lay.len] as usize) >= lay.cap
    });

    let lay = copy_layout(&l);
    let priority = kind.is_priority();
    let store = NativeOp::new("store message", move |locals| {
        insert_incoming(&lay, locals, priority, false);
        finish_incoming(&lay, locals);
    });

    let lay = copy_layout(&l);
    let discard_incoming = NativeOp::new("discard incoming message", move |locals| {
        finish_incoming(&lay, locals);
    });

    p.transition(
        got_msg,
        stored,
        Guard::native(has_space),
        Action::Native(store),
        "store in buffer",
    );
    if fault == Some(ChannelFault::Lossy) {
        // The medium may lose the message in transit, whatever the buffer
        // state. The channel reports the loss with IN_FAIL, so a retrying
        // or checking send port can compensate while a fire-and-forget
        // port loses the message silently.
        p.transition(
            got_msg,
            reply_in_fail,
            Guard::always(),
            Action::Native(discard_incoming.clone()),
            "lose message in transit (lossy fault)",
        );
    }
    if fault == Some(ChannelFault::Duplicating) {
        let lay = copy_layout(&l);
        let has_space_for_two = NativeGuard::new("buffer has space for two", move |locals| {
            (locals[lay.len] as usize) + 2 <= lay.cap
        });
        let lay = copy_layout(&l);
        let store_twice = NativeOp::new("store message twice", move |locals| {
            insert_incoming(&lay, locals, priority, false);
            // The duplicate is pre-notified: only the original triggers
            // RECV_OK, so synchronous senders are released exactly once.
            insert_incoming(&lay, locals, priority, true);
            finish_incoming(&lay, locals);
        });
        p.transition(
            got_msg,
            stored,
            Guard::native(has_space_for_two),
            Action::Native(store_twice),
            "duplicate message (duplicating fault)",
        );
    }
    if kind.is_sliding() {
        // Full buffer: evict the oldest message, then store the new one.
        let lay = copy_layout(&l);
        let evict_and_store = NativeOp::new("evict oldest and store", move |locals| {
            let n = locals[lay.len] as usize;
            for j in 0..n - 1 {
                for f in 0..SLOT_FIELDS {
                    locals[lay.buf + j * SLOT_FIELDS + f] =
                        locals[lay.buf + (j + 1) * SLOT_FIELDS + f];
                }
            }
            let last = n - 1;
            locals[lay.slot(last, S_DATA)] = locals[lay.in_data];
            locals[lay.slot(last, S_TAG)] = locals[lay.in_tag];
            locals[lay.slot(last, S_SENDER)] = locals[lay.in_sender];
            locals[lay.slot(last, S_NOTIFIED)] = 0;
            locals[lay.notify_pid] = locals[lay.in_sender];
            locals[lay.in_data] = 0;
            locals[lay.in_tag] = 0;
            locals[lay.in_sender] = 0;
        });
        p.transition(
            got_msg,
            stored,
            Guard::native(is_full),
            Action::Native(evict_and_store),
            "slide window (evict oldest)",
        );
    } else if kind.is_dropping() {
        // Full buffer: drop silently, still confirming IN_OK.
        p.transition(
            got_msg,
            stored,
            Guard::native(is_full),
            Action::Native(discard_incoming),
            "drop message (buffer full)",
        );
    } else {
        p.transition(
            got_msg,
            reply_in_fail,
            Guard::native(is_full),
            Action::Native(discard_incoming),
            "reject message (buffer full)",
        );
    }
    p.transition(
        stored,
        idle,
        Guard::always(),
        Action::send(sender.signal, vec![IN_OK.into(), expr::local(notify_pid)]),
        "IN_OK to send port",
    );
    p.transition(
        reply_in_fail,
        idle,
        Guard::always(),
        Action::send(sender.signal, vec![IN_FAIL.into(), expr::local(notify_pid)]),
        "IN_FAIL to send port",
    );

    // --- got_req: deliver or fail -----------------------------------------
    let lay = copy_layout(&l);
    let has_match = NativeGuard::new("matching message available", move |locals| {
        match_index(&lay, locals).is_some()
    });
    let lay = copy_layout(&l);
    let no_match = NativeGuard::new("no matching message", move |locals| {
        match_index(&lay, locals).is_none()
    });

    let lay = copy_layout(&l);
    let select = NativeOp::new("select message", move |locals| {
        let i = match_index(&lay, locals).expect("select fired without a match");
        take_slot(&lay, locals, i);
    });

    let lay = copy_layout(&l);
    let reject_request = NativeOp::new("reject receive request", move |locals| {
        locals[lay.notify_pid] = locals[lay.req_pid];
        locals[lay.req_sel] = 0;
        locals[lay.req_tag] = 0;
        locals[lay.req_pid] = 0;
        locals[lay.req_remove] = 0;
    });

    if fault == Some(ChannelFault::Reordering) {
        // Bag delivery: any matching buffered message may be taken, not
        // just the one `match_index` picks. One transition per slot keeps
        // each choice a distinct nondeterministic branch.
        for i in 0..cap {
            let lay = copy_layout(&l);
            let slot_ready = NativeGuard::new(format!("slot {i} matches"), move |locals| {
                slot_matches(&lay, locals, i)
            });
            let lay = copy_layout(&l);
            let take_any = NativeOp::new(format!("take slot {i}"), move |locals| {
                take_slot(&lay, locals, i);
            });
            p.transition(
                got_req,
                reply_out_ok,
                Guard::native(slot_ready),
                Action::Native(take_any),
                "take any matching message (reordering fault)",
            );
        }
    } else {
        p.transition(
            got_req,
            reply_out_ok,
            Guard::native(has_match),
            Action::Native(select),
            "select matching message",
        );
    }
    p.transition(
        got_req,
        reply_out_fail,
        Guard::native(no_match),
        Action::Native(reject_request),
        "no matching message",
    );
    p.transition(
        reply_out_ok,
        deliver,
        Guard::always(),
        Action::send(
            receiver.signal,
            vec![OUT_OK.into(), expr::local(notify_pid)],
        ),
        "OUT_OK to receive port",
    );
    p.transition(
        deliver,
        post_deliver,
        Guard::always(),
        Action::send(
            receiver.data,
            vec![
                expr::local(out_data),
                expr::local(out_tag),
                expr::local(out_sender),
                expr::local(notify_pid),
            ],
        ),
        "deliver message to receive port",
    );
    // Notify the originating send port exactly once per message.
    p.transition(
        post_deliver,
        clear_out,
        Guard::when(expr::eq(expr::local(do_notify), 1.into())),
        Action::send(sender.signal, vec![RECV_OK.into(), expr::local(out_sender)]),
        "RECV_OK to send port",
    );
    let lay = copy_layout(&l);
    let clear_out_op = NativeOp::new("clear delivery scratch", move |locals| {
        locals[lay.out_data] = 0;
        locals[lay.out_tag] = 0;
        locals[lay.out_sender] = 0;
        locals[lay.do_notify] = 0;
    });
    p.transition(
        post_deliver,
        idle,
        Guard::when(expr::eq(expr::local(do_notify), 0.into())),
        Action::Native(clear_out_op.clone()),
        "skip RECV_OK (already notified)",
    );
    p.transition(
        clear_out,
        idle,
        Guard::always(),
        Action::Native(clear_out_op),
        "clear delivery scratch",
    );
    p.transition(
        reply_out_fail,
        idle,
        Guard::always(),
        Action::send(
            receiver.signal,
            vec![OUT_FAIL.into(), expr::local(notify_pid)],
        ),
        "OUT_FAIL to receive port",
    );

    // A resting channel counts as properly terminated even while holding
    // undelivered messages (the paper's buffers may end non-empty).
    p.mark_end(idle);
    p
}

/// The number of scratch locals following the buffer block in a channel
/// process (see `Layout`).
const SCRATCH_LOCALS: usize = 13;

/// Reads how many messages a connector's channel process currently
/// buffers, given a state view and the channel process's id.
///
/// Returns `None` if the process is not a channel building block. This is
/// the supported way for properties to observe buffer occupancy (the
/// buffer lives in the block's locals, not in a kernel queue).
///
/// ```
/// # use pnp_core::*;
/// # use pnp_kernel::Simulator;
/// # let mut sys = SystemBuilder::new();
/// # let conn = sys.connector("wire", ChannelKind::Fifo { capacity: 2 });
/// # let tx = sys.send_port(conn, SendPortKind::AsynBlocking);
/// # let rx = sys.recv_port(conn, RecvPortKind::blocking());
/// # let mut c = ComponentBuilder::new("c");
/// # let s0 = c.location("s0");
/// # c.mark_end(s0);
/// # sys.add_component(c);
/// # let system = sys.build().unwrap();
/// # let sim = Simulator::new(system.program(), 0);
/// let pid = system.program().process_by_name("wire.channel").unwrap();
/// assert_eq!(channel_occupancy(&sim.view(), pid), Some(0));
/// ```
pub fn channel_occupancy(
    view: &pnp_kernel::StateView<'_>,
    process: pnp_kernel::ProcId,
) -> Option<i32> {
    let def = view.program().processes().get(process.index())?;
    if !def.name().ends_with(".channel") || def.local_count() < SCRATCH_LOCALS + SLOT_FIELDS {
        return None;
    }
    Some(view.local(process, def.local_count() - SCRATCH_LOCALS))
}

/// `Layout` is tiny and `Copy`-like, but native closures each need an owned
/// copy; this keeps the call sites readable.
fn copy_layout(l: &Layout) -> Layout {
    Layout {
        cap: l.cap,
        buf: l.buf,
        len: l.len,
        in_data: l.in_data,
        in_tag: l.in_tag,
        in_sender: l.in_sender,
        req_sel: l.req_sel,
        req_tag: l.req_tag,
        req_pid: l.req_pid,
        req_remove: l.req_remove,
        out_data: l.out_data,
        out_tag: l.out_tag,
        out_sender: l.out_sender,
        do_notify: l.do_notify,
        notify_pid: l.notify_pid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_capacities() {
        assert_eq!(ChannelKind::SingleSlot.name(), "SingleSlot");
        assert_eq!(ChannelKind::SingleSlot.capacity(), 1);
        assert_eq!(ChannelKind::Fifo { capacity: 5 }.name(), "FIFO(5)");
        assert_eq!(ChannelKind::Fifo { capacity: 5 }.capacity(), 5);
        assert_eq!(ChannelKind::Priority { capacity: 3 }.name(), "Priority(3)");
        assert_eq!(ChannelKind::Dropping { capacity: 2 }.name(), "Dropping(2)");
        assert_eq!(ChannelKind::Sliding { capacity: 2 }.name(), "Sliding(2)");
        assert_eq!(ChannelKind::Sliding { capacity: 2 }.capacity(), 2);
    }

    #[test]
    fn all_channel_templates_validate() {
        use pnp_kernel::ProgramBuilder;
        let kinds = [
            ChannelKind::SingleSlot,
            ChannelKind::Fifo { capacity: 3 },
            ChannelKind::Priority { capacity: 3 },
            ChannelKind::Dropping { capacity: 2 },
            ChannelKind::Sliding { capacity: 2 },
        ];
        let mut pb = ProgramBuilder::new();
        let s = SynChan::declare(&mut pb, "s");
        let r = SynChan::declare(&mut pb, "r");
        for (i, kind) in kinds.iter().enumerate() {
            let chan = channel_process(&format!("chan{i}"), *kind, s, r);
            pb.add_process(chan).unwrap();
        }
        pb.build().unwrap();
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let mut pb = pnp_kernel::ProgramBuilder::new();
        let s = SynChan::declare(&mut pb, "s");
        let r = SynChan::declare(&mut pb, "r");
        channel_process("bad", ChannelKind::Fifo { capacity: 0 }, s, r);
    }

    #[test]
    fn fault_decorators_wrap_names_and_keep_base_semantics_flags() {
        let base = ChannelKind::Fifo { capacity: 3 };
        let lossy = ChannelKind::lossy(base);
        assert_eq!(lossy.name(), "Lossy(FIFO(3))");
        assert_eq!(lossy.capacity(), 3);
        assert_eq!(lossy.fault(), Some(ChannelFault::Lossy));
        assert_eq!(lossy.undecorated(), base);
        assert_eq!(base.fault(), None);
        assert_eq!(base.undecorated(), base);

        let dup = ChannelKind::duplicating(ChannelKind::Priority { capacity: 2 });
        assert_eq!(dup.name(), "Duplicating(Priority(2))");
        assert!(dup.is_priority());
        let reo = ChannelKind::reordering(ChannelKind::Sliding { capacity: 4 });
        assert_eq!(reo.name(), "Reordering(Sliding(4))");
        assert!(reo.is_sliding());

        for fault in ChannelFault::ALL {
            let k = ChannelKind::with_fault(fault, ChannelKind::SingleSlot);
            assert_eq!(k.fault(), Some(fault));
            assert_eq!(k.undecorated(), ChannelKind::SingleSlot);
        }
    }

    #[test]
    #[should_panic(expected = "fault decorators do not nest")]
    fn fault_decorators_do_not_nest() {
        ChannelKind::lossy(ChannelKind::duplicating(ChannelKind::SingleSlot));
    }

    #[test]
    fn decorated_channel_templates_validate() {
        use pnp_kernel::ProgramBuilder;
        let mut pb = ProgramBuilder::new();
        let s = SynChan::declare(&mut pb, "s");
        let r = SynChan::declare(&mut pb, "r");
        let mut i = 0;
        for fault in ChannelFault::ALL {
            for base in [
                ChannelKind::SingleSlot,
                ChannelKind::Fifo { capacity: 3 },
                ChannelKind::Priority { capacity: 3 },
                ChannelKind::Dropping { capacity: 2 },
                ChannelKind::Sliding { capacity: 2 },
            ] {
                let kind = ChannelKind::with_fault(fault, base);
                let chan = channel_process(&format!("chan{i}"), kind, s, r);
                pb.add_process(chan).unwrap();
                i += 1;
            }
        }
        pb.build().unwrap();
    }

    /// Drive the native store/select ops directly on a locals array.
    mod native_ops {
        use super::*;

        /// Builds a layout for direct native-op testing (mirrors the local
        /// declaration order in `channel_process`).
        fn layout(cap: usize) -> Layout {
            let buf = 0;
            let base = cap * SLOT_FIELDS;
            Layout {
                cap,
                buf,
                len: base,
                in_data: base + 1,
                in_tag: base + 2,
                in_sender: base + 3,
                req_sel: base + 4,
                req_tag: base + 5,
                req_pid: base + 6,
                req_remove: base + 7,
                out_data: base + 8,
                out_tag: base + 9,
                out_sender: base + 10,
                do_notify: base + 11,
                notify_pid: base + 12,
            }
        }

        fn locals_for(cap: usize) -> Vec<i32> {
            vec![0; cap * SLOT_FIELDS + 13]
        }

        fn store(l: &Layout, locals: &mut [i32], priority: bool, data: i32, tag: i32, sender: i32) {
            locals[l.in_data] = data;
            locals[l.in_tag] = tag;
            locals[l.in_sender] = sender;
            let n = locals[l.len] as usize;
            let pos = if priority {
                (0..n)
                    .find(|&i| locals[l.slot(i, S_TAG)] < locals[l.in_tag])
                    .unwrap_or(n)
            } else {
                n
            };
            let mut i = n;
            while i > pos {
                for f in 0..SLOT_FIELDS {
                    locals[l.buf + i * SLOT_FIELDS + f] = locals[l.buf + (i - 1) * SLOT_FIELDS + f];
                }
                i -= 1;
            }
            locals[l.slot(pos, S_DATA)] = locals[l.in_data];
            locals[l.slot(pos, S_TAG)] = locals[l.in_tag];
            locals[l.slot(pos, S_SENDER)] = locals[l.in_sender];
            locals[l.slot(pos, S_NOTIFIED)] = 0;
            locals[l.len] += 1;
        }

        #[test]
        fn fifo_store_appends() {
            let l = layout(3);
            let mut locals = locals_for(3);
            store(&l, &mut locals, false, 10, 0, 5);
            store(&l, &mut locals, false, 20, 0, 6);
            assert_eq!(locals[l.len], 2);
            assert_eq!(locals[l.slot(0, S_DATA)], 10);
            assert_eq!(locals[l.slot(1, S_DATA)], 20);
        }

        #[test]
        fn priority_store_keeps_sorted_order() {
            let l = layout(4);
            let mut locals = locals_for(4);
            store(&l, &mut locals, true, 100, 1, 0);
            store(&l, &mut locals, true, 200, 3, 0);
            store(&l, &mut locals, true, 300, 2, 0);
            store(&l, &mut locals, true, 400, 3, 0);
            let tags: Vec<i32> = (0..4).map(|i| locals[l.slot(i, S_TAG)]).collect();
            assert_eq!(tags, [3, 3, 2, 1]);
            // FIFO among equal priorities: 200 (first tag-3) stays ahead.
            assert_eq!(locals[l.slot(0, S_DATA)], 200);
            assert_eq!(locals[l.slot(1, S_DATA)], 400);
        }

        #[test]
        fn match_index_selects_head_or_tag() {
            let l = layout(3);
            let mut locals = locals_for(3);
            store(&l, &mut locals, false, 10, 7, 0);
            store(&l, &mut locals, false, 20, 9, 0);
            // Non-selective: head.
            locals[l.req_sel] = 0;
            assert_eq!(match_index(&l, &locals), Some(0));
            // Selective on tag 9: second slot.
            locals[l.req_sel] = 1;
            locals[l.req_tag] = 9;
            assert_eq!(match_index(&l, &locals), Some(1));
            // Selective on a missing tag: none.
            locals[l.req_tag] = 42;
            assert_eq!(match_index(&l, &locals), None);
        }

        #[test]
        fn match_index_on_empty_buffer_is_none() {
            let l = layout(2);
            let locals = locals_for(2);
            assert_eq!(match_index(&l, &locals), None);
        }

        #[test]
        fn duplicate_insert_marks_the_copy_as_notified() {
            let l = layout(3);
            let mut locals = locals_for(3);
            locals[l.in_data] = 42;
            locals[l.in_tag] = 7;
            locals[l.in_sender] = 5;
            insert_incoming(&l, &mut locals, false, false);
            insert_incoming(&l, &mut locals, false, true);
            finish_incoming(&l, &mut locals);
            assert_eq!(locals[l.len], 2);
            assert_eq!(locals[l.slot(0, S_NOTIFIED)], 0);
            assert_eq!(locals[l.slot(1, S_NOTIFIED)], 1);
            assert_eq!(locals[l.slot(1, S_DATA)], 42);
            assert_eq!(locals[l.notify_pid], 5);
        }

        #[test]
        fn take_slot_removes_any_index_and_notifies_once() {
            let l = layout(3);
            let mut locals = locals_for(3);
            store(&l, &mut locals, false, 10, 0, 4);
            store(&l, &mut locals, false, 20, 0, 5);
            store(&l, &mut locals, false, 30, 0, 6);
            locals[l.req_pid] = 9;
            locals[l.req_remove] = 1;
            // Reordering takes the middle slot; the tail shifts left.
            assert!(slot_matches(&l, &locals, 1));
            take_slot(&l, &mut locals, 1);
            assert_eq!(locals[l.out_data], 20);
            assert_eq!(locals[l.out_sender], 5);
            assert_eq!(locals[l.do_notify], 1);
            assert_eq!(locals[l.notify_pid], 9);
            assert_eq!(locals[l.len], 2);
            let data: Vec<i32> = (0..2).map(|i| locals[l.slot(i, S_DATA)]).collect();
            assert_eq!(data, [10, 30]);
            // A pre-notified slot delivers without a second RECV_OK.
            locals[l.slot(0, S_NOTIFIED)] = 1;
            locals[l.req_pid] = 9;
            locals[l.req_remove] = 1;
            take_slot(&l, &mut locals, 0);
            assert_eq!(locals[l.do_notify], 0);
        }

        #[test]
        fn slot_matches_respects_selective_tags() {
            let l = layout(2);
            let mut locals = locals_for(2);
            store(&l, &mut locals, false, 10, 7, 0);
            store(&l, &mut locals, false, 20, 9, 0);
            locals[l.req_sel] = 1;
            locals[l.req_tag] = 9;
            assert!(!slot_matches(&l, &locals, 0));
            assert!(slot_matches(&l, &locals, 1));
            assert!(!slot_matches(&l, &locals, 2));
        }
    }
}
