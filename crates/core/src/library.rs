//! The building-block catalog (paper Fig. 1).
//!
//! [`BlockLibrary::catalog`] enumerates every predefined building block with
//! the same descriptions the paper's Fig. 1 table gives; the
//! `library_catalog` example prints it, and each entry's semantics is pinned
//! down by the conformance tests in `tests/`.

use crate::channels::{BaseChannel, ChannelKind};
use crate::ports::{RecvPortKind, SendPortKind};

/// Which side of a connector a block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCategory {
    /// A send port.
    SendPort,
    /// A receive port.
    RecvPort,
    /// A channel.
    Channel,
}

impl BlockCategory {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BlockCategory::SendPort => "Send Port",
            BlockCategory::RecvPort => "Receive Port",
            BlockCategory::Channel => "Channel",
        }
    }
}

/// One entry of the building-block catalog.
#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// The block's library name.
    pub name: String,
    /// Its category.
    pub category: BlockCategory,
    /// The semantics, phrased as in the paper's Fig. 1.
    pub description: &'static str,
}

/// The predefined building-block library.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockLibrary;

impl BlockLibrary {
    /// Enumerates every predefined building block (paper Fig. 1), send
    /// ports first, then receive ports, then channels.
    pub fn catalog() -> Vec<BlockInfo> {
        let mut out = Vec::new();
        for kind in SendPortKind::ALL {
            out.push(BlockInfo {
                name: kind.name().to_string(),
                category: BlockCategory::SendPort,
                description: match kind {
                    SendPortKind::AsynNonblocking => {
                        "Waits for a message from the sender and sends a confirmation back \
                         immediately; the message may or may not be accepted"
                    }
                    SendPortKind::AsynBlocking => {
                        "Waits for a message from the sender and sends a confirmation back \
                         AFTER the message has been accepted by the channel"
                    }
                    SendPortKind::AsynChecking => {
                        "Forwards the message to the channel; if it cannot be accepted, \
                         notifies the sender instead of retrying"
                    }
                    SendPortKind::SynBlocking => {
                        "Waits for a message from the sender and sends a confirmation back \
                         AFTER it is notified that the message has been received by the \
                         receiver"
                    }
                    SendPortKind::SynChecking => {
                        "Like synchronous blocking send, except a full channel is reported \
                         to the sender instead of retried"
                    }
                    // ALL contains only fault-free kinds.
                    SendPortKind::CrashRestart => unreachable!(),
                },
            });
        }
        for kind in RecvPortKind::ALL {
            out.push(BlockInfo {
                name: kind.name(),
                category: BlockCategory::RecvPort,
                description: if kind.blocking {
                    "Forwards receive requests to the channel and blocks until a desired \
                     message is retrieved, then confirms to the receiver"
                } else {
                    "Like blocking receive, except it returns immediately with a \
                     notification and an empty message if no desired message is available"
                },
            });
        }
        for (kind, description) in [
            (ChannelKind::SingleSlot, "A buffer of size 1"),
            (ChannelKind::Fifo { capacity: 5 }, "A FIFO queue of size N"),
            (
                ChannelKind::Priority { capacity: 5 },
                "A priority queue of size N (larger tags delivered first)",
            ),
            (
                ChannelKind::Dropping { capacity: 5 },
                "A FIFO queue of size N that silently drops messages when full",
            ),
            (
                ChannelKind::Sliding { capacity: 5 },
                "A sliding window of size N: when full, the oldest message is \
                 evicted to make room (keep-latest semantics)",
            ),
        ] {
            out.push(BlockInfo {
                name: kind.name(),
                category: BlockCategory::Channel,
                description,
            });
        }
        out
    }

    /// Enumerates the *fault-injection* blocks: decorators and port
    /// variants that model an unreliable environment rather than a design
    /// choice. They extend — and are kept separate from — the paper's
    /// Fig. 1 library returned by [`BlockLibrary::catalog`].
    pub fn fault_catalog() -> Vec<BlockInfo> {
        let base = BaseChannel::Fifo { capacity: 5 };
        vec![
            BlockInfo {
                name: SendPortKind::CrashRestart.name().to_string(),
                category: BlockCategory::SendPort,
                description: "Like asynchronous checking send, except the port may crash \
                              before engaging the channel; the message is lost and the \
                              restart reports SEND_FAIL",
            },
            BlockInfo {
                name: RecvPortKind::crash_restart().name(),
                category: BlockCategory::RecvPort,
                description: "Like blocking receive, except the port may crash before \
                              engaging the channel; the restart reports RECV_FAIL and an \
                              empty message",
            },
            BlockInfo {
                name: ChannelKind::lossy(base.into()).name(),
                category: BlockCategory::Channel,
                description: "A decorated channel that may lose any incoming message in \
                              transit, reporting the loss as IN_FAIL",
            },
            BlockInfo {
                name: ChannelKind::duplicating(base.into()).name(),
                category: BlockCategory::Channel,
                description: "A decorated channel that may store an incoming message \
                              twice when the buffer has room for both copies",
            },
            BlockInfo {
                name: ChannelKind::reordering(base.into()).name(),
                category: BlockCategory::Channel,
                description: "A decorated channel whose delivery may take any matching \
                              buffered message (bag delivery), not just the head",
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_paper_library() {
        let catalog = BlockLibrary::catalog();
        // 5 send ports + 4 receive ports + 5 channels.
        assert_eq!(catalog.len(), 14);
        assert_eq!(
            catalog
                .iter()
                .filter(|b| b.category == BlockCategory::SendPort)
                .count(),
            5
        );
        assert_eq!(
            catalog
                .iter()
                .filter(|b| b.category == BlockCategory::RecvPort)
                .count(),
            4
        );
        assert_eq!(
            catalog
                .iter()
                .filter(|b| b.category == BlockCategory::Channel)
                .count(),
            5
        );
    }

    #[test]
    fn fault_catalog_covers_every_fault_block() {
        let faults = BlockLibrary::fault_catalog();
        // 1 send port + 1 receive port + 3 channel decorators.
        assert_eq!(faults.len(), 5);
        let names: Vec<&str> = faults.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"CrashRestartSend"));
        assert!(names.contains(&"CrashRestartBlRecv(remove)"));
        assert!(names.contains(&"Lossy(FIFO(5))"));
        assert!(names.contains(&"Duplicating(FIFO(5))"));
        assert!(names.contains(&"Reordering(FIFO(5))"));
        // Fault blocks never shadow a Fig. 1 entry.
        for entry in BlockLibrary::catalog() {
            assert!(!names.contains(&entry.name.as_str()));
        }
    }

    #[test]
    fn catalog_names_are_unique_and_described() {
        let mut catalog = BlockLibrary::catalog();
        catalog.extend(BlockLibrary::fault_catalog());
        for (i, a) in catalog.iter().enumerate() {
            assert!(!a.description.is_empty());
            for b in &catalog[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn category_labels() {
        assert_eq!(BlockCategory::SendPort.label(), "Send Port");
        assert_eq!(BlockCategory::RecvPort.label(), "Receive Port");
        assert_eq!(BlockCategory::Channel.label(), "Channel");
    }
}
