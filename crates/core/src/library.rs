//! The building-block catalog (paper Fig. 1).
//!
//! [`BlockLibrary::catalog`] enumerates every predefined building block with
//! the same descriptions the paper's Fig. 1 table gives; the
//! `library_catalog` example prints it, and each entry's semantics is pinned
//! down by the conformance tests in `tests/`.

use crate::channels::ChannelKind;
use crate::ports::{RecvPortKind, SendPortKind};

/// Which side of a connector a block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCategory {
    /// A send port.
    SendPort,
    /// A receive port.
    RecvPort,
    /// A channel.
    Channel,
}

impl BlockCategory {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BlockCategory::SendPort => "Send Port",
            BlockCategory::RecvPort => "Receive Port",
            BlockCategory::Channel => "Channel",
        }
    }
}

/// One entry of the building-block catalog.
#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// The block's library name.
    pub name: String,
    /// Its category.
    pub category: BlockCategory,
    /// The semantics, phrased as in the paper's Fig. 1.
    pub description: &'static str,
}

/// The predefined building-block library.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockLibrary;

impl BlockLibrary {
    /// Enumerates every predefined building block (paper Fig. 1), send
    /// ports first, then receive ports, then channels.
    pub fn catalog() -> Vec<BlockInfo> {
        let mut out = Vec::new();
        for kind in SendPortKind::ALL {
            out.push(BlockInfo {
                name: kind.name().to_string(),
                category: BlockCategory::SendPort,
                description: match kind {
                    SendPortKind::AsynNonblocking => {
                        "Waits for a message from the sender and sends a confirmation back \
                         immediately; the message may or may not be accepted"
                    }
                    SendPortKind::AsynBlocking => {
                        "Waits for a message from the sender and sends a confirmation back \
                         AFTER the message has been accepted by the channel"
                    }
                    SendPortKind::AsynChecking => {
                        "Forwards the message to the channel; if it cannot be accepted, \
                         notifies the sender instead of retrying"
                    }
                    SendPortKind::SynBlocking => {
                        "Waits for a message from the sender and sends a confirmation back \
                         AFTER it is notified that the message has been received by the \
                         receiver"
                    }
                    SendPortKind::SynChecking => {
                        "Like synchronous blocking send, except a full channel is reported \
                         to the sender instead of retried"
                    }
                },
            });
        }
        for kind in RecvPortKind::ALL {
            out.push(BlockInfo {
                name: kind.name(),
                category: BlockCategory::RecvPort,
                description: if kind.blocking {
                    "Forwards receive requests to the channel and blocks until a desired \
                     message is retrieved, then confirms to the receiver"
                } else {
                    "Like blocking receive, except it returns immediately with a \
                     notification and an empty message if no desired message is available"
                },
            });
        }
        for (kind, description) in [
            (ChannelKind::SingleSlot, "A buffer of size 1"),
            (ChannelKind::Fifo { capacity: 5 }, "A FIFO queue of size N"),
            (
                ChannelKind::Priority { capacity: 5 },
                "A priority queue of size N (larger tags delivered first)",
            ),
            (
                ChannelKind::Dropping { capacity: 5 },
                "A FIFO queue of size N that silently drops messages when full",
            ),
            (
                ChannelKind::Sliding { capacity: 5 },
                "A sliding window of size N: when full, the oldest message is \
                 evicted to make room (keep-latest semantics)",
            ),
        ] {
            out.push(BlockInfo {
                name: kind.name(),
                category: BlockCategory::Channel,
                description,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_the_paper_library() {
        let catalog = BlockLibrary::catalog();
        // 5 send ports + 4 receive ports + 5 channels.
        assert_eq!(catalog.len(), 14);
        assert_eq!(
            catalog
                .iter()
                .filter(|b| b.category == BlockCategory::SendPort)
                .count(),
            5
        );
        assert_eq!(
            catalog
                .iter()
                .filter(|b| b.category == BlockCategory::RecvPort)
                .count(),
            4
        );
        assert_eq!(
            catalog
                .iter()
                .filter(|b| b.category == BlockCategory::Channel)
                .count(),
            5
        );
    }

    #[test]
    fn catalog_names_are_unique_and_described() {
        let catalog = BlockLibrary::catalog();
        for (i, a) in catalog.iter().enumerate() {
            assert!(!a.description.is_empty());
            for b in &catalog[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn category_labels() {
        assert_eq!(BlockCategory::SendPort.label(), "Send Port");
        assert_eq!(BlockCategory::RecvPort.label(), "Receive Port");
        assert_eq!(BlockCategory::Channel.label(), "Channel");
    }
}
