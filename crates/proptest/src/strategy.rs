//! Value-generation strategies: the composable half of the shim.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use pnp_kernel::SplitMix64;

/// The deterministic RNG handed to strategies. Delegates to the workspace's
/// one vendored PRNG ([`pnp_kernel::SplitMix64`]) instead of carrying a copy.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SplitMix64,
}

impl TestRng {
    pub(crate) fn seed_from_u64(seed: u64) -> TestRng {
        TestRng {
            inner: SplitMix64::seed_from_u64(seed),
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform index in `0..bound` (`bound` nonzero). Modulo bias is
    /// negligible at test scales and irrelevant for coverage.
    pub(crate) fn index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "index() with empty range");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `[lo, hi]` over i128 (covers every integer type).
    pub(crate) fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as i128
    }
}

/// A source of random values of one type.
///
/// Mirrors `proptest::strategy::Strategy`, minus shrinking: `generate`
/// replaces `new_tree`, and combinators build derived strategies.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, func }
    }

    /// Builds a recursive strategy: `depth` levels of `branch` applied over
    /// this leaf strategy. The `_desired_size`/`_expected_branch_size`
    /// parameters exist for signature compatibility; depth alone bounds
    /// recursion here. Each level picks the leaf or the deeper strategy
    /// with equal probability, which keeps generated trees small.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current: BoxedStrategy<Self::Value> = self.clone().boxed();
        for _ in 0..depth {
            let deeper = branch(current).boxed();
            current = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        current
    }

    /// Erases the strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

/// Chooses uniformly among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeBounds {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeBounds {
    fn from(r: Range<usize>) -> SizeBounds {
        assert!(r.start < r.end, "empty vec size range");
        SizeBounds {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeBounds {
    fn from(r: RangeInclusive<usize>) -> SizeBounds {
        SizeBounds {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeBounds {
    fn from(n: usize) -> SizeBounds {
        SizeBounds { min: n, max: n }
    }
}

/// Generates `Vec`s whose length lies in the given bounds
/// (`proptest::collection::vec`).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    bounds: SizeBounds,
}

/// Creates a [`VecStrategy`].
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
    VecStrategy {
        element,
        bounds: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.int_in(self.bounds.min as i128, self.bounds.max as i128) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Chooses uniformly from a fixed pool (`proptest::sample::select`).
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Creates a [`Select`]; panics on an empty pool.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.index(self.options.len())].clone()
    }
}

// ---------------------------------------------------------------------
// String patterns (regex subset)
// ---------------------------------------------------------------------

/// One repeatable element of a pattern.
#[derive(Debug, Clone)]
enum Atom {
    /// A set of candidate characters (literal or `[...]` class).
    Class(Vec<char>),
}

/// A parsed pattern: atoms with repetition bounds.
#[derive(Debug, Clone)]
pub struct PatternStrategy {
    parts: Vec<(Atom, usize, usize)>,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Parses the supported regex subset: literals, escapes, `[...]` classes
/// with ranges, and `{m,n}` / `{m}` / `*` / `+` / `?` quantifiers.
///
/// Panics on syntax it does not understand — a test author error, caught
/// the first time the test runs.
fn parse_pattern(pattern: &str) -> PatternStrategy {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // A range `a-z` (a trailing `-` is a literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = if chars[i + 2] == '\\' {
                            i += 1;
                            unescape(chars[i + 2])
                        } else {
                            chars[i + 2]
                        };
                        assert!(lo <= hi, "bad range in pattern `{pattern}`");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(lo);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in `{pattern}`");
                i += 1; // consume ']'
                assert!(!set.is_empty(), "empty class in `{pattern}`");
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in `{pattern}`");
                let c = unescape(chars[i]);
                i += 1;
                Atom::Class(vec![c])
            }
            c => {
                assert!(
                    !"(){}|.^$".contains(c),
                    "unsupported regex syntax `{c}` in `{pattern}`"
                );
                i += 1;
                Atom::Class(vec![c])
            }
        };
        // Quantifier?
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated {} quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        parts.push((atom, min, max));
    }
    PatternStrategy { parts }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per call is cheap at test scales (patterns are tiny).
        parse_pattern(self).generate(rng)
    }
}

impl Strategy for PatternStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in &self.parts {
            let count = rng.int_in(*min as i128, *max as i128) as usize;
            for _ in 0..count {
                match atom {
                    Atom::Class(set) => out.push(set[rng.index(set.len())]),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(7)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3i32..7).generate(&mut r);
            assert!((3..7).contains(&v));
            let w = (0u8..2).generate(&mut r);
            assert!(w < 2);
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut r = rng();
        for _ in 0..100 {
            let v = vec(0i32..10, 1..5).generate(&mut r);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn pattern_generates_matching_strings() {
        let mut r = rng();
        for _ in 0..100 {
            let s = "[ -~\\n]{0,20}".generate(&mut r);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
        let t = "ab?c+".generate(&mut r);
        assert!(t.starts_with('a'));
        assert!(t.contains('c'));
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v));
                    1
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut r = rng();
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut r)) <= 4);
        }
    }
}
