//! A vendored, offline subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the slice of the proptest API its test suites actually use:
//! strategies (`Just`, ranges, tuples, `prop_map`, `prop_recursive`,
//! `prop_oneof!`, `collection::vec`, `sample::select`, string patterns),
//! the `proptest!` macro, and `prop_assert*` macros.
//!
//! Differences from the real crate are deliberate and small:
//!
//! * **No shrinking.** A failing case reports the generated inputs (via
//!   the `Debug` bound at the call site's panic message) but is not
//!   minimized.
//! * **Deterministic seeds.** Case `i` of every test derives its RNG from
//!   a fixed constant and `i`, so CI runs are reproducible.
//! * **String patterns** support the subset of regex syntax used here:
//!   character classes with ranges/escapes and `{m,n}`/`*`/`+`/`?`
//!   quantifiers over a concatenated sequence.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`).
    pub use crate::strategy::{vec, SizeBounds, VecStrategy};
}

pub mod sample {
    //! Sampling strategies (`select`).
    pub use crate::strategy::{select, Select};
}

pub mod string {
    //! String-pattern strategies (compiled from a regex subset).
    pub use crate::strategy::PatternStrategy;
}

pub mod prelude {
    //! Everything a `proptest!` test module needs.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0i32..100, b in 0i32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run(stringify!($name), |__pnp_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __pnp_rng);
                    )*
                    #[allow(clippy::redundant_closure_call)]
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// A strategy choosing uniformly among the given strategies (all of the
/// same value type). Weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)),
            ));
        }
    }};
}

/// Fails the current test case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)),
            ));
        }
    }};
}
