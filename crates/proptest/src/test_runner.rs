//! The case-running half of the shim: configuration, errors, and the loop
//! the `proptest!` macro expands into.

use crate::strategy::TestRng;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running the given number of cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (from `prop_assert*` or an explicit `Err`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runs the configured number of cases with per-case deterministic RNGs.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

/// Fixed base seed: every run of the suite explores the same cases.
const BASE_SEED: u64 = 0x5eed_cafe_f00d_0001;

impl TestRunner {
    /// Creates a runner for one `proptest!` test.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Runs `case` once per configured case, panicking (with the case
    /// index, so the failure is reproducible) on the first error.
    pub fn run(
        &mut self,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        for i in 0..self.config.cases {
            // Mix the test name in so sibling tests see different streams.
            let mut h: u64 = BASE_SEED ^ u64::from(i).wrapping_mul(0x2545_f491_4f6c_dd1d);
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
            }
            let mut rng = TestRng::seed_from_u64(h);
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest `{name}`: case {i}/{} failed: {e}",
                    self.config.cases
                );
            }
        }
    }
}
