//! Property-based tests for the architecture-description language:
//! randomly generated specifications survive a print -> parse -> print
//! round trip, and random garbage never panics the front end.

use proptest::prelude::*;

/// A tiny pool of identifiers so cross-references resolve.
fn ident() -> impl Strategy<Value = String> {
    proptest::sample::select(vec![
        "alpha".to_string(),
        "beta".to_string(),
        "gamma".to_string(),
        "delta_1".to_string(),
        "x".to_string(),
    ])
}

fn expr_text() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![(-50i32..50).prop_map(|v| v.to_string()), ident(),];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} == {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} && {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} || {b})")),
            inner.prop_map(|a| format!("!({a})")),
        ]
    })
}

/// Generates source text for a random but *valid* specification: globals
/// named by the identifier pool, one connector, one component whose guards
/// reference globals and whose own variable pool matches.
fn spec_source() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(ident(), 1..4),
        expr_text(),
        expr_text(),
        prop_oneof![
            Just("single_slot"),
            Just("fifo(2)"),
            Just("priority(2)"),
            Just("dropping(1)"),
            Just("sliding(2)")
        ],
        prop_oneof![
            Just("asyn_nonblocking"),
            Just("asyn_blocking"),
            Just("syn_blocking")
        ],
        prop_oneof![Just("blocking"), Just("nonblocking copy")],
    )
        .prop_map(|(globals, guard, inv, channel, send, recv)| {
            let mut names: Vec<String> = globals;
            names.sort();
            names.dedup();
            let global_decls: String = names
                .iter()
                .map(|n| format!("    global {n} = 0;\n"))
                .collect();
            // Declare every pool identifier as a global so random
            // expressions always resolve.
            let mut all = vec!["alpha", "beta", "gamma", "delta_1", "x"];
            all.retain(|n| !names.iter().any(|g| g == n));
            let extra: String = all
                .iter()
                .map(|n| format!("    global {n} = 0;\n"))
                .collect();
            let body = [
                "    connector wire {",
                &format!("        channel {channel};"),
                &format!("        send tx: {send};"),
                &format!("        recv rx: {recv};"),
                "    }",
                "    component writer {",
                "        state s0, s1;",
                "        end s1;",
                &format!("        from s0 if {guard} send tx(1, 0) goto s1;"),
                &format!("        from s0 if !({guard}) goto s1;"),
                "    }",
                "    component reader {",
                "        var got = 0;",
                "        state r0, r1;",
                "        end r1;",
                "        from r0 receive rx into got goto r1;",
                "        from r0 goto r1;",
                "    }",
                &format!("    property inv: invariant ({inv}) || 1 == 1;"),
                "    property live: no_deadlock;",
                "}",
            ]
            .join("\n");
            format!("system {{\n{global_decls}{extra}{body}")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Valid random specs parse, and printing reaches a fixpoint after one
    /// parse -> print cycle.
    #[test]
    fn print_parse_round_trip(source in spec_source()) {
        let ast = pnp_lang::parse_system(&source)
            .unwrap_or_else(|e| panic!("generated spec does not parse: {e}\n{source}"));
        let printed = ast.to_string();
        let reparsed = pnp_lang::parse_system(&printed)
            .unwrap_or_else(|e| panic!("printed form does not re-parse: {e}\n{printed}"));
        prop_assert_eq!(printed, reparsed.to_string());
    }

    /// Valid random specs also compile and verify without panicking; the
    /// tautological invariant always holds.
    #[test]
    fn random_specs_compile_and_verify(source in spec_source()) {
        let spec = pnp_lang::compile(&source)
            .unwrap_or_else(|e| panic!("generated spec does not compile: {e}\n{source}"));
        let results = spec.verify_all().unwrap();
        prop_assert!(results[0].holds, "tautology violated?!");
    }

    /// Arbitrary byte soup must produce an error, never a panic.
    #[test]
    fn garbage_never_panics(source in "[ -~\\n]{0,200}") {
        let _ = pnp_lang::compile(&source);
    }
}
