//! The shipped `.pnp` specification files must compile and verify with the
//! documented outcomes.

use pnp_lang::compile;

const WIRE: &str = include_str!("../../../examples/specs/wire.pnp");
const BRIDGE_BUGGY: &str = include_str!("../../../examples/specs/bridge_buggy.pnp");
const BRIDGE_FIXED: &str = include_str!("../../../examples/specs/bridge_fixed.pnp");
const PRIORITY_MAIL: &str = include_str!("../../../examples/specs/priority_mail.pnp");
const NEWSWIRE: &str = include_str!("../../../examples/specs/newswire.pnp");

#[test]
fn wire_spec_holds_everywhere() {
    let spec = compile(WIRE).unwrap();
    let results = spec.verify_all().unwrap();
    assert_eq!(results.len(), 3);
    for result in &results {
        assert!(result.holds, "{}: {}", result.name, result.detail);
    }
}

#[test]
fn buggy_bridge_spec_reports_the_crash() {
    let spec = compile(BRIDGE_BUGGY).unwrap();
    let results = spec.verify_all().unwrap();
    assert_eq!(results.len(), 1);
    assert!(!results[0].holds);
    // The counterexample is explained at the building-block level.
    assert!(
        results[0].detail.contains("AsynBlockingSend"),
        "{}",
        results[0].detail
    );
    assert!(
        results[0].detail.contains("component BlueCar")
            || results[0].detail.contains("component RedCar"),
        "{}",
        results[0].detail
    );
}

#[test]
fn fixed_bridge_spec_holds() {
    let spec = compile(BRIDGE_FIXED).unwrap();
    let results = spec.verify_all().unwrap();
    assert!(results[0].holds, "{}", results[0].detail);
}

/// The two bridge specs differ only in the enter-port kinds (the textual
/// form of the paper's one-block fix).
#[test]
fn bridge_specs_differ_only_in_enter_ports() {
    let buggy = pnp_lang::parse_system(BRIDGE_BUGGY).unwrap();
    let fixed = pnp_lang::parse_system(BRIDGE_FIXED).unwrap();
    // Components are textually identical.
    assert_eq!(buggy.components.len(), fixed.components.len());
    for (a, b) in buggy.components.iter().zip(&fixed.components) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.states.len(), b.states.len());
        assert_eq!(a.stmts.len(), b.stmts.len());
    }
    // Exactly the two enter send ports changed kind.
    let kinds = |ast: &pnp_lang::SystemAst| -> Vec<pnp_lang::SendKindAst> {
        ast.connectors
            .iter()
            .flat_map(|c| c.sends.iter().map(|(_, k, _)| *k))
            .collect()
    };
    let changed = kinds(&buggy)
        .iter()
        .zip(kinds(&fixed))
        .filter(|(a, b)| **a != *b)
        .count();
    assert_eq!(changed, 2);
}

/// `VerifyOptions.config.threads` flows through to the safety search: a
/// parallel run reports the same verdicts and the same per-property state
/// counts as the default sequential run.
#[test]
fn parallel_verification_matches_sequential_results() {
    use pnp_kernel::SearchConfig;

    for source in [WIRE, BRIDGE_BUGGY, BRIDGE_FIXED] {
        let spec = compile(source).unwrap();
        let sequential = spec.verify_all().unwrap();
        let parallel = spec
            .verify_all_with_config(SearchConfig {
                threads: 4,
                ..SearchConfig::default()
            })
            .unwrap();
        assert_eq!(sequential.len(), parallel.len());
        for (seq, par) in sequential.iter().zip(&parallel) {
            assert_eq!(seq.name, par.name);
            assert_eq!(seq.holds, par.holds, "{}: {}", par.name, par.detail);
            assert_eq!(seq.inconclusive, par.inconclusive, "{}", par.name);
            if seq.holds {
                // Exhaustive Holds runs explore the identical reduced
                // graph, so the reported state counts match exactly.
                assert_eq!(seq.states, par.states, "{}", par.name);
            }
        }
    }
}

#[test]
fn priority_mail_spec_holds_everywhere() {
    let spec = compile(PRIORITY_MAIL).unwrap();
    for result in spec.verify_all().unwrap() {
        assert!(result.holds, "{}: {}", result.name, result.detail);
    }
}

#[test]
fn newswire_spec_holds_everywhere() {
    let spec = compile(NEWSWIRE).unwrap();
    for result in spec.verify_all().unwrap() {
        assert!(result.holds, "{}: {}", result.name, result.detail);
    }
}

/// Lexer/parser robustness: no input may panic the front end.
#[test]
fn parser_never_panics_on_garbage() {
    let samples = [
        "",
        "system",
        "system {",
        "system { component }",
        "system { global = ; }",
        "system { connector c { channel fifo(0); } }",
        "system { component c { state a; from a send goto a; } }",
        "\u{0}\u{1}\u{2}",
        "system { property p: ltl \"(((\" ; }",
        "system { component c { state a; end a; from a if goto a; } }",
    ];
    for source in samples {
        let _ = compile(source); // must return Err, not panic
    }
}
