//! Deterministic fuzz harness for the language front end.
//!
//! Every input — raw byte soup, or a mutated copy of a real example
//! spec — must flow lexer -> parser -> compiler and come back as a
//! clean `Err`, never a panic. Failures print the seed and the exact
//! input so a crash reproduces with a unit test.
//!
//! The generator is a fixed-seed SplitMix64, so the corpus is identical
//! on every run: this is a regression net, not a coin flip.

use std::panic::{catch_unwind, AssertUnwindSafe};

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn example_specs() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs");
    let mut specs = Vec::new();
    for entry in std::fs::read_dir(dir).expect("examples/specs must exist") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "pnp") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            specs.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    assert!(!specs.is_empty(), "no example specs found");
    specs.sort();
    specs
}

/// One pass through the whole front end. The compiler subsumes the
/// lexer and parser, but running the parser separately too keeps a
/// parser-only panic distinguishable from a compile-stage one.
fn front_end_must_not_panic(label: &str, source: &str) {
    let input = source.to_string();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = pnp_lang::parse_system(&input);
        let _ = pnp_lang::compile(&input);
    }));
    if outcome.is_err() {
        panic!("front end panicked on {label}; input was:\n{source}");
    }
}

/// Interesting fragments to splice into mutated specs: keywords,
/// operators, numeric edge cases, and multi-byte UTF-8 to stress
/// byte-offset handling in the lexer.
const SPLICES: &[&str] = &[
    "system",
    "component",
    "connector",
    "property",
    "invariant",
    "ltl",
    "no_deadlock",
    "global",
    "var",
    "state",
    "end",
    "from",
    "goto",
    "if",
    "do",
    "send",
    "receive",
    "recv",
    "into",
    "channel",
    "where",
    "{",
    "}",
    "(",
    ")",
    ";",
    ",",
    ":",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "!",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "0",
    "-1",
    "9223372036854775807",
    "-9223372036854775808",
    "99999999999999999999999999",
    "0x41",
    "1e9",
    "\"unterminated",
    "\"\"",
    "'",
    "\\",
    "\0",
    "\t",
    "\r\n",
    "é",
    "λ",
    "🦀",
    "\u{202e}",
    "ﬀ",
];

fn mutate(rng: &mut SplitMix64, base: &str) -> String {
    let mut text = base.to_string();
    for _ in 0..1 + rng.below(4) {
        let kind = rng.below(6);
        // All edits are on char boundaries so the result stays a valid
        // &str; the raw-bytes test below covers arbitrary byte shapes.
        let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
        if boundaries.is_empty() {
            text.push_str(SPLICES[rng.below(SPLICES.len())]);
            continue;
        }
        let at = boundaries[rng.below(boundaries.len())];
        match kind {
            // Truncate the tail or the head.
            0 => text.truncate(at),
            1 => text = text[at..].to_string(),
            // Delete a span.
            2 => {
                let to = boundaries[rng.below(boundaries.len())];
                let (lo, hi) = (at.min(to), at.max(to));
                text.replace_range(lo..hi, "");
            }
            // Insert an interesting fragment.
            3 => text.insert_str(at, SPLICES[rng.below(SPLICES.len())]),
            // Duplicate a chunk of the spec onto itself.
            4 => {
                let to = boundaries[rng.below(boundaries.len())];
                let (lo, hi) = (at.min(to), at.max(to));
                let chunk = text[lo..hi].to_string();
                text.insert_str(at, &chunk);
            }
            // Overwrite one character with a random ASCII byte.
            _ => {
                let ch = (0x20 + rng.below(0x5f)) as u8 as char;
                let end = boundaries
                    .iter()
                    .copied()
                    .find(|&b| b > at)
                    .unwrap_or(text.len());
                text.replace_range(at..end, &ch.to_string());
            }
        }
        if text.len() > 1 << 16 {
            text.truncate(1 << 14);
        }
    }
    text
}

#[test]
fn mutated_example_specs_never_panic_the_front_end() {
    let specs = example_specs();
    let mut rng = SplitMix64(0xdeadbeef);
    for round in 0..400 {
        let (name, base) = &specs[rng.below(specs.len())];
        let mutated = mutate(&mut rng, base);
        front_end_must_not_panic(&format!("mutation round {round} of {name}"), &mutated);
    }
}

#[test]
fn spliced_pairs_of_example_specs_never_panic() {
    let specs = example_specs();
    let mut rng = SplitMix64(0x5eed_cafe);
    for round in 0..100 {
        let (name_a, a) = &specs[rng.below(specs.len())];
        let (name_b, b) = &specs[rng.below(specs.len())];
        let cut_a = a
            .char_indices()
            .map(|(i, _)| i)
            .nth(rng.below(a.chars().count()))
            .unwrap_or(0);
        let cut_b = b
            .char_indices()
            .map(|(i, _)| i)
            .nth(rng.below(b.chars().count()))
            .unwrap_or(0);
        let spliced = format!("{}{}", &a[..cut_a], &b[cut_b..]);
        front_end_must_not_panic(
            &format!("splice round {round} of {name_a}+{name_b}"),
            &spliced,
        );
    }
}

#[test]
fn arbitrary_bytes_never_panic_the_front_end() {
    let mut rng = SplitMix64(0x0dd_b17e5);
    for round in 0..400 {
        let len = rng.below(512);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
        // The front end takes &str, so arbitrary bytes arrive the same
        // way they would from a file read: lossily decoded.
        let text = String::from_utf8_lossy(&bytes).into_owned();
        front_end_must_not_panic(&format!("byte-soup round {round}"), &text);
    }
}

#[test]
fn pathological_shapes_never_panic() {
    // Hand-picked shapes that historically break hand-rolled lexers:
    // deep nesting, huge literals, unterminated tokens, and multi-byte
    // characters at token boundaries.
    let cases = [
        "(".repeat(5000),
        ")".repeat(5000),
        format!("system {{ global x = {}; }}", "9".repeat(400)),
        "system { property p: ltl \"".to_string(),
        "system { property p: invariant 1 /".to_string(),
        "system{component c{state s;end s;from s if 1%0 goto s;}}".to_string(),
        "system { global é = 1; }".to_string(),
        "system\u{202e} { }".to_string(),
        format!("system {{ {} }}", "global a = 0;".repeat(2000)),
        "system { component c { state s0; from s0 goto ".to_string(),
        "system { connector w { channel fifo(99999999999999999999); } }".to_string(),
        "\u{feff}system { }".to_string(),
    ];
    for (i, case) in cases.iter().enumerate() {
        front_end_must_not_panic(&format!("pathological case {i}"), case);
    }
}
