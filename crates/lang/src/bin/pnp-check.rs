//! `pnp-check` — verify a `.pnp` architecture specification.
//!
//! Usage:
//! `pnp-check FILE.pnp [--quiet] [--dot] [--sim STEPS [--seed N]]
//!  [--fault SPEC]... [--budget SPEC]`
//!
//! Compiles the specification, checks every declared property, prints one
//! line per property (plus explained counterexamples unless `--quiet`), and
//! exits nonzero if any property is violated. With `--dot` the architecture
//! diagram is printed as Graphviz dot instead; with `--sim STEPS` a random
//! execution is run and the final global values printed (no verification).
//!
//! Fault injection (`--fault`, repeatable) rewrites the parsed design
//! before compiling, without editing the source file:
//!
//! - `--fault CONN=lossy|duplicating|reordering` decorates connector
//!   `CONN`'s channel;
//! - `--fault CONN.PORT=crash_restart` turns the named send or receive
//!   port into its crash-restart variant.
//!
//! Budgets (`--budget states=N,time=MS,depth=D,mem=BYTES`; any subset of
//! keys) bound the search. A tripped budget reports INCONCLUSIVE with the
//! partial coverage and exits with code 3 — never a panic.
//!
//! Crash tolerance:
//!
//! - `--visited exact|compact|bitstate[:MB]|disk[:DIR]` selects the
//!   visited-set backend; the lossy backends (`compact`, `bitstate`) trade
//!   exactness for memory and report HOLDS (approx) with an omission
//!   estimate, while `disk` keeps the search exact by storing the visited
//!   set out of core (in scratch directory `DIR`, default under the
//!   system temp dir);
//! - `--spill-at MB` arms graceful degradation under memory pressure:
//!   when the search's estimated footprint crosses `MB` MiB it moves the
//!   visited set and frontier to disk *mid-run* instead of stopping
//!   INCONCLUSIVE (`0` spills immediately);
//! - `--checkpoint FILE` flushes search snapshots to `FILE` (periodically
//!   per `--checkpoint-every N` states, default 4096, and always when a
//!   budget trips or the run is interrupted with Ctrl-C);
//! - `--resume FILE` continues an interrupted run from a snapshot.
//!
//! Parallelism: `--threads N` (default 1) runs safety searches with `N`
//! worker threads over a sharded visited set, and LTL properties with an
//! `N`-worker swarmed CNDFS acceptance-cycle search. `--threads 1` is
//! exactly the sequential kernel; any `N` reports identical verdicts, and
//! exhaustive safety runs report identical state counts (LTL stats fields
//! reflect whichever worker interleaving won — every reported lasso is
//! replay-validated first). Checkpoints written at any thread count can be
//! resumed at any other.
//!
//! Remote verification: `--submit URL` sends the specification (with any
//! `--fault` rewrites applied) to a running `pnp-serve` daemon instead of
//! checking locally, polls until the job finishes, prints the result, and
//! maps the daemon's verdict onto the same exit codes as a local run
//! (0 passed, 1 violated, 2 failed, 3 inconclusive/cancelled). SIGINT or
//! SIGTERM during the wait cancels the remote job cooperatively.
//!
//! Submissions go through the retrying `pnp-net` client with a generated
//! idempotency key, so transient network failures — including ambiguous
//! ones where the daemon may already have admitted the job — retry
//! safely without double-submitting. Against a cluster coordinator,
//! `--workers N` requires at least `N` live workers (the submission is
//! shed with a retry hint otherwise) and `--tenant NAME` attributes the
//! job to a tenant for fair-share quotas.
//!
//! End-to-end deadline: `--deadline MS` bounds the *whole* verification.
//! Locally it clamps the kernel time budget; with `--submit` it travels
//! as `job_deadline_ms` so every dispatch, retry, and migration runs
//! under the shrinking remainder of the original envelope, and the
//! client's own poll loop gives up (exit 3) shortly after the budget
//! expires. Expiry is an honest INCONCLUSIVE with partial statistics,
//! never a hang.

use std::process::ExitCode;
use std::time::Duration;

use pnp_kernel::{
    cancel_on_termination, watch_termination, CancelToken, SearchConfig, VisitedKind,
};
use pnp_lang::{ChannelFaultAst, Pos, SystemAst, VerifyOptions};
use pnp_net::{json_num, json_str, percent_encode, ClientError, RealTcp, SubmitClient};

fn usage() -> ExitCode {
    eprintln!(
        "usage: pnp-check FILE.pnp [--quiet] [--dot] [--sim STEPS [--seed N]]\n\
         \u{20}                [--fault CONN=lossy|duplicating|reordering]\n\
         \u{20}                [--fault CONN.PORT=crash_restart]\n\
         \u{20}                [--budget states=N,time=MS,depth=D,mem=BYTES]\n\
         \u{20}                [--visited exact|compact|bitstate[:MB]|disk[:DIR]]\n\
         \u{20}                [--spill-at MB]\n\
         \u{20}                [--checkpoint FILE [--checkpoint-every N]]\n\
         \u{20}                [--resume FILE] [--threads N] [--deadline MS]\n\
         \u{20}                [--submit URL [--workers N] [--tenant NAME]]"
    );
    ExitCode::from(2)
}

/// Parses `--visited exact|compact|bitstate[:MB]|disk[:DIR]`, returning
/// the backend and, for `disk:DIR`, the scratch directory.
fn parse_visited(spec: &str) -> Result<(VisitedKind, Option<std::path::PathBuf>), String> {
    match spec {
        "exact" => Ok((VisitedKind::Exact, None)),
        "compact" => Ok((VisitedKind::Compact, None)),
        "bitstate" => Ok((
            VisitedKind::bitstate(VisitedKind::DEFAULT_BITSTATE_ARENA),
            None,
        )),
        "disk" => Ok((VisitedKind::DiskExact, None)),
        other => {
            if let Some(dir) = other.strip_prefix("disk:").filter(|d| !d.is_empty()) {
                return Ok((VisitedKind::DiskExact, Some(dir.into())));
            }
            let mb = other
                .strip_prefix("bitstate:")
                .and_then(|mb| mb.parse::<usize>().ok())
                .filter(|mb| *mb > 0)
                .ok_or_else(|| {
                    format!(
                        "--visited '{spec}': want exact, compact, bitstate[:MB] \
                         with MB a positive arena size in MiB, or disk[:DIR]"
                    )
                })?;
            Ok((VisitedKind::bitstate(mb << 20), None))
        }
    }
}

/// Applies one `--fault` specification to the parsed design.
fn apply_fault(ast: &mut SystemAst, spec: &str) -> Result<(), String> {
    let (target, fault) = spec
        .split_once('=')
        .ok_or_else(|| format!("--fault '{spec}': expected TARGET=FAULT"))?;
    if let Some((conn_name, port)) = target.split_once('.') {
        if fault != "crash_restart" {
            return Err(format!(
                "--fault '{spec}': port faults must be 'crash_restart'"
            ));
        }
        let conn = ast
            .connectors
            .iter_mut()
            .find(|c| c.name == conn_name)
            .ok_or_else(|| format!("--fault '{spec}': no connector '{conn_name}'"))?;
        let known = conn
            .sends
            .iter()
            .map(|(p, _, _)| p)
            .chain(conn.recvs.iter().map(|(p, _, _)| p))
            .any(|p| p == port);
        if !known {
            return Err(format!(
                "--fault '{spec}': connector '{conn_name}' has no port '{port}'"
            ));
        }
        if !conn.crash_ports.iter().any(|(p, _)| p == port) {
            conn.crash_ports
                .push((port.to_string(), Pos { line: 0, col: 0 }));
        }
        Ok(())
    } else {
        let decorator = match fault {
            "lossy" => ChannelFaultAst::Lossy,
            "duplicating" => ChannelFaultAst::Duplicating,
            "reordering" => ChannelFaultAst::Reordering,
            other => {
                return Err(format!(
                    "--fault '{spec}': unknown channel fault '{other}' \
                     (want lossy, duplicating, or reordering)"
                ))
            }
        };
        let conn = ast
            .connectors
            .iter_mut()
            .find(|c| c.name == target)
            .ok_or_else(|| format!("--fault '{spec}': no connector '{target}'"))?;
        conn.fault = Some(decorator);
        Ok(())
    }
}

/// Parses `--budget states=N,time=MS,depth=D,mem=BYTES` (any subset).
fn parse_budget(spec: &str) -> Result<SearchConfig, String> {
    let mut config = SearchConfig::default();
    for item in spec.split(',').filter(|s| !s.is_empty()) {
        let (key, value) = item
            .split_once('=')
            .ok_or_else(|| format!("--budget '{item}': expected KEY=VALUE"))?;
        let n: u64 = value
            .parse()
            .map_err(|_| format!("--budget '{item}': '{value}' is not a number"))?;
        match key {
            "states" => config.max_states = n as usize,
            "time" => config.max_time = Some(Duration::from_millis(n)),
            "depth" => config.max_depth = Some(n as usize),
            "mem" => config.max_memory_bytes = Some(n as usize),
            other => {
                return Err(format!(
                    "--budget '{spec}': unknown key '{other}' \
                     (want states, time, depth, or mem)"
                ))
            }
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        return usage();
    };
    let rest: Vec<String> = args.collect();
    let quiet = rest.iter().any(|a| a == "--quiet");
    let dot = rest.iter().any(|a| a == "--dot");
    let flag_value = |name: &str| -> Option<u64> {
        rest.iter()
            .position(|a| a == name)
            .and_then(|i| rest.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let sim_steps = flag_value("--sim");
    let seed = flag_value("--seed").unwrap_or(0);
    let fault_flags = rest.iter().filter(|a| *a == "--fault").count();
    let faults: Vec<&String> = rest
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--fault")
        .filter_map(|(i, _)| rest.get(i + 1))
        .collect();
    if faults.len() < fault_flags {
        eprintln!("pnp-check: --fault requires a value (TARGET=FAULT)");
        return ExitCode::from(2);
    }
    let flag_str = |name: &str| -> Result<Option<&String>, ExitCode> {
        let present = rest.iter().any(|a| a == name);
        let value = rest
            .iter()
            .position(|a| a == name)
            .and_then(|i| rest.get(i + 1));
        if present && value.is_none() {
            eprintln!("pnp-check: {name} requires a value");
            return Err(ExitCode::from(2));
        }
        Ok(value)
    };
    let budget = match flag_str("--budget") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let visited_spec = match flag_str("--visited") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let checkpoint_path = match flag_str("--checkpoint") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let resume_path = match flag_str("--resume") {
        Ok(v) => v,
        Err(code) => return code,
    };
    let checkpoint_every = flag_value("--checkpoint-every").unwrap_or(4096) as usize;
    let threads = match flag_str("--threads") {
        Ok(None) => 1,
        Ok(Some(value)) => match value.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("pnp-check: --threads '{value}': want a worker count of at least 1");
                return ExitCode::from(2);
            }
        },
        Err(code) => return code,
    };
    let deadline_ms = match flag_str("--deadline") {
        Ok(None) => None,
        Ok(Some(value)) => match value.parse::<u64>() {
            Ok(ms) if ms >= 1 => Some(ms),
            _ => {
                eprintln!(
                    "pnp-check: --deadline '{value}': want a positive budget in milliseconds"
                );
                return ExitCode::from(2);
            }
        },
        Err(code) => return code,
    };
    let submit_url = match flag_str("--submit") {
        Ok(v) => v.cloned(),
        Err(code) => return code,
    };
    let submit_workers = match flag_str("--workers") {
        Ok(None) => None,
        Ok(Some(value)) => match value.parse::<u64>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("pnp-check: --workers '{value}': want a live-worker count of at least 1");
                return ExitCode::from(2);
            }
        },
        Err(code) => return code,
    };
    let tenant = match flag_str("--tenant") {
        Ok(v) => v.cloned(),
        Err(code) => return code,
    };
    if submit_url.is_none() && (submit_workers.is_some() || tenant.is_some()) {
        eprintln!("pnp-check: --workers/--tenant only apply with --submit URL");
        return ExitCode::from(2);
    }

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pnp-check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut ast = match pnp_lang::parse_system(&source) {
        Ok(ast) => ast,
        Err(e) => {
            eprintln!("{path}:{e}");
            return ExitCode::from(2);
        }
    };
    for fault in &faults {
        if let Err(message) = apply_fault(&mut ast, fault) {
            eprintln!("pnp-check: {message}");
            return ExitCode::from(2);
        }
    }
    let mut config = match budget.map(|b| parse_budget(b)).transpose() {
        Ok(config) => config.unwrap_or_default(),
        Err(message) => {
            eprintln!("pnp-check: {message}");
            return ExitCode::from(2);
        }
    };
    let mut spill_dir = None;
    if let Some(spec) = visited_spec {
        match parse_visited(spec) {
            Ok((kind, dir)) => {
                config.visited = kind;
                spill_dir = dir;
            }
            Err(message) => {
                eprintln!("pnp-check: {message}");
                return ExitCode::from(2);
            }
        };
    }
    let spill_at = match flag_str("--spill-at") {
        Ok(None) => None,
        Ok(Some(value)) => match value.parse::<usize>() {
            Ok(mb) => Some(mb),
            Err(_) => {
                eprintln!("pnp-check: --spill-at '{value}': want a threshold in MiB (0 = spill immediately)");
                return ExitCode::from(2);
            }
        },
        Err(code) => return code,
    };
    if let Some(mb) = spill_at {
        config.spill_at_bytes = Some(mb << 20);
    }
    config.threads = threads;
    if let Some(ms) = deadline_ms {
        // The end-to-end budget doubles as the local time budget, so
        // expiry surfaces as INCONCLUSIVE with partial stats (exit 3).
        config.clamp_time(Duration::from_millis(ms));
    }
    let resume = match resume_path {
        // Prefer the double-buffered generations (`FILE.a`/`FILE.b`),
        // rolling back to the older slot when the newer one is damaged;
        // fall back to a legacy single-file snapshot at `FILE`.
        Some(file) => match pnp_kernel::load_latest_snapshot(&pnp_kernel::real_fs(), file) {
            Ok(Some((generation, snapshot))) => {
                println!(
                    "resuming property '{}' from {file} generation {generation} \
                     ({} states already covered)",
                    snapshot.tag(),
                    snapshot.states_covered()
                );
                Some(snapshot)
            }
            Ok(None) | Err(_) => match pnp_kernel::load_snapshot(file) {
                Ok(snapshot) => {
                    println!(
                        "resuming property '{}' from {file} ({} states already covered)",
                        snapshot.tag(),
                        snapshot.states_covered()
                    );
                    Some(snapshot)
                }
                Err(e) => {
                    eprintln!("pnp-check: cannot resume from {file}: {e}");
                    return ExitCode::from(2);
                }
            },
        },
        None => None,
    };

    let spec = match pnp_lang::compile_ast(&ast) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{path}:{e}");
            return ExitCode::from(2);
        }
    };

    if let Some(url) = &submit_url {
        if checkpoint_path.is_some() || resume_path.is_some() {
            eprintln!(
                "pnp-check: --submit cannot combine with --checkpoint/--resume \
                 (the daemon manages snapshots)"
            );
            return ExitCode::from(2);
        }
        // The spec compiled locally, so the daemon will accept it; submit
        // the *printed* design so `--fault` rewrites travel with it.
        return submit_remote(
            url,
            &ast.to_string(),
            budget.map(String::as_str),
            visited_spec.map(String::as_str),
            spill_at,
            threads,
            submit_workers,
            tenant.as_deref(),
            deadline_ms,
        );
    }

    if dot {
        print!("{}", spec.system().to_dot());
        return ExitCode::SUCCESS;
    }

    if let Some(steps) = sim_steps {
        let program = spec.system().program();
        let mut sim = pnp_kernel::Simulator::new(program, seed);
        let report = match sim.run(steps as usize) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("pnp-check: simulation failed: {e}");
                return ExitCode::from(2);
            }
        };
        println!(
            "{path}: simulated {} steps (seed {seed}){}",
            report.steps,
            if report.deadlock {
                " — DEADLOCKED"
            } else if report.halted {
                " — halted (all processes done)"
            } else {
                ""
            }
        );
        for (i, (name, _)) in program.globals().iter().enumerate() {
            let value = sim.view().global(pnp_kernel::GlobalId::from_index(i));
            println!("  {name} = {value}");
        }
        return ExitCode::SUCCESS;
    }

    let program = spec.system().program();
    if let Some(snapshot) = &resume {
        // Refuse up front, rather than silently ignoring a snapshot whose
        // tag matches no property of this specification.
        if !snapshot.matches_program(program) {
            eprintln!(
                "pnp-check: cannot resume: snapshot belongs to a different program \
                 (program fingerprint {:#018x}, snapshot has {:#018x})",
                pnp_kernel::program_fingerprint(program),
                snapshot.fingerprint()
            );
            return ExitCode::from(2);
        }
        if !spec.properties().iter().any(|p| p.name() == snapshot.tag()) {
            eprintln!(
                "pnp-check: cannot resume: this specification declares no property '{}'",
                snapshot.tag()
            );
            return ExitCode::from(2);
        }
    }
    println!(
        "{path}: {} processes ({} connector parts, {} components), {} properties",
        program.processes().len(),
        spec.system().topology().connector_process_count(),
        spec.system().topology().component_count(),
        spec.properties().len()
    );
    if !faults.is_empty() {
        println!(
            "  injected faults: {}",
            faults
                .iter()
                .map(|f| f.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // SIGINT and SIGTERM share one path with the daemon's drain: the
    // kernel cancels cooperatively and flushes a final snapshot before
    // the search unwinds.
    let cancel = CancelToken::new();
    cancel_on_termination(cancel.clone());
    let options = VerifyOptions {
        config,
        cancel: Some(cancel),
        checkpoint: checkpoint_path.map(|p| (p.into(), checkpoint_every)),
        resume,
        checkpoint_sink: None,
        vfs: None,
        spill_dir,
    };
    let results = match spec.verify_all_with_options(&options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pnp-check: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed = 0;
    let mut inconclusive = 0;
    for result in &results {
        println!("  {result}");
        let interesting = result.inconclusive || !result.holds || result.approx;
        if result.inconclusive {
            inconclusive += 1;
        } else if !result.holds {
            failed += 1;
        }
        if interesting && !quiet {
            for line in result.detail.lines() {
                println!("    {line}");
            }
        }
    }
    let spilled: usize = results.iter().map(|r| r.spilled_states).sum();
    if spilled > 0 {
        // One line of memory-pressure context; verdict lines stay
        // byte-identical to an in-memory run.
        println!(
            "spilled {spilled} states to disk ({} bytes, {} merge passes)",
            results.iter().map(|r| r.spill_bytes).sum::<usize>(),
            results.iter().map(|r| r.merge_passes).sum::<usize>(),
        );
    }
    if inconclusive > 0 {
        if let Some((path, _)) = &options.checkpoint {
            println!(
                "checkpoint flushed to {}; resume with --resume {}",
                path.display(),
                path.display()
            );
        }
    }
    if failed == 0 && inconclusive == 0 {
        println!("all {} properties hold", results.len());
        ExitCode::SUCCESS
    } else if failed > 0 {
        println!("{failed} of {} properties violated", results.len());
        ExitCode::FAILURE
    } else {
        println!(
            "{inconclusive} of {} properties inconclusive (budget exhausted or interrupted)",
            results.len()
        );
        ExitCode::from(3)
    }
}

/// Submits the printed design to a `pnp-serve` daemon (single-node or
/// cluster coordinator) through the retrying [`SubmitClient`], waits for
/// the verdict (cancelling the remote job on SIGINT/SIGTERM), and maps
/// it to the local exit codes. Shed submissions (503) and network
/// failures that outlast the client's retries exit 3: both conditions
/// are transient and the caller should retry after the hinted delay —
/// the generated idempotency key makes resubmission safe even when the
/// first attempt's fate is unknown.
#[allow(clippy::too_many_arguments)]
fn submit_remote(
    url: &str,
    source: &str,
    budget: Option<&str>,
    visited: Option<&str>,
    spill_at: Option<usize>,
    threads: usize,
    workers: Option<u64>,
    tenant: Option<&str>,
    deadline_ms: Option<u64>,
) -> ExitCode {
    let Some(host) = url
        .strip_prefix("http://")
        .map(|rest| rest.trim_end_matches('/'))
        .filter(|h| !h.is_empty())
    else {
        eprintln!("pnp-check: --submit wants an http://HOST:PORT URL");
        return ExitCode::from(2);
    };
    let mut query = Vec::new();
    if let Some(b) = budget {
        query.push(format!("budget={}", percent_encode(b)));
    }
    if let Some(v) = visited {
        // Only the backend travels: the daemon assigns its own scratch
        // directory, so a local `disk:DIR` path is stripped.
        let backend = if v.starts_with("disk") { "disk" } else { v };
        query.push(format!("visited={}", percent_encode(backend)));
    }
    if let Some(mb) = spill_at {
        query.push(format!("spill_at={mb}"));
    }
    if threads > 1 {
        query.push(format!("threads={threads}"));
    }
    if let Some(n) = workers {
        query.push(format!("workers={n}"));
    }
    if let Some(t) = tenant {
        query.push(format!("tenant={}", percent_encode(t)));
    }
    if let Some(ms) = deadline_ms {
        query.push(format!("job_deadline_ms={ms}"));
    }

    let mut client = SubmitClient::new(RealTcp::default());
    // Unique per invocation: retries of *this* submission deduplicate on
    // the daemon, while a deliberate re-run submits a fresh job.
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos());
    client.idem_key = Some(format!("check-{}-{nanos:x}", std::process::id()));

    let id = match client.submit(host, source, &query.join("&")) {
        Ok(outcome) => outcome.id,
        Err(error @ ClientError::Retryable { .. }) => {
            eprintln!("pnp-check: {error}");
            return ExitCode::from(3);
        }
        Err(ClientError::Fatal(reason)) => {
            eprintln!("pnp-check: {reason}");
            return ExitCode::from(2);
        }
    };
    println!("submitted as {id} to {host}");

    let term = watch_termination();
    let mut cancel_sent = false;
    let mut unreachable_polls = 0u32;
    let started = std::time::Instant::now();
    // Give the daemon a short grace past the job deadline to finalize
    // its own expiry (an INCONCLUSIVE with partial stats) before the
    // client walks away.
    let poll_budget = deadline_ms.map(|ms| Duration::from_millis(ms) + Duration::from_secs(5));
    loop {
        if poll_budget.is_some_and(|limit| started.elapsed() >= limit) {
            eprintln!(
                "pnp-check: deadline exceeded waiting for {id}; \
                 the job expires server-side — result stays at /jobs/{id}/result"
            );
            return ExitCode::from(3);
        }
        if term.is_raised() && !cancel_sent {
            println!(
                "pnp-check: {} — cancelling remote job {id}",
                term.signal_name().unwrap_or("signal")
            );
            let _ = client.cancel(host, &id);
            cancel_sent = true;
        }
        match client.poll_result(host, &id) {
            Ok(Some(body)) => {
                println!("{body}");
                let verdict = json_str(&body, "verdict").unwrap_or_else(|| "unknown".into());
                let attempts = json_num(&body, "attempts").unwrap_or(0);
                println!("remote verdict: {verdict} (after {attempts} attempt(s))");
                let code = json_num(&body, "exit_code").unwrap_or(2);
                return ExitCode::from(u8::try_from(code).unwrap_or(2));
            }
            Ok(None) => {
                unreachable_polls = 0;
                std::thread::sleep(Duration::from_millis(100));
            }
            // Polls are idempotent, so ride out a restarting daemon (a
            // coordinator fail-over restores the job set from its state
            // directory) — but give up once it stays dark for ~30 s.
            // Overload sheds carry a Retry-After hint; honor it.
            Err(ClientError::Retryable {
                reason,
                retry_after_ms,
            }) => {
                unreachable_polls += 1;
                if unreachable_polls >= 30 {
                    eprintln!("pnp-check: {reason}; giving up — job {id} is still remote");
                    return ExitCode::from(3);
                }
                std::thread::sleep(Duration::from_millis(retry_after_ms.unwrap_or(1000)));
            }
            Err(ClientError::Fatal(reason)) => {
                eprintln!("pnp-check: {reason}");
                return ExitCode::from(2);
            }
        }
    }
}
