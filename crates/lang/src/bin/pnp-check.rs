//! `pnp-check` — verify a `.pnp` architecture specification.
//!
//! Usage: `pnp-check FILE.pnp [--quiet] [--dot] [--sim STEPS [--seed N]]`
//!
//! Compiles the specification, checks every declared property, prints one
//! line per property (plus explained counterexamples unless `--quiet`), and
//! exits nonzero if any property is violated. With `--dot` the architecture
//! diagram is printed as Graphviz dot instead; with `--sim STEPS` a random
//! execution is run and the final global values printed (no verification).

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: pnp-check FILE.pnp [--quiet] [--dot]");
        return ExitCode::from(2);
    };
    let rest: Vec<String> = args.collect();
    let quiet = rest.iter().any(|a| a == "--quiet");
    let dot = rest.iter().any(|a| a == "--dot");
    let flag_value = |name: &str| -> Option<u64> {
        rest.iter()
            .position(|a| a == name)
            .and_then(|i| rest.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    let sim_steps = flag_value("--sim");
    let seed = flag_value("--seed").unwrap_or(0);

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pnp-check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let spec = match pnp_lang::compile(&source) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{path}:{e}");
            return ExitCode::from(2);
        }
    };

    if dot {
        print!("{}", spec.system().to_dot());
        return ExitCode::SUCCESS;
    }

    if let Some(steps) = sim_steps {
        let program = spec.system().program();
        let mut sim = pnp_kernel::Simulator::new(program, seed);
        let report = match sim.run(steps as usize) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("pnp-check: simulation failed: {e}");
                return ExitCode::from(2);
            }
        };
        println!(
            "{path}: simulated {} steps (seed {seed}){}",
            report.steps,
            if report.deadlock {
                " — DEADLOCKED"
            } else if report.halted {
                " — halted (all processes done)"
            } else {
                ""
            }
        );
        for (i, (name, _)) in program.globals().iter().enumerate() {
            let value = sim.view().global(pnp_kernel::GlobalId::from_index(i));
            println!("  {name} = {value}");
        }
        return ExitCode::SUCCESS;
    }

    let program = spec.system().program();
    println!(
        "{path}: {} processes ({} connector parts, {} components), {} properties",
        program.processes().len(),
        spec.system().topology().connector_process_count(),
        spec.system().topology().component_count(),
        spec.properties().len()
    );

    let results = match spec.verify_all() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pnp-check: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failed = 0;
    for result in &results {
        println!("  {result}");
        if !result.holds {
            failed += 1;
            if !quiet {
                for line in result.detail.lines() {
                    println!("    {line}");
                }
            }
        }
    }
    if failed == 0 {
        println!("all {} properties hold", results.len());
        ExitCode::SUCCESS
    } else {
        println!("{failed} of {} properties violated", results.len());
        ExitCode::FAILURE
    }
}
