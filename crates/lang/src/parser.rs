//! Recursive-descent parser for the architecture-description language.

use crate::ast::*;
use crate::lexer::{lex, Tok, Token};
use crate::{LangError, Pos};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    end: Pos,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn here(&self) -> Pos {
        self.tokens.get(self.pos).map(|t| t.pos).unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), LangError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(LangError::new(format!("expected {what}"), self.here()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), LangError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Ident(name)) => Ok((name, pos)),
            _ => Err(LangError::new(format!("expected {what}"), pos)),
        }
    }

    /// Accepts a specific contextual keyword.
    fn keyword(&mut self, word: &str) -> Result<Pos, LangError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Ident(name)) if name == word => Ok(pos),
            _ => Err(LangError::new(format!("expected '{word}'"), pos)),
        }
    }

    fn at_keyword(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(name)) if name == word)
    }

    fn int(&mut self, what: &str) -> Result<i32, LangError> {
        let pos = self.here();
        // Allow a leading minus.
        let negative = if self.peek() == Some(&Tok::Minus) {
            self.pos += 1;
            true
        } else {
            false
        };
        match self.bump() {
            Some(Tok::Int(v)) => Ok(if negative { -v } else { v }),
            _ => Err(LangError::new(format!("expected {what}"), pos)),
        }
    }

    fn string(&mut self, what: &str) -> Result<String, LangError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Str(s)) => Ok(s),
            _ => Err(LangError::new(format!("expected {what}"), pos)),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<ExprAst, LangError> {
        self.expr_or()
    }

    fn expr_or(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.expr_and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            let rhs = self.expr_and()?;
            lhs = ExprAst::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_and(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.expr_cmp()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.pos += 1;
            let rhs = self.expr_cmp()?;
            lhs = ExprAst::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_cmp(&mut self) -> Result<ExprAst, LangError> {
        let lhs = self.expr_add()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => Some(BinOp::Eq),
            Some(Tok::NotEq) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.expr_add()?;
            Ok(ExprAst::Binary(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn expr_add(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.expr_mul()?;
            lhs = ExprAst::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_mul(&mut self) -> Result<ExprAst, LangError> {
        let mut lhs = self.expr_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.expr_unary()?;
            lhs = ExprAst::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_unary(&mut self) -> Result<ExprAst, LangError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                Ok(ExprAst::Unary(UnOp::Neg, Box::new(self.expr_unary()?)))
            }
            Some(Tok::Bang) => {
                self.pos += 1;
                Ok(ExprAst::Unary(UnOp::Not, Box::new(self.expr_unary()?)))
            }
            _ => self.expr_atom(),
        }
    }

    fn expr_atom(&mut self) -> Result<ExprAst, LangError> {
        let pos = self.here();
        match self.bump() {
            Some(Tok::Int(v)) => Ok(ExprAst::Int(v)),
            Some(Tok::Ident(name)) => Ok(ExprAst::Var(name, pos)),
            Some(Tok::LParen) => {
                let inner = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(inner)
            }
            other => Err(LangError::new(
                format!("expected expression, found {other:?}"),
                pos,
            )),
        }
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    fn channel_kind(&mut self) -> Result<ChannelAst, LangError> {
        let (word, pos) = self.ident("channel kind")?;
        let sized = |p: &mut Parser| -> Result<usize, LangError> {
            p.expect(Tok::LParen, "'('")?;
            let n = p.int("capacity")?;
            p.expect(Tok::RParen, "')'")?;
            if n < 1 {
                return Err(LangError::new("capacity must be at least 1", pos));
            }
            Ok(n as usize)
        };
        match word.as_str() {
            "single_slot" => Ok(ChannelAst::SingleSlot),
            "fifo" => Ok(ChannelAst::Fifo(sized(self)?)),
            "priority" => Ok(ChannelAst::Priority(sized(self)?)),
            "dropping" => Ok(ChannelAst::Dropping(sized(self)?)),
            "sliding" => Ok(ChannelAst::Sliding(sized(self)?)),
            other => Err(LangError::new(
                format!("unknown channel kind '{other}' (expected single_slot, fifo(N), priority(N), dropping(N), sliding(N))"),
                pos,
            )),
        }
    }

    fn send_kind(&mut self) -> Result<SendKindAst, LangError> {
        let (word, pos) = self.ident("send-port kind")?;
        match word.as_str() {
            "asyn_nonblocking" => Ok(SendKindAst::AsynNonblocking),
            "asyn_blocking" => Ok(SendKindAst::AsynBlocking),
            "asyn_checking" => Ok(SendKindAst::AsynChecking),
            "syn_blocking" => Ok(SendKindAst::SynBlocking),
            "syn_checking" => Ok(SendKindAst::SynChecking),
            other => Err(LangError::new(
                format!(
                    "unknown send-port kind '{other}' (expected asyn_nonblocking, asyn_blocking, asyn_checking, syn_blocking, syn_checking)"
                ),
                pos,
            )),
        }
    }

    fn recv_kind(&mut self) -> Result<RecvKindAst, LangError> {
        let (word, pos) = self.ident("receive-port kind")?;
        let blocking = match word.as_str() {
            "blocking" => true,
            "nonblocking" => false,
            other => {
                return Err(LangError::new(
                    format!(
                        "unknown receive-port kind '{other}' (expected blocking or nonblocking)"
                    ),
                    pos,
                ))
            }
        };
        let copy = if self.at_keyword("copy") {
            self.pos += 1;
            true
        } else {
            false
        };
        Ok(RecvKindAst { blocking, copy })
    }

    /// Parses an optional fault-decorator keyword before a channel kind.
    fn channel_fault(&mut self) -> Option<ChannelFaultAst> {
        let fault = if self.at_keyword("lossy") {
            ChannelFaultAst::Lossy
        } else if self.at_keyword("duplicating") {
            ChannelFaultAst::Duplicating
        } else if self.at_keyword("reordering") {
            ChannelFaultAst::Reordering
        } else {
            return None;
        };
        self.pos += 1;
        Some(fault)
    }

    fn connector(&mut self) -> Result<ConnectorAst, LangError> {
        let pos = self.keyword("connector")?;
        let (name, _) = self.ident("connector name")?;
        self.expect(Tok::LBrace, "'{'")?;
        let mut channel = None;
        let mut fault = None;
        let mut crash_ports: Vec<(String, Pos)> = Vec::new();
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let item_pos = self.here();
            if self.at_keyword("channel") {
                self.pos += 1;
                if channel.is_some() {
                    return Err(LangError::new("duplicate channel declaration", item_pos));
                }
                fault = self.channel_fault();
                channel = Some(self.channel_kind()?);
                self.expect(Tok::Semi, "';'")?;
            } else if self.at_keyword("faults") {
                self.pos += 1;
                self.expect(Tok::LBrace, "'{'")?;
                while self.peek() != Some(&Tok::RBrace) {
                    self.keyword("crash_restart")?;
                    let (port, ppos) = self.ident("port name")?;
                    if crash_ports.iter().any(|(p, _)| p == &port) {
                        return Err(LangError::new(
                            format!("port '{port}' listed twice in faults block"),
                            ppos,
                        ));
                    }
                    crash_ports.push((port, ppos));
                    self.expect(Tok::Semi, "';'")?;
                }
                self.expect(Tok::RBrace, "'}'")?;
            } else if self.at_keyword("send") {
                self.pos += 1;
                let (port, ppos) = self.ident("port name")?;
                self.expect(Tok::Colon, "':'")?;
                let kind = self.send_kind()?;
                self.expect(Tok::Semi, "';'")?;
                sends.push((port, kind, ppos));
            } else if self.at_keyword("recv") {
                self.pos += 1;
                let (port, ppos) = self.ident("port name")?;
                self.expect(Tok::Colon, "':'")?;
                let kind = self.recv_kind()?;
                self.expect(Tok::Semi, "';'")?;
                recvs.push((port, kind, ppos));
            } else {
                return Err(LangError::new(
                    "expected 'channel', 'faults', 'send', or 'recv' in connector",
                    item_pos,
                ));
            }
        }
        self.expect(Tok::RBrace, "'}'")?;
        let channel = channel
            .ok_or_else(|| LangError::new(format!("connector '{name}' has no channel"), pos))?;
        Ok(ConnectorAst {
            name,
            channel,
            fault,
            crash_ports,
            sends,
            recvs,
            pos,
        })
    }

    fn event(&mut self) -> Result<EventAst, LangError> {
        let pos = self.keyword("event")?;
        let (name, _) = self.ident("event connector name")?;
        self.expect(Tok::LBrace, "'{'")?;
        let mut capacity = 1usize;
        let mut publishers = Vec::new();
        let mut subscribers = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let item_pos = self.here();
            if self.at_keyword("capacity") {
                self.pos += 1;
                let n = self.int("capacity")?;
                if n < 1 {
                    return Err(LangError::new("capacity must be at least 1", item_pos));
                }
                capacity = n as usize;
                self.expect(Tok::Semi, "';'")?;
            } else if self.at_keyword("publish") {
                self.pos += 1;
                let (port, ppos) = self.ident("port name")?;
                self.expect(Tok::Colon, "':'")?;
                let kind = self.send_kind()?;
                self.expect(Tok::Semi, "';'")?;
                publishers.push((port, kind, ppos));
            } else if self.at_keyword("subscribe") {
                self.pos += 1;
                let (port, ppos) = self.ident("port name")?;
                self.expect(Tok::Colon, "':'")?;
                let kind = self.recv_kind()?;
                let filter = if self.at_keyword("tag") {
                    self.pos += 1;
                    Some(self.int("tag")?)
                } else {
                    None
                };
                self.expect(Tok::Semi, "';'")?;
                subscribers.push((port, kind, filter, ppos));
            } else {
                return Err(LangError::new(
                    "expected 'capacity', 'publish', or 'subscribe' in event connector",
                    item_pos,
                ));
            }
        }
        self.expect(Tok::RBrace, "'}'")?;
        Ok(EventAst {
            name,
            capacity,
            publishers,
            subscribers,
            pos,
        })
    }

    fn component(&mut self) -> Result<ComponentAst, LangError> {
        let pos = self.keyword("component")?;
        let (name, _) = self.ident("component name")?;
        self.expect(Tok::LBrace, "'{'")?;
        let mut vars = Vec::new();
        let mut states = Vec::new();
        let mut init = None;
        let mut ends = Vec::new();
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            let item_pos = self.here();
            if self.at_keyword("var") {
                self.pos += 1;
                let (vname, vpos) = self.ident("variable name")?;
                self.expect(Tok::Assign, "'='")?;
                let value = self.int("initial value")?;
                self.expect(Tok::Semi, "';'")?;
                vars.push((vname, value, vpos));
            } else if self.at_keyword("state") {
                self.pos += 1;
                loop {
                    let (sname, spos) = self.ident("state name")?;
                    states.push((sname, spos));
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(Tok::Semi, "';'")?;
            } else if self.at_keyword("init") {
                self.pos += 1;
                let (sname, spos) = self.ident("state name")?;
                self.expect(Tok::Semi, "';'")?;
                if init.is_some() {
                    return Err(LangError::new("duplicate init declaration", item_pos));
                }
                init = Some((sname, spos));
            } else if self.at_keyword("end") {
                self.pos += 1;
                loop {
                    let (sname, spos) = self.ident("state name")?;
                    ends.push((sname, spos));
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(Tok::Semi, "';'")?;
            } else if self.at_keyword("from") {
                stmts.push(self.stmt()?);
            } else {
                return Err(LangError::new(
                    "expected 'var', 'state', 'init', 'end', or 'from' in component",
                    item_pos,
                ));
            }
        }
        self.expect(Tok::RBrace, "'}'")?;
        Ok(ComponentAst {
            name,
            vars,
            states,
            init,
            ends,
            stmts,
            pos,
        })
    }

    fn stmt(&mut self) -> Result<StmtAst, LangError> {
        let pos = self.keyword("from")?;
        let (from, _) = self.ident("state name")?;
        let guard = if self.at_keyword("if") {
            self.pos += 1;
            Some(self.expr()?)
        } else {
            None
        };
        let action = if self.at_keyword("do") {
            self.pos += 1;
            let mut assigns = Vec::new();
            loop {
                let (vname, _) = self.ident("variable name")?;
                self.expect(Tok::Assign, "'='")?;
                let value = self.expr()?;
                assigns.push((vname, value));
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            ActionAst::Assign(assigns)
        } else if self.at_keyword("send") {
            self.pos += 1;
            let (port, _) = self.ident("port name")?;
            self.expect(Tok::LParen, "'('")?;
            let data = self.expr()?;
            let tag = if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(Tok::RParen, "')'")?;
            let status = if self.at_keyword("status") {
                self.pos += 1;
                Some(self.ident("status variable")?.0)
            } else {
                None
            };
            ActionAst::Send {
                port,
                data,
                tag,
                status,
            }
        } else if self.at_keyword("receive") {
            self.pos += 1;
            let (port, _) = self.ident("port name")?;
            let mut selective = None;
            let mut into = None;
            let mut status = None;
            let mut tagvar = None;
            loop {
                if self.at_keyword("tag") {
                    self.pos += 1;
                    selective = Some(self.expr()?);
                } else if self.at_keyword("into") {
                    self.pos += 1;
                    into = Some(self.ident("variable name")?.0);
                } else if self.at_keyword("status") {
                    self.pos += 1;
                    status = Some(self.ident("variable name")?.0);
                } else if self.at_keyword("tagvar") {
                    self.pos += 1;
                    tagvar = Some(self.ident("variable name")?.0);
                } else {
                    break;
                }
            }
            ActionAst::Receive {
                port,
                selective,
                into,
                status,
                tagvar,
            }
        } else if self.at_keyword("assert") {
            self.pos += 1;
            let cond = self.expr()?;
            let message = self.string("assertion message")?;
            ActionAst::Assert(cond, message)
        } else {
            ActionAst::Skip
        };
        self.keyword("goto")?;
        let (goto, _) = self.ident("state name")?;
        self.expect(Tok::Semi, "';'")?;
        Ok(StmtAst {
            from,
            guard,
            action,
            goto,
            pos,
        })
    }

    fn property(&mut self) -> Result<PropertyAst, LangError> {
        let pos = self.keyword("property")?;
        let (name, _) = self.ident("property name")?;
        self.expect(Tok::Colon, "':'")?;
        let kind_pos = self.here();
        let prop = if self.at_keyword("invariant") {
            self.pos += 1;
            let expr = self.expr()?;
            PropertyAst::Invariant { name, expr, pos }
        } else if self.at_keyword("ltl") {
            self.pos += 1;
            let formula = self.string("LTL formula string")?;
            let mut bindings = Vec::new();
            if self.at_keyword("where") {
                self.pos += 1;
                loop {
                    let (pname, _) = self.ident("proposition name")?;
                    self.expect(Tok::Assign, "'='")?;
                    let expr = self.expr()?;
                    bindings.push((pname, expr));
                    if self.peek() == Some(&Tok::Comma) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
            PropertyAst::Ltl {
                name,
                formula,
                bindings,
                pos,
            }
        } else if self.at_keyword("no_deadlock") {
            self.pos += 1;
            PropertyAst::NoDeadlock { name, pos }
        } else {
            return Err(LangError::new(
                "expected 'invariant', 'ltl', or 'no_deadlock'",
                kind_pos,
            ));
        };
        self.expect(Tok::Semi, "';'")?;
        Ok(prop)
    }

    fn system(&mut self) -> Result<SystemAst, LangError> {
        self.keyword("system")?;
        self.expect(Tok::LBrace, "'{'")?;
        let mut ast = SystemAst {
            globals: Vec::new(),
            connectors: Vec::new(),
            events: Vec::new(),
            components: Vec::new(),
            properties: Vec::new(),
        };
        while self.peek() != Some(&Tok::RBrace) {
            let pos = self.here();
            if self.at_keyword("global") {
                self.pos += 1;
                let (name, gpos) = self.ident("global name")?;
                self.expect(Tok::Assign, "'='")?;
                let value = self.int("initial value")?;
                self.expect(Tok::Semi, "';'")?;
                ast.globals.push((name, value, gpos));
            } else if self.at_keyword("connector") {
                ast.connectors.push(self.connector()?);
            } else if self.at_keyword("event") {
                ast.events.push(self.event()?);
            } else if self.at_keyword("component") {
                ast.components.push(self.component()?);
            } else if self.at_keyword("property") {
                ast.properties.push(self.property()?);
            } else {
                return Err(LangError::new(
                    "expected 'global', 'connector', 'event', 'component', or 'property'",
                    pos,
                ));
            }
        }
        self.expect(Tok::RBrace, "'}'")?;
        if self.pos != self.tokens.len() {
            return Err(LangError::new("unexpected trailing input", self.here()));
        }
        Ok(ast)
    }
}

/// Parses a `system { ... }` specification into its AST.
///
/// # Errors
///
/// Returns a [`LangError`] with a source position for malformed input.
pub fn parse_system(source: &str) -> Result<SystemAst, LangError> {
    let tokens = lex(source)?;
    let end = tokens
        .last()
        .map(|t| Pos {
            line: t.pos.line,
            col: t.pos.col + 1,
        })
        .unwrap_or(Pos { line: 1, col: 1 });
    Parser {
        tokens,
        pos: 0,
        end,
    }
    .system()
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &str = r#"
        system {
            global delivered = 0;
            connector wire {
                channel fifo(2);
                send tx: asyn_blocking;
                recv rx: blocking;
            }
            component producer {
                state start, done;
                end done;
                from start send tx(42) goto done;
            }
            component consumer {
                var got = 0;
                state recv, publish, done;
                end done;
                from recv receive rx into got goto publish;
                from publish do delivered = got goto done;
            }
            property ok: invariant delivered == 0 || delivered == 42;
            property arrives: ltl "<> seen" where seen = delivered == 42;
            property live: no_deadlock;
        }
    "#;

    #[test]
    fn parses_a_full_system() {
        let ast = parse_system(WIRE).unwrap();
        assert_eq!(ast.globals.len(), 1);
        assert_eq!(ast.connectors.len(), 1);
        assert_eq!(ast.components.len(), 2);
        assert_eq!(ast.properties.len(), 3);
        let conn = &ast.connectors[0];
        assert_eq!(conn.name, "wire");
        assert_eq!(conn.channel, ChannelAst::Fifo(2));
        assert_eq!(conn.sends.len(), 1);
        assert_eq!(conn.recvs.len(), 1);
        let consumer = &ast.components[1];
        assert_eq!(consumer.vars.len(), 1);
        assert_eq!(consumer.states.len(), 3);
        assert_eq!(consumer.stmts.len(), 2);
    }

    #[test]
    fn parses_all_channel_kinds() {
        for (text, expected) in [
            ("single_slot", ChannelAst::SingleSlot),
            ("fifo(3)", ChannelAst::Fifo(3)),
            ("priority(4)", ChannelAst::Priority(4)),
            ("dropping(1)", ChannelAst::Dropping(1)),
            ("sliding(2)", ChannelAst::Sliding(2)),
        ] {
            let src = format!(
                "system {{ connector c {{ channel {text}; send s: asyn_blocking; recv r: blocking; }} component x {{ state a; end a; }} }}"
            );
            let ast = parse_system(&src).unwrap();
            assert_eq!(ast.connectors[0].channel, expected, "{text}");
        }
    }

    #[test]
    fn parses_recv_modifiers() {
        let src = "system { connector c { channel single_slot; send s: syn_blocking; recv r: nonblocking copy; } component x { state a; end a; } }";
        let ast = parse_system(src).unwrap();
        let (_, kind, _) = &ast.connectors[0].recvs[0];
        assert!(!kind.blocking);
        assert!(kind.copy);
    }

    #[test]
    fn parses_channel_fault_decorators() {
        for (text, expected) in [
            ("lossy fifo(3)", Some(ChannelFaultAst::Lossy)),
            (
                "duplicating single_slot",
                Some(ChannelFaultAst::Duplicating),
            ),
            ("reordering priority(2)", Some(ChannelFaultAst::Reordering)),
            ("fifo(3)", None),
        ] {
            let src = format!(
                "system {{ connector c {{ channel {text}; send s: asyn_blocking; recv r: blocking; }} component x {{ state a; end a; }} }}"
            );
            let ast = parse_system(&src).unwrap();
            assert_eq!(ast.connectors[0].fault, expected, "{text}");
        }
    }

    #[test]
    fn parses_faults_block() {
        let src = r#"system {
            connector c {
                channel lossy fifo(2);
                faults {
                    crash_restart tx;
                    crash_restart rx;
                }
                send tx: asyn_checking;
                recv rx: blocking;
            }
            component x { state a; end a; }
        }"#;
        let ast = parse_system(src).unwrap();
        let conn = &ast.connectors[0];
        assert_eq!(conn.fault, Some(ChannelFaultAst::Lossy));
        let ports: Vec<&str> = conn.crash_ports.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(ports, ["tx", "rx"]);
    }

    #[test]
    fn rejects_duplicate_crash_port() {
        let src = "system { connector c { channel single_slot; faults { crash_restart tx; crash_restart tx; } send tx: asyn_blocking; recv rx: blocking; } component x { state a; end a; } }";
        let err = parse_system(src).unwrap_err();
        assert!(err.to_string().contains("listed twice"), "{err}");
    }

    #[test]
    fn parses_event_connectors() {
        let src = r#"system {
            event news {
                capacity 2;
                publish agency: asyn_blocking;
                subscribe sports: nonblocking tag 7;
                subscribe all: nonblocking;
            }
            component x { state a; end a; }
        }"#;
        let ast = parse_system(src).unwrap();
        let ev = &ast.events[0];
        assert_eq!(ev.capacity, 2);
        assert_eq!(ev.publishers.len(), 1);
        assert_eq!(ev.subscribers.len(), 2);
        assert_eq!(ev.subscribers[0].2, Some(7));
        assert_eq!(ev.subscribers[1].2, None);
    }

    #[test]
    fn parses_guards_sends_and_asserts() {
        let src = r#"system {
            global g = -1;
            connector c { channel single_slot; send s: syn_blocking; recv r: blocking; }
            component x {
                var v = 0;
                state a, b, cst;
                init a;
                end cst;
                from a if v < 3 do v = v + 1 goto a;
                from a if v >= 3 send s(v * 2, 1) status v goto b;
                from b assert g != 0 "g must not be zero" goto cst;
            }
        }"#;
        let ast = parse_system(src).unwrap();
        let comp = &ast.components[0];
        assert_eq!(comp.init.as_ref().unwrap().0, "a");
        assert_eq!(comp.stmts.len(), 3);
        assert!(matches!(comp.stmts[1].action, ActionAst::Send { .. }));
        assert!(matches!(comp.stmts[2].action, ActionAst::Assert(..)));
        assert_eq!(ast.globals[0].1, -1);
    }

    #[test]
    fn parses_receive_clauses_in_any_order() {
        let src = r#"system {
            connector c { channel single_slot; send s: syn_blocking; recv r: blocking; }
            component x {
                var d = 0; var st = 0; var t = 0;
                state a, b;
                end b;
                from a receive r status st tag 5 into d tagvar t goto b;
            }
        }"#;
        let ast = parse_system(src).unwrap();
        let ActionAst::Receive {
            selective,
            into,
            status,
            tagvar,
            ..
        } = &ast.components[0].stmts[0].action
        else {
            panic!("expected receive");
        };
        assert!(selective.is_some());
        assert_eq!(into.as_deref(), Some("d"));
        assert_eq!(status.as_deref(), Some("st"));
        assert_eq!(tagvar.as_deref(), Some("t"));
    }

    #[test]
    fn error_positions_are_meaningful() {
        let err = parse_system("system {\n  widget w;\n}").unwrap_err();
        assert_eq!(err.pos().line, 2);
        let err =
            parse_system("system { connector c { } component x { state a; end a; } }").unwrap_err();
        assert!(err.to_string().contains("no channel"), "{err}");
    }

    #[test]
    fn rejects_duplicate_channel() {
        let src = "system { connector c { channel single_slot; channel fifo(2); send s: syn_blocking; recv r: blocking; } component x { state a; end a; } }";
        assert!(parse_system(src)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_system("system { } extra").is_err());
    }
}
