//! # pnp-lang — a textual architecture-description language
//!
//! The paper's designers work in a design environment (ArchStudio) and a
//! modeling language (Promela); this crate provides the equivalent textual
//! surface for the PnP library: an architecture-description language in
//! which connectors are composed from named building blocks, components
//! are small guarded automata using the standard interfaces, and
//! properties are declared alongside the design.
//!
//! ```text
//! system {
//!     global delivered = 0;
//!
//!     connector wire {
//!         channel fifo(2);
//!         send tx: asyn_blocking;
//!         recv rx: blocking;
//!     }
//!
//!     component producer {
//!         state start, done;
//!         end done;
//!         from start send tx(42) goto done;
//!     }
//!
//!     component consumer {
//!         var got = 0;
//!         state recv, publish, done;
//!         end done;
//!         from recv receive rx into got goto publish;
//!         from publish do delivered = got goto done;
//!     }
//!
//!     property no_phantom: invariant delivered == 0 || delivered == 42;
//!     property arrives: ltl "<> ok" where ok = delivered == 42;
//! }
//! ```
//!
//! [`compile`] turns a source string into an [`ArchSpec`]: a verified-
//! buildable [`pnp_core::System`] plus its declared properties, ready to
//! check:
//!
//! ```
//! let spec = pnp_lang::compile(r#"
//!     system {
//!         global x = 0;
//!         component ticker {
//!             state a, b;
//!             end b;
//!             from a do x = 1 goto b;
//!         }
//!         property done: invariant x == 0 || x == 1;
//!     }
//! "#)?;
//! let results = spec.verify_all()?;
//! assert!(results.iter().all(|r| r.holds));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `pnp-check` binary wraps this for `.pnp` files on disk.

#![warn(missing_docs)]
mod ast;
mod compile;
mod lexer;
mod parser;
mod printer;
mod report;

pub use ast::{
    ActionAst, BinOp, ChannelAst, ChannelFaultAst, ComponentAst, ConnectorAst, EventAst, ExprAst,
    PropertyAst, RecvKindAst, SendKindAst, StmtAst, SystemAst, UnOp,
};
pub use compile::{compile, compile_ast, ArchSpec};
pub use parser::parse_system;
pub use report::{PropertyResult, PropertySpec, SinkFactory, VerifyError, VerifyOptions};

use std::fmt;

/// A source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced while lexing, parsing, or compiling a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    message: String,
    pos: Pos,
}

impl LangError {
    pub(crate) fn new(message: impl Into<String>, pos: Pos) -> LangError {
        LangError {
            message: message.into(),
            pos,
        }
    }

    /// The source position of the error.
    pub fn pos(&self) -> Pos {
        self.pos
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LangError {}
