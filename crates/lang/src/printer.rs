//! Pretty-printer for the architecture-description language.
//!
//! [`SystemAst`] implements `Display`, producing canonical source text that
//! re-parses to an equivalent AST (checked by the round-trip property
//! tests). Useful for formatting specifications and for emitting specs
//! generated programmatically.

use std::fmt;

use crate::ast::*;

impl fmt::Display for ChannelAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelAst::SingleSlot => write!(f, "single_slot"),
            ChannelAst::Fifo(n) => write!(f, "fifo({n})"),
            ChannelAst::Priority(n) => write!(f, "priority({n})"),
            ChannelAst::Dropping(n) => write!(f, "dropping({n})"),
            ChannelAst::Sliding(n) => write!(f, "sliding({n})"),
        }
    }
}

impl fmt::Display for ChannelFaultAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ChannelFaultAst::Lossy => "lossy",
            ChannelFaultAst::Duplicating => "duplicating",
            ChannelFaultAst::Reordering => "reordering",
        };
        write!(f, "{text}")
    }
}

impl fmt::Display for SendKindAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            SendKindAst::AsynNonblocking => "asyn_nonblocking",
            SendKindAst::AsynBlocking => "asyn_blocking",
            SendKindAst::AsynChecking => "asyn_checking",
            SendKindAst::SynBlocking => "syn_blocking",
            SendKindAst::SynChecking => "syn_checking",
        };
        write!(f, "{text}")
    }
}

impl fmt::Display for RecvKindAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            if self.blocking {
                "blocking"
            } else {
                "nonblocking"
            }
        )?;
        if self.copy {
            write!(f, " copy")?;
        }
        Ok(())
    }
}

impl ExprAst {
    fn precedence(&self) -> u8 {
        match self {
            ExprAst::Int(_) | ExprAst::Var(..) => 7,
            ExprAst::Unary(..) => 6,
            ExprAst::Binary(op, ..) => match op {
                BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
                BinOp::Add | BinOp::Sub => 4,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
                BinOp::And => 2,
                BinOp::Or => 1,
            },
        }
    }
}

impl fmt::Display for ExprAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Children at equal-or-looser precedence are parenthesized, which
        // is conservative but guarantees a faithful re-parse.
        let child = |f: &mut fmt::Formatter<'_>, parent: &ExprAst, e: &ExprAst| -> fmt::Result {
            if e.precedence() <= parent.precedence()
                && !matches!(e, ExprAst::Int(_) | ExprAst::Var(..))
            {
                write!(f, "({e})")
            } else {
                write!(f, "{e}")
            }
        };
        match self {
            ExprAst::Int(v) => write!(f, "{v}"),
            ExprAst::Var(name, _) => write!(f, "{name}"),
            ExprAst::Unary(op, e) => {
                write!(
                    f,
                    "{}",
                    match op {
                        UnOp::Neg => "-",
                        UnOp::Not => "!",
                    }
                )?;
                child(f, self, e)
            }
            ExprAst::Binary(op, a, b) => {
                let symbol = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                };
                child(f, self, a)?;
                write!(f, " {symbol} ")?;
                child(f, self, b)
            }
        }
    }
}

impl fmt::Display for StmtAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "from {}", self.from)?;
        if let Some(guard) = &self.guard {
            write!(f, " if {guard}")?;
        }
        match &self.action {
            ActionAst::Skip => {}
            ActionAst::Assign(assigns) => {
                write!(f, " do ")?;
                for (i, (name, value)) in assigns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name} = {value}")?;
                }
            }
            ActionAst::Send {
                port,
                data,
                tag,
                status,
            } => {
                write!(f, " send {port}({data}")?;
                if let Some(tag) = tag {
                    write!(f, ", {tag}")?;
                }
                write!(f, ")")?;
                if let Some(status) = status {
                    write!(f, " status {status}")?;
                }
            }
            ActionAst::Receive {
                port,
                selective,
                into,
                status,
                tagvar,
            } => {
                write!(f, " receive {port}")?;
                if let Some(tag) = selective {
                    write!(f, " tag {tag}")?;
                }
                if let Some(into) = into {
                    write!(f, " into {into}")?;
                }
                if let Some(status) = status {
                    write!(f, " status {status}")?;
                }
                if let Some(tagvar) = tagvar {
                    write!(f, " tagvar {tagvar}")?;
                }
            }
            ActionAst::Assert(cond, message) => {
                write!(f, " assert {cond} \"{message}\"")?;
            }
        }
        write!(f, " goto {};", self.goto)
    }
}

impl fmt::Display for SystemAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "system {{")?;
        for (name, init, _) in &self.globals {
            writeln!(f, "    global {name} = {init};")?;
        }
        for conn in &self.connectors {
            writeln!(f, "    connector {} {{", conn.name)?;
            match conn.fault {
                Some(fault) => writeln!(f, "        channel {fault} {};", conn.channel)?,
                None => writeln!(f, "        channel {};", conn.channel)?,
            }
            if !conn.crash_ports.is_empty() {
                writeln!(f, "        faults {{")?;
                for (port, _) in &conn.crash_ports {
                    writeln!(f, "            crash_restart {port};")?;
                }
                writeln!(f, "        }}")?;
            }
            for (port, kind, _) in &conn.sends {
                writeln!(f, "        send {port}: {kind};")?;
            }
            for (port, kind, _) in &conn.recvs {
                writeln!(f, "        recv {port}: {kind};")?;
            }
            writeln!(f, "    }}")?;
        }
        for ev in &self.events {
            writeln!(f, "    event {} {{", ev.name)?;
            writeln!(f, "        capacity {};", ev.capacity)?;
            for (port, kind, _) in &ev.publishers {
                writeln!(f, "        publish {port}: {kind};")?;
            }
            for (port, kind, filter, _) in &ev.subscribers {
                write!(f, "        subscribe {port}: {kind}")?;
                if let Some(tag) = filter {
                    write!(f, " tag {tag}")?;
                }
                writeln!(f, ";")?;
            }
            writeln!(f, "    }}")?;
        }
        for comp in &self.components {
            writeln!(f, "    component {} {{", comp.name)?;
            for (name, init, _) in &comp.vars {
                writeln!(f, "        var {name} = {init};")?;
            }
            if !comp.states.is_empty() {
                let names: Vec<&str> = comp.states.iter().map(|(n, _)| n.as_str()).collect();
                writeln!(f, "        state {};", names.join(", "))?;
            }
            if let Some((init, _)) = &comp.init {
                writeln!(f, "        init {init};")?;
            }
            if !comp.ends.is_empty() {
                let names: Vec<&str> = comp.ends.iter().map(|(n, _)| n.as_str()).collect();
                writeln!(f, "        end {};", names.join(", "))?;
            }
            for stmt in &comp.stmts {
                writeln!(f, "        {stmt}")?;
            }
            writeln!(f, "    }}")?;
        }
        for prop in &self.properties {
            match prop {
                PropertyAst::Invariant { name, expr, .. } => {
                    writeln!(f, "    property {name}: invariant {expr};")?;
                }
                PropertyAst::Ltl {
                    name,
                    formula,
                    bindings,
                    ..
                } => {
                    write!(f, "    property {name}: ltl \"{formula}\"")?;
                    if !bindings.is_empty() {
                        write!(f, " where ")?;
                        for (i, (pname, expr)) in bindings.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{pname} = {expr}")?;
                        }
                    }
                    writeln!(f, ";")?;
                }
                PropertyAst::NoDeadlock { name, .. } => {
                    writeln!(f, "    property {name}: no_deadlock;")?;
                }
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_system;

    /// Canonical form: printing is a fixpoint of parse-then-print.
    #[test]
    fn printing_is_stable_on_the_shipped_specs() {
        for source in [
            include_str!("../../../examples/specs/wire.pnp"),
            include_str!("../../../examples/specs/wire_lossy.pnp"),
            include_str!("../../../examples/specs/bridge_buggy.pnp"),
            include_str!("../../../examples/specs/priority_mail.pnp"),
            include_str!("../../../examples/specs/newswire.pnp"),
        ] {
            let ast = parse_system(source).unwrap();
            let printed = ast.to_string();
            let reparsed = parse_system(&printed)
                .unwrap_or_else(|e| panic!("printed form does not re-parse: {e}\n{printed}"));
            assert_eq!(printed, reparsed.to_string());
        }
    }

    #[test]
    fn printed_expressions_preserve_precedence() {
        let src = r#"system {
            global a = 0; global b = 0; global c = 0;
            component x { state s; end s; }
            property p: invariant a + b * c == 0 || !(a < b && b < c);
        }"#;
        let ast = parse_system(src).unwrap();
        let printed = ast.to_string();
        let reparsed = parse_system(&printed).unwrap();
        assert_eq!(printed, reparsed.to_string());
        assert!(
            printed.contains("a + (b * c)") || printed.contains("a + b * c"),
            "{printed}"
        );
    }
}
