//! Verification of compiled specifications and result reporting.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pnp_kernel::{
    real_fs, BudgetKind, CancelToken, Checker, GenSink, KernelError, LtlOutcome, Predicate,
    Proposition, SafetyChecks, SafetyOutcome, SearchConfig, Snapshot, SnapshotSink, VfsHandle,
};
use pnp_ltl::Ltl;

use crate::compile::ArchSpec;

/// A compiled property, ready to check.
#[derive(Debug, Clone)]
pub enum PropertySpec {
    /// An invariant over globals.
    Invariant {
        /// The property's name.
        name: String,
        /// The compiled predicate.
        predicate: Predicate,
    },
    /// An LTL property with its proposition bindings.
    Ltl {
        /// The property's name.
        name: String,
        /// The parsed formula.
        formula: Ltl,
        /// The bound propositions.
        props: Vec<Proposition>,
    },
    /// Absence of deadlock.
    NoDeadlock {
        /// The property's name.
        name: String,
    },
}

impl PropertySpec {
    /// The property's name.
    pub fn name(&self) -> &str {
        match self {
            PropertySpec::Invariant { name, .. }
            | PropertySpec::Ltl { name, .. }
            | PropertySpec::NoDeadlock { name } => name,
        }
    }
}

/// The verdict for one property of a specification.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// The property's name.
    pub name: String,
    /// Whether the property holds over the full state space. Always
    /// `false` when [`PropertyResult::inconclusive`] is set: a partial
    /// search cannot establish a property.
    pub holds: bool,
    /// `true` when a search budget tripped before the state space was
    /// exhausted: no violation was found in the covered portion, but the
    /// property may still fail in the unexplored part.
    pub inconclusive: bool,
    /// `true` when the property holds *modulo hashing*: the search ran
    /// under a lossy visited-set backend ([`pnp_kernel::VisitedKind`])
    /// whose hash collisions may have hidden part of the state space. The
    /// detail carries the estimated omission probability.
    pub approx: bool,
    /// A one-line summary; for violations, includes the counterexample
    /// rendered at the building-block level.
    pub detail: String,
    /// States explored while checking.
    pub states: usize,
    /// Transitions (edges) explored while checking.
    pub steps: usize,
    /// Deepest level explored (BFS depth for safety searches, product
    /// search depth bookkeeping for LTL).
    pub max_depth: usize,
    /// Estimated peak memory footprint of the search in bytes (see
    /// [`pnp_kernel::SearchStats::approx_memory_bytes`]). Memory pressure
    /// is visible here before it becomes an OOM kill.
    pub memory_bytes: usize,
    /// Largest BFS frontier observed while checking.
    pub peak_frontier: usize,
    /// States written to out-of-core spill storage (zero when the search
    /// stayed in RAM).
    pub spilled_states: usize,
    /// Bytes written to spill storage.
    pub spill_bytes: usize,
    /// Merge-compaction passes over the on-disk visited runs.
    pub merge_passes: usize,
    /// Why the search stopped early, when it did: the tripped budget, or
    /// [`BudgetKind::Cancelled`] for a cancellation. `None` for a search
    /// that ran to completion. Supervisors use this to tell a
    /// client-requested budget trip (deterministic — finish the job as
    /// inconclusive) from an interruption (retry or drain).
    pub stop: Option<BudgetKind>,
}

impl fmt::Display for PropertyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = if self.inconclusive {
            "INCONCLUSIVE"
        } else if self.holds && self.approx {
            "HOLDS (approx)"
        } else if self.holds {
            "HOLDS"
        } else {
            "VIOLATED"
        };
        write!(f, "{:<24} {} ({} states)", self.name, verdict, self.states)
    }
}

/// Builds the checkpoint sink for one safety property, given the
/// checkpoint path. Lets a supervisor wrap the default generation sink
/// (fault injection for tests, instrumentation) without this layer
/// knowing how.
pub type SinkFactory = Arc<dyn Fn(&Path) -> Box<dyn SnapshotSink> + Send + Sync>;

/// Options for a verification run: search limits plus the crash-tolerance
/// machinery (cancellation, checkpointing, resume).
#[derive(Clone, Default)]
pub struct VerifyOptions {
    /// Search budgets, the visited-set backend, and the worker-thread
    /// count: `config.threads > 1` runs each safety search in parallel
    /// and each LTL property through the swarmed CNDFS acceptance-cycle
    /// search (identical verdicts either way; see
    /// [`SearchConfig::threads`]).
    pub config: SearchConfig,
    /// Cooperative cancellation, typically wired to SIGINT. A cancelled
    /// run reports the affected property as inconclusive and — when
    /// checkpointing is on — flushes a final snapshot first.
    pub cancel: Option<CancelToken>,
    /// `(base, every)`: write snapshots of safety searches as
    /// double-buffered generations `base.a`/`base.b` (see
    /// [`pnp_kernel::GenStore`]), flushing every `every` newly discovered
    /// states (`0` = only when a budget trips or the run is cancelled).
    pub checkpoint: Option<(PathBuf, usize)>,
    /// Resume a previously interrupted run. The snapshot applies to the
    /// property whose name matches the snapshot's tag; properties before
    /// it in source order are re-verified from scratch.
    pub resume: Option<Snapshot>,
    /// Replaces the default [`GenSink`] used for
    /// [`VerifyOptions::checkpoint`] with a custom sink built from the
    /// checkpoint base path. `None` → generation sink over
    /// [`VerifyOptions::vfs`].
    pub checkpoint_sink: Option<SinkFactory>,
    /// The filesystem checkpoints go through. `None` → the real
    /// filesystem; tests hand in a [`pnp_kernel::SimFs`] to inject
    /// storage faults into checkpoint flushes.
    pub vfs: Option<VfsHandle>,
    /// Scratch directory for out-of-core search storage (the
    /// `disk`-backed visited set and spilled frontier chunks), accessed
    /// through [`VerifyOptions::vfs`]. `None` → a fresh directory under
    /// the system temp dir when a search actually spills.
    pub spill_dir: Option<PathBuf>,
}

impl fmt::Debug for VerifyOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VerifyOptions")
            .field("config", &self.config)
            .field("cancel", &self.cancel)
            .field("checkpoint", &self.checkpoint)
            .field("resume", &self.resume.as_ref().map(Snapshot::tag))
            .field("checkpoint_sink", &self.checkpoint_sink.is_some())
            .field("vfs", &self.vfs)
            .field("spill_dir", &self.spill_dir)
            .finish()
    }
}

/// An error while verifying a specification (a broken model expression).
#[derive(Debug, Clone)]
pub struct VerifyError(pub KernelError);

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Why a safety search stopped early, if it did.
fn safety_stop(outcome: &SafetyOutcome) -> Option<BudgetKind> {
    match outcome {
        SafetyOutcome::LimitReached { budget, .. } => Some(*budget),
        _ => None,
    }
}

impl ArchSpec {
    /// Checks every declared property, in source order, with default
    /// search limits.
    ///
    /// Invariants and deadlock run the BFS safety search; LTL properties
    /// run the nested-DFS search under weak fairness.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when the model itself fails to evaluate.
    pub fn verify_all(&self) -> Result<Vec<PropertyResult>, VerifyError> {
        self.verify_all_with_config(SearchConfig::default())
    }

    /// Checks every declared property under explicit search limits.
    ///
    /// A tripped budget (`max_states`, `max_time`, `max_depth`,
    /// `max_memory_bytes`) degrades gracefully into an *inconclusive*
    /// [`PropertyResult`] carrying the partial coverage, never a panic.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when the model itself fails to evaluate.
    pub fn verify_all_with_config(
        &self,
        config: SearchConfig,
    ) -> Result<Vec<PropertyResult>, VerifyError> {
        self.verify_all_with_options(&VerifyOptions {
            config,
            ..VerifyOptions::default()
        })
    }

    /// Checks every declared property with full crash tolerance: optional
    /// cancellation, checkpointing of safety searches, and resume from a
    /// snapshot (see [`VerifyOptions`]).
    ///
    /// LTL properties run the nested-DFS search (swarmed across workers
    /// when `config.threads > 1`), which supports cancellation but not
    /// checkpoint/resume; a resume snapshot tagged with an LTL property's
    /// name is ignored. When the parallel search cannot certify its own
    /// answer it silently re-runs sequentially and the property's detail
    /// line records why.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when the model itself fails to evaluate,
    /// when a checkpoint cannot be written, or when the resume snapshot
    /// belongs to a different system.
    pub fn verify_all_with_options(
        &self,
        options: &VerifyOptions,
    ) -> Result<Vec<PropertyResult>, VerifyError> {
        let program = self.system().program();
        // Each safety property gets its own checker so the resume snapshot
        // and the checkpoint tag bind to the right property.
        let safety_checker = |name: &str| -> Result<Checker<'_>, VerifyError> {
            let mut checker = match &options.resume {
                Some(snapshot) if snapshot.tag() == name => {
                    Checker::resume_from(program, snapshot.clone())
                        .map_err(|error| {
                            VerifyError(KernelError::Snapshot {
                                message: error.to_string(),
                            })
                        })?
                        .with_search_config(options.config)
                }
                _ => Checker::with_config(program, options.config),
            };
            if let Some(cancel) = &options.cancel {
                checker = checker.with_cancellation(cancel.clone());
            }
            if let Some((path, every)) = &options.checkpoint {
                let sink: Box<dyn SnapshotSink> = match &options.checkpoint_sink {
                    Some(factory) => factory(path),
                    None => {
                        let vfs = options.vfs.clone().unwrap_or_else(real_fs);
                        Box::new(GenSink::new(vfs, path))
                    }
                };
                checker = checker
                    .checkpoint_to(sink)
                    .checkpoint_every(*every)
                    .checkpoint_tag(name);
            }
            if let Some(dir) = &options.spill_dir {
                let vfs = options.vfs.clone().unwrap_or_else(real_fs);
                checker = checker.spill_to(vfs, dir.clone());
            }
            Ok(checker)
        };
        let mut results = Vec::new();
        for prop in self.properties() {
            let result = match prop {
                PropertySpec::Invariant { name, predicate } => {
                    let report = safety_checker(name)?
                        .check_safety(&SafetyChecks {
                            deadlock: false,
                            invariants: vec![(name.clone(), predicate.clone())],
                        })
                        .map_err(VerifyError)?;
                    let (holds, inconclusive, detail) =
                        self.safety_verdict(&report.outcome, "invariant holds");
                    PropertyResult {
                        name: name.clone(),
                        holds,
                        inconclusive,
                        approx: matches!(report.outcome, SafetyOutcome::HoldsApprox { .. }),
                        detail,
                        states: report.stats.unique_states,
                        steps: report.stats.steps,
                        max_depth: report.stats.max_depth,
                        memory_bytes: report.stats.approx_memory_bytes,
                        peak_frontier: report.stats.peak_frontier,
                        spilled_states: report.stats.spilled_states,
                        spill_bytes: report.stats.spill_bytes,
                        merge_passes: report.stats.merge_passes,
                        stop: safety_stop(&report.outcome),
                    }
                }
                PropertySpec::NoDeadlock { name } => {
                    let report = safety_checker(name)?
                        .check_safety(&SafetyChecks::deadlock_only())
                        .map_err(VerifyError)?;
                    let (holds, inconclusive, detail) =
                        self.safety_verdict(&report.outcome, "no deadlock");
                    PropertyResult {
                        name: name.clone(),
                        holds,
                        inconclusive,
                        approx: matches!(report.outcome, SafetyOutcome::HoldsApprox { .. }),
                        detail,
                        states: report.stats.unique_states,
                        steps: report.stats.steps,
                        max_depth: report.stats.max_depth,
                        memory_bytes: report.stats.approx_memory_bytes,
                        peak_frontier: report.stats.peak_frontier,
                        spilled_states: report.stats.spilled_states,
                        spill_bytes: report.stats.spill_bytes,
                        merge_passes: report.stats.merge_passes,
                        stop: safety_stop(&report.outcome),
                    }
                }
                PropertySpec::Ltl {
                    name,
                    formula,
                    props,
                } => {
                    let mut checker = Checker::with_config(program, options.config);
                    if let Some(cancel) = &options.cancel {
                        checker = checker.with_cancellation(cancel.clone());
                    }
                    let report = checker.check_ltl(formula, props).map_err(VerifyError)?;
                    // A truncated product search that found no acceptance
                    // cycle is NOT a proof: report it inconclusive. A
                    // violation found within the budget is still a real
                    // violation.
                    let (holds, inconclusive, mut detail) = match report.outcome {
                        LtlOutcome::Holds if report.truncated => (
                            false,
                            true,
                            format!(
                                "inconclusive: state budget tripped after {} product \
                                 states; no acceptance cycle found in the covered \
                                 portion",
                                report.stats.unique_states
                            ),
                        ),
                        LtlOutcome::Holds => (
                            true,
                            false,
                            "LTL property holds (weak fairness)".to_string(),
                        ),
                        LtlOutcome::Violated { prefix, cycle } => (
                            false,
                            false,
                            format!(
                                "violated by a lasso ({}-step prefix, {}-step cycle):\n{}  -- cycle --\n{}",
                                prefix.len(),
                                cycle.len(),
                                self.system().explain_trace(&prefix),
                                self.system().explain_trace(&cycle)
                            ),
                        ),
                    };
                    if let Some(reason) = report.fallback {
                        detail.push_str(&format!(
                            " [parallel search fell back to sequential: {reason}]"
                        ));
                    }
                    // The product search truncates for exactly two
                    // reasons: the state budget, or a cancellation
                    // observed through the shared token.
                    let stop = if report.truncated {
                        if options.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                            Some(BudgetKind::Cancelled)
                        } else {
                            Some(BudgetKind::States)
                        }
                    } else {
                        None
                    };
                    PropertyResult {
                        name: name.clone(),
                        holds,
                        inconclusive,
                        approx: false,
                        detail,
                        states: report.stats.unique_states,
                        steps: report.stats.steps,
                        max_depth: report.stats.max_depth,
                        memory_bytes: report.stats.approx_memory_bytes,
                        peak_frontier: report.stats.peak_frontier,
                        spilled_states: report.stats.spilled_states,
                        spill_bytes: report.stats.spill_bytes,
                        merge_passes: report.stats.merge_passes,
                        stop,
                    }
                }
            };
            results.push(result);
        }
        Ok(results)
    }

    /// Renders a safety outcome as `(holds, inconclusive, detail)`.
    fn safety_verdict(&self, outcome: &SafetyOutcome, holds_detail: &str) -> (bool, bool, String) {
        match outcome {
            SafetyOutcome::Holds => (true, false, holds_detail.to_string()),
            SafetyOutcome::HoldsApprox {
                hash_mode,
                states_visited,
                omission_probability,
            } => (
                true,
                false,
                format!(
                    "{holds_detail} modulo hashing: {states_visited} states visited \
                     under {hash_mode}; estimated per-state omission probability \
                     ≈ {omission_probability:.2e}"
                ),
            ),
            SafetyOutcome::InvariantViolated { trace, .. } => (
                false,
                false,
                format!(
                    "invariant violated after {} steps:\n{}",
                    trace.len(),
                    self.system().explain_trace(trace)
                ),
            ),
            SafetyOutcome::AssertionFailed { message, trace } => (
                false,
                false,
                format!(
                    "assertion '{message}' failed after {} steps:\n{}",
                    trace.len(),
                    self.system().explain_trace(trace)
                ),
            ),
            SafetyOutcome::Deadlock { trace } => (
                false,
                false,
                format!(
                    "deadlock after {} steps:\n{}",
                    trace.len(),
                    self.system().explain_trace(trace)
                ),
            ),
            SafetyOutcome::LimitReached {
                budget,
                states_covered,
                frontier,
            } => (
                false,
                true,
                format!(
                    "inconclusive: {budget} tripped after {states_covered} states \
                     ({frontier} frontier states unexpanded); no violation found in \
                     the covered portion"
                ),
            ),
            SafetyOutcome::PredicateError {
                name,
                message,
                trace,
            } => (
                false,
                false,
                format!(
                    "predicate '{name}' failed to evaluate ('{message}') after {} steps:\n{}",
                    trace.len(),
                    self.system().explain_trace(trace)
                ),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const COUNTER_SPEC: &str = r#"system {
        global x = 0;
        component c {
            state a, b;
            end b;
            from a do x = 1 goto b;
        }
        property stays_small: invariant x <= 1;
        property reaches_one: ltl "<> one" where one = x == 1;
        property live: no_deadlock;
        property wrong: invariant x == 0;
    }"#;

    #[test]
    fn verify_all_reports_every_property() {
        let spec = compile(COUNTER_SPEC).unwrap();
        let results = spec.verify_all().unwrap();
        assert_eq!(results.len(), 4);
        assert!(results[0].holds);
        assert!(results[1].holds);
        assert!(results[2].holds);
        assert!(!results[3].holds);
        assert!(!results.iter().any(|r| r.inconclusive));
        assert!(
            results[3].detail.contains("component c"),
            "{}",
            results[3].detail
        );
    }

    #[test]
    fn exhausted_budget_reports_inconclusive_not_a_panic() {
        let spec = compile(COUNTER_SPEC).unwrap();
        let config = SearchConfig {
            max_states: 1,
            ..SearchConfig::default()
        };
        let results = spec.verify_all_with_config(config).unwrap();
        // Safety properties trip the one-state budget; their verdicts are
        // inconclusive (not violations) and carry the partial coverage.
        let stays_small = &results[0];
        assert!(stays_small.inconclusive, "{stays_small:?}");
        assert!(!stays_small.holds);
        assert!(
            stays_small.detail.contains("state budget"),
            "{}",
            stays_small.detail
        );
        assert!(stays_small.to_string().contains("INCONCLUSIVE"));
        // The LTL search truncates too: a no-cycle-found verdict from a
        // partial product search must not be reported as a proof.
        let reaches_one = &results[1];
        assert!(reaches_one.inconclusive, "{reaches_one:?}");
        assert!(!reaches_one.holds);
    }
}
