//! Verification of compiled specifications and result reporting.

use std::fmt;

use pnp_kernel::{
    Checker, KernelError, LtlOutcome, Predicate, Proposition, SafetyChecks, SafetyOutcome,
};
use pnp_ltl::Ltl;

use crate::compile::ArchSpec;

/// A compiled property, ready to check.
#[derive(Debug, Clone)]
pub enum PropertySpec {
    /// An invariant over globals.
    Invariant {
        /// The property's name.
        name: String,
        /// The compiled predicate.
        predicate: Predicate,
    },
    /// An LTL property with its proposition bindings.
    Ltl {
        /// The property's name.
        name: String,
        /// The parsed formula.
        formula: Ltl,
        /// The bound propositions.
        props: Vec<Proposition>,
    },
    /// Absence of deadlock.
    NoDeadlock {
        /// The property's name.
        name: String,
    },
}

impl PropertySpec {
    /// The property's name.
    pub fn name(&self) -> &str {
        match self {
            PropertySpec::Invariant { name, .. }
            | PropertySpec::Ltl { name, .. }
            | PropertySpec::NoDeadlock { name } => name,
        }
    }
}

/// The verdict for one property of a specification.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// The property's name.
    pub name: String,
    /// Whether the property holds over the full state space.
    pub holds: bool,
    /// A one-line summary; for violations, includes the counterexample
    /// rendered at the building-block level.
    pub detail: String,
    /// States explored while checking.
    pub states: usize,
}

impl fmt::Display for PropertyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} {} ({} states)",
            self.name,
            if self.holds { "HOLDS" } else { "VIOLATED" },
            self.states
        )
    }
}

/// An error while verifying a specification (a broken model expression).
#[derive(Debug, Clone)]
pub struct VerifyError(pub KernelError);

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

impl ArchSpec {
    /// Checks every declared property, in source order.
    ///
    /// Invariants and deadlock run the BFS safety search; LTL properties
    /// run the nested-DFS search under weak fairness.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when the model itself fails to evaluate.
    pub fn verify_all(&self) -> Result<Vec<PropertyResult>, VerifyError> {
        let program = self.system().program();
        let checker = Checker::new(program);
        let mut results = Vec::new();
        for prop in self.properties() {
            let result = match prop {
                PropertySpec::Invariant { name, predicate } => {
                    let report = checker
                        .check_safety(&SafetyChecks {
                            deadlock: false,
                            invariants: vec![(name.clone(), predicate.clone())],
                        })
                        .map_err(VerifyError)?;
                    let (holds, detail) = match report.outcome {
                        SafetyOutcome::Holds => (true, "invariant holds".to_string()),
                        SafetyOutcome::InvariantViolated { trace, .. } => (
                            false,
                            format!(
                                "invariant violated after {} steps:\n{}",
                                trace.len(),
                                self.system().explain_trace(&trace)
                            ),
                        ),
                        SafetyOutcome::AssertionFailed { message, trace } => (
                            false,
                            format!(
                                "assertion '{message}' failed after {} steps:\n{}",
                                trace.len(),
                                self.system().explain_trace(&trace)
                            ),
                        ),
                        SafetyOutcome::Deadlock { trace } => (
                            false,
                            format!(
                                "deadlock after {} steps:\n{}",
                                trace.len(),
                                self.system().explain_trace(&trace)
                            ),
                        ),
                    };
                    PropertyResult {
                        name: name.clone(),
                        holds,
                        detail,
                        states: report.stats.unique_states,
                    }
                }
                PropertySpec::NoDeadlock { name } => {
                    let report = checker
                        .check_safety(&SafetyChecks::deadlock_only())
                        .map_err(VerifyError)?;
                    let (holds, detail) = match report.outcome {
                        SafetyOutcome::Holds => (true, "no deadlock".to_string()),
                        SafetyOutcome::Deadlock { trace } => (
                            false,
                            format!(
                                "deadlock after {} steps:\n{}",
                                trace.len(),
                                self.system().explain_trace(&trace)
                            ),
                        ),
                        SafetyOutcome::AssertionFailed { message, trace } => (
                            false,
                            format!(
                                "assertion '{message}' failed after {} steps:\n{}",
                                trace.len(),
                                self.system().explain_trace(&trace)
                            ),
                        ),
                        other => (false, format!("{other:?}")),
                    };
                    PropertyResult {
                        name: name.clone(),
                        holds,
                        detail,
                        states: report.stats.unique_states,
                    }
                }
                PropertySpec::Ltl {
                    name,
                    formula,
                    props,
                } => {
                    let report = checker.check_ltl(formula, props).map_err(VerifyError)?;
                    let (holds, detail) = match report.outcome {
                        LtlOutcome::Holds => {
                            (true, "LTL property holds (weak fairness)".to_string())
                        }
                        LtlOutcome::Violated { prefix, cycle } => (
                            false,
                            format!(
                                "violated by a lasso ({}-step prefix, {}-step cycle):\n{}  -- cycle --\n{}",
                                prefix.len(),
                                cycle.len(),
                                self.system().explain_trace(&prefix),
                                self.system().explain_trace(&cycle)
                            ),
                        ),
                    };
                    PropertyResult {
                        name: name.clone(),
                        holds,
                        detail,
                        states: report.stats.unique_states,
                    }
                }
            };
            results.push(result);
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;

    #[test]
    fn verify_all_reports_every_property() {
        let spec = compile(
            r#"system {
                global x = 0;
                component c {
                    state a, b;
                    end b;
                    from a do x = 1 goto b;
                }
                property stays_small: invariant x <= 1;
                property reaches_one: ltl "<> one" where one = x == 1;
                property live: no_deadlock;
                property wrong: invariant x == 0;
            }"#,
        )
        .unwrap();
        let results = spec.verify_all().unwrap();
        assert_eq!(results.len(), 4);
        assert!(results[0].holds);
        assert!(results[1].holds);
        assert!(results[2].holds);
        assert!(!results[3].holds);
        assert!(results[3].detail.contains("component c"), "{}", results[3].detail);
    }
}
