//! Abstract syntax tree of the architecture-description language.

use crate::Pos;

/// A parsed `system { ... }` specification.
#[derive(Debug, Clone)]
pub struct SystemAst {
    /// `global NAME = INT;` declarations.
    pub globals: Vec<(String, i32, Pos)>,
    /// Connector declarations.
    pub connectors: Vec<ConnectorAst>,
    /// Event (publish/subscribe) connectors.
    pub events: Vec<EventAst>,
    /// Component declarations.
    pub components: Vec<ComponentAst>,
    /// Property declarations.
    pub properties: Vec<PropertyAst>,
}

/// A `connector NAME { channel ...; send ...; recv ...; }` declaration.
#[derive(Debug, Clone)]
pub struct ConnectorAst {
    /// The connector's name.
    pub name: String,
    /// The channel kind.
    pub channel: ChannelAst,
    /// Optional fault decorator on the channel
    /// (`channel lossy fifo(3);`).
    pub fault: Option<ChannelFaultAst>,
    /// Ports converted to crash-restart fault variants by a
    /// `faults { crash_restart PORT; ... }` block.
    pub crash_ports: Vec<(String, Pos)>,
    /// Named send ports: `(port name, kind)`.
    pub sends: Vec<(String, SendKindAst, Pos)>,
    /// Named receive ports: `(port name, kind)`.
    pub recvs: Vec<(String, RecvKindAst, Pos)>,
    /// Source position.
    pub pos: Pos,
}

/// An `event NAME { capacity N; publish ...; subscribe ...; }` declaration.
#[derive(Debug, Clone)]
pub struct EventAst {
    /// The event connector's name.
    pub name: String,
    /// Per-subscription queue capacity.
    pub capacity: usize,
    /// Named publisher ports.
    pub publishers: Vec<(String, SendKindAst, Pos)>,
    /// Named subscriber ports with an optional tag filter.
    pub subscribers: Vec<(String, RecvKindAst, Option<i32>, Pos)>,
    /// Source position.
    pub pos: Pos,
}

/// A channel kind in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelAst {
    /// `single_slot`
    SingleSlot,
    /// `fifo(N)`
    Fifo(usize),
    /// `priority(N)`
    Priority(usize),
    /// `dropping(N)`
    Dropping(usize),
    /// `sliding(N)`
    Sliding(usize),
}

/// A channel fault decorator in the surface syntax
/// (`channel lossy fifo(3);`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFaultAst {
    /// `lossy` — the channel may lose a message in transit (reported as an
    /// input failure to the send port).
    Lossy,
    /// `duplicating` — the channel may store a message twice.
    Duplicating,
    /// `reordering` — delivery may take any matching buffered message.
    Reordering,
}

/// A send-port kind in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendKindAst {
    /// `asyn_nonblocking`
    AsynNonblocking,
    /// `asyn_blocking`
    AsynBlocking,
    /// `asyn_checking`
    AsynChecking,
    /// `syn_blocking`
    SynBlocking,
    /// `syn_checking`
    SynChecking,
}

/// A receive-port kind in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvKindAst {
    /// `blocking` vs `nonblocking`.
    pub blocking: bool,
    /// With the `copy` modifier, delivery leaves the message buffered.
    pub copy: bool,
}

/// A `component NAME { ... }` declaration.
#[derive(Debug, Clone)]
pub struct ComponentAst {
    /// The component's name.
    pub name: String,
    /// `var NAME = INT;` locals.
    pub vars: Vec<(String, i32, Pos)>,
    /// `state a, b, c;` control locations (first is initial unless `init`).
    pub states: Vec<(String, Pos)>,
    /// `init NAME;` override.
    pub init: Option<(String, Pos)>,
    /// `end NAME, NAME;` end locations.
    pub ends: Vec<(String, Pos)>,
    /// Transitions.
    pub stmts: Vec<StmtAst>,
    /// Source position.
    pub pos: Pos,
}

/// One `from S ... goto T;` transition.
#[derive(Debug, Clone)]
pub struct StmtAst {
    /// Source state name.
    pub from: String,
    /// Optional `if EXPR` guard.
    pub guard: Option<ExprAst>,
    /// The action.
    pub action: ActionAst,
    /// Target state name.
    pub goto: String,
    /// Source position.
    pub pos: Pos,
}

/// The action of a transition.
#[derive(Debug, Clone)]
pub enum ActionAst {
    /// No effect (`from S goto T;` or guard-only).
    Skip,
    /// `do NAME = EXPR, NAME = EXPR`
    Assign(Vec<(String, ExprAst)>),
    /// `send PORT(DATA)` or `send PORT(DATA, TAG)`, optional `status VAR`.
    Send {
        /// The port name.
        port: String,
        /// Payload expression.
        data: ExprAst,
        /// Tag expression (defaults to 0).
        tag: Option<ExprAst>,
        /// Optional local receiving the `SendStatus`.
        status: Option<String>,
    },
    /// `receive PORT [tag EXPR] [into VAR] [status VAR] [tagvar VAR]`
    Receive {
        /// The port name.
        port: String,
        /// Selective-receive tag.
        selective: Option<ExprAst>,
        /// Local receiving the payload.
        into: Option<String>,
        /// Local receiving the `RecvStatus`.
        status: Option<String>,
        /// Local receiving the message tag.
        tagvar: Option<String>,
    },
    /// `assert EXPR "message"`
    Assert(ExprAst, String),
}

/// An expression in the surface syntax.
#[derive(Debug, Clone)]
pub enum ExprAst {
    /// Integer literal.
    Int(i32),
    /// A variable reference (resolved to a component local or a global).
    Var(String, Pos),
    /// Unary operator.
    Unary(UnOp, Box<ExprAst>),
    /// Binary operator.
    Binary(BinOp, Box<ExprAst>, Box<ExprAst>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-e`
    Neg,
    /// `!e`
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// A `property NAME: ...;` declaration.
#[derive(Debug, Clone)]
pub enum PropertyAst {
    /// `property NAME: invariant EXPR;` (over globals).
    Invariant {
        /// The property's name.
        name: String,
        /// The invariant expression.
        expr: ExprAst,
        /// Source position.
        pos: Pos,
    },
    /// `property NAME: ltl "FORMULA" where p = EXPR, q = EXPR;`
    Ltl {
        /// The property's name.
        name: String,
        /// The LTL formula text (SPIN-like syntax).
        formula: String,
        /// Proposition bindings (over globals).
        bindings: Vec<(String, ExprAst)>,
        /// Source position.
        pos: Pos,
    },
    /// `property NAME: no_deadlock;`
    NoDeadlock {
        /// The property's name.
        name: String,
        /// Source position.
        pos: Pos,
    },
}

impl PropertyAst {
    /// The property's name.
    pub fn name(&self) -> &str {
        match self {
            PropertyAst::Invariant { name, .. }
            | PropertyAst::Ltl { name, .. }
            | PropertyAst::NoDeadlock { name, .. } => name,
        }
    }
}
