//! Tokenizer for the architecture-description language.

use crate::{LangError, Pos};

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i32),
    Str(String),
    // Punctuation.
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Semi,
    Colon,
    Assign,
    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
}

#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub tok: Tok,
    pub pos: Pos,
}

pub(crate) fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            tokens.push(Token {
                tok: $tok,
                pos: Pos { line, col },
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            ',' => push!(Tok::Comma, 1),
            ';' => push!(Tok::Semi, 1),
            ':' => push!(Tok::Colon, 1),
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            '*' => push!(Tok::Star, 1),
            '%' => push!(Tok::Percent, 1),
            '/' => push!(Tok::Slash, 1),
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::EqEq, 2)
                } else {
                    push!(Tok::Assign, 1)
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::NotEq, 2)
                } else {
                    push!(Tok::Bang, 1)
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Le, 2)
                } else {
                    push!(Tok::Lt, 1)
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ge, 2)
                } else {
                    push!(Tok::Gt, 1)
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    push!(Tok::AndAnd, 2)
                } else {
                    return Err(LangError::new("expected '&&'", Pos { line, col }));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    push!(Tok::OrOr, 2)
                } else {
                    return Err(LangError::new("expected '||'", Pos { line, col }));
                }
            }
            '"' => {
                let start = i + 1;
                let start_col = col;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\n' {
                    j += 1;
                }
                if bytes.get(j) != Some(&b'"') {
                    return Err(LangError::new(
                        "unterminated string literal",
                        Pos { line, col },
                    ));
                }
                let text = source[start..j].to_string();
                tokens.push(Token {
                    tok: Tok::Str(text),
                    pos: Pos {
                        line,
                        col: start_col,
                    },
                });
                col += (j + 1 - i) as u32;
                i = j + 1;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let start_col = col;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
                let text = &source[start..i];
                let value: i32 = text.parse().map_err(|_| {
                    LangError::new(
                        format!("integer literal '{text}' out of range"),
                        Pos {
                            line,
                            col: start_col,
                        },
                    )
                })?;
                tokens.push(Token {
                    tok: Tok::Int(value),
                    pos: Pos {
                        line,
                        col: start_col,
                    },
                });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let start_col = col;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                    col += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(source[start..i].to_string()),
                    pos: Pos {
                        line,
                        col: start_col,
                    },
                });
            }
            _ => {
                return Err(LangError::new(
                    format!("unexpected character '{c}'"),
                    Pos { line, col },
                ))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_punctuation_and_operators() {
        assert_eq!(
            kinds("{ } ( ) , ; : = == != < <= > >= && || ! + - * / %"),
            vec![
                Tok::LBrace,
                Tok::RBrace,
                Tok::LParen,
                Tok::RParen,
                Tok::Comma,
                Tok::Semi,
                Tok::Colon,
                Tok::Assign,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Bang,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
            ]
        );
    }

    #[test]
    fn lexes_identifiers_numbers_and_strings() {
        assert_eq!(
            kinds(r#"hello_1 42 "a formula""#),
            vec![
                Tok::Ident("hello_1".into()),
                Tok::Int(42),
                Tok::Str("a formula".into()),
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(
            kinds("a // comment\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn tracks_positions() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn reports_bad_characters_with_position() {
        let err = lex("a\n @").unwrap_err();
        assert_eq!(err.pos(), Pos { line: 2, col: 2 });
    }

    #[test]
    fn reports_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn rejects_out_of_range_int() {
        assert!(lex("99999999999").is_err());
    }
}
