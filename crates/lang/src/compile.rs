//! Compilation of the AST onto the PnP core builder.

use std::collections::HashMap;

use pnp_core::{
    ChannelFault, ChannelKind, ComponentBuilder, EventChannelSpec, ReceiveBinds, RecvAttachment,
    RecvMode, RecvPortKind, SendAttachment, SendPortKind, Subscription, System, SystemBuilder,
};
use pnp_kernel::{expr, Action, Expr, GlobalId, Guard, LocalId, Predicate, Proposition};

use crate::ast::*;
use crate::parser::parse_system;
use crate::report::PropertySpec;
use crate::{LangError, Pos};

/// A compiled specification: the assembled system and its properties.
#[derive(Debug, Clone)]
pub struct ArchSpec {
    system: System,
    properties: Vec<PropertySpec>,
}

impl ArchSpec {
    /// The assembled system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// The declared properties, in source order.
    pub fn properties(&self) -> &[PropertySpec] {
        &self.properties
    }
}

/// Parses and compiles a specification.
///
/// # Errors
///
/// Returns a [`LangError`] for syntax errors, unresolved names, port-usage
/// violations, or a system that fails to assemble.
pub fn compile(source: &str) -> Result<ArchSpec, LangError> {
    compile_ast(&parse_system(source)?)
}

/// Compiles an already-parsed specification.
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_ast(ast: &SystemAst) -> Result<ArchSpec, LangError> {
    Compiler::new(ast)?.run()
}

fn channel_kind(ast: ChannelAst) -> ChannelKind {
    match ast {
        ChannelAst::SingleSlot => ChannelKind::SingleSlot,
        ChannelAst::Fifo(capacity) => ChannelKind::Fifo { capacity },
        ChannelAst::Priority(capacity) => ChannelKind::Priority { capacity },
        ChannelAst::Dropping(capacity) => ChannelKind::Dropping { capacity },
        ChannelAst::Sliding(capacity) => ChannelKind::Sliding { capacity },
    }
}

fn channel_fault(ast: ChannelFaultAst) -> ChannelFault {
    match ast {
        ChannelFaultAst::Lossy => ChannelFault::Lossy,
        ChannelFaultAst::Duplicating => ChannelFault::Duplicating,
        ChannelFaultAst::Reordering => ChannelFault::Reordering,
    }
}

fn send_kind(ast: SendKindAst) -> SendPortKind {
    match ast {
        SendKindAst::AsynNonblocking => SendPortKind::AsynNonblocking,
        SendKindAst::AsynBlocking => SendPortKind::AsynBlocking,
        SendKindAst::AsynChecking => SendPortKind::AsynChecking,
        SendKindAst::SynBlocking => SendPortKind::SynBlocking,
        SendKindAst::SynChecking => SendPortKind::SynChecking,
    }
}

fn recv_kind(ast: RecvKindAst) -> RecvPortKind {
    let base = if ast.blocking {
        RecvPortKind::blocking()
    } else {
        RecvPortKind::nonblocking()
    };
    if ast.copy {
        base.with_mode(RecvMode::Copy)
    } else {
        base
    }
}

struct Compiler<'a> {
    ast: &'a SystemAst,
    sys: SystemBuilder,
    globals: HashMap<String, GlobalId>,
    send_ports: HashMap<String, (SendAttachment, Option<String>)>,
    recv_ports: HashMap<String, (RecvAttachment, Option<String>)>,
}

impl<'a> Compiler<'a> {
    fn new(ast: &'a SystemAst) -> Result<Compiler<'a>, LangError> {
        let mut sys = SystemBuilder::new();
        let mut globals = HashMap::new();
        for (name, init, pos) in &ast.globals {
            if globals.contains_key(name) {
                return Err(LangError::new(format!("duplicate global '{name}'"), *pos));
            }
            globals.insert(name.clone(), sys.global(name.clone(), *init));
        }

        let mut send_ports = HashMap::new();
        let mut recv_ports = HashMap::new();
        let mut register_send = |name: &str, att: SendAttachment, pos: Pos| {
            if send_ports.contains_key(name) {
                return Err(LangError::new(format!("duplicate port '{name}'"), pos));
            }
            send_ports.insert(name.to_string(), (att, None));
            Ok(())
        };
        for conn in &ast.connectors {
            let mut kind = channel_kind(conn.channel);
            if let Some(fault) = conn.fault {
                kind = ChannelKind::with_fault(channel_fault(fault), kind);
            }
            let id = sys.connector(conn.name.clone(), kind);
            let crashes = |pname: &str| conn.crash_ports.iter().any(|(p, _)| p == pname);
            for (pname, kind, pos) in &conn.sends {
                let kind = if crashes(pname) {
                    // The faults block overrides the declared kind: the
                    // crash-restart send is its own (checking) variant.
                    SendPortKind::CrashRestart
                } else {
                    send_kind(*kind)
                };
                let att = sys.send_port(id, kind);
                register_send(pname, att, *pos)?;
            }
            for (pname, kind, pos) in &conn.recvs {
                if recv_ports.contains_key(pname) {
                    return Err(LangError::new(format!("duplicate port '{pname}'"), *pos));
                }
                let mut kind = recv_kind(*kind);
                if crashes(pname) {
                    kind = kind.with_crash_restart();
                }
                let att = sys.recv_port(id, kind);
                recv_ports.insert(pname.clone(), (att, None));
            }
            for (pname, pos) in &conn.crash_ports {
                let known = conn.sends.iter().any(|(p, _, _)| p == pname)
                    || conn.recvs.iter().any(|(p, _, _)| p == pname);
                if !known {
                    return Err(LangError::new(
                        format!(
                            "faults block names unknown port '{pname}' (not a send or recv \
                             port of connector '{}')",
                            conn.name
                        ),
                        *pos,
                    ));
                }
            }
        }
        for ev in &ast.events {
            let id = sys.event_connector(
                ev.name.clone(),
                EventChannelSpec {
                    per_subscription_capacity: ev.capacity,
                },
            );
            for (pname, kind, pos) in &ev.publishers {
                let att = sys.publisher(id, send_kind(*kind));
                register_send(pname, att, *pos)?;
            }
            for (pname, kind, filter, pos) in &ev.subscribers {
                if recv_ports.contains_key(pname) {
                    return Err(LangError::new(format!("duplicate port '{pname}'"), *pos));
                }
                let subscription = match filter {
                    Some(tag) => Subscription::to_tag(*tag),
                    None => Subscription::all(),
                };
                let att = sys.subscriber(id, recv_kind(*kind), subscription);
                recv_ports.insert(pname.clone(), (att, None));
            }
        }

        Ok(Compiler {
            ast,
            sys,
            globals,
            send_ports,
            recv_ports,
        })
    }

    fn run(mut self) -> Result<ArchSpec, LangError> {
        for comp in &self.ast.components {
            let built = self.component(comp)?;
            self.sys.add_component(built);
        }
        let mut properties = Vec::new();
        for prop in &self.ast.properties {
            properties.push(self.property(prop)?);
        }
        let system = self.sys.build().map_err(|e| {
            LangError::new(
                format!("system assembly failed: {e}"),
                Pos { line: 1, col: 1 },
            )
        })?;
        Ok(ArchSpec { system, properties })
    }

    /// Compiles an expression; locals shadow globals.
    fn expr(
        &self,
        ast: &ExprAst,
        locals: Option<&HashMap<String, LocalId>>,
    ) -> Result<Expr, LangError> {
        Ok(match ast {
            ExprAst::Int(v) => (*v).into(),
            ExprAst::Var(name, pos) => {
                if let Some(locals) = locals {
                    if let Some(&id) = locals.get(name) {
                        return Ok(expr::local(id));
                    }
                }
                match self.globals.get(name) {
                    Some(&id) => expr::global(id),
                    None => {
                        let scope = if locals.is_some() {
                            "variable or global"
                        } else {
                            "global (properties may only read globals)"
                        };
                        return Err(LangError::new(format!("unknown {scope} '{name}'"), *pos));
                    }
                }
            }
            ExprAst::Unary(op, inner) => {
                let inner = self.expr(inner, locals)?;
                match op {
                    UnOp::Neg => -inner,
                    UnOp::Not => expr::not(inner),
                }
            }
            ExprAst::Binary(op, a, b) => {
                let a = self.expr(a, locals)?;
                let b = self.expr(b, locals)?;
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => expr::div(a, b),
                    BinOp::Rem => expr::rem(a, b),
                    BinOp::Eq => expr::eq(a, b),
                    BinOp::Ne => expr::ne(a, b),
                    BinOp::Lt => expr::lt(a, b),
                    BinOp::Le => expr::le(a, b),
                    BinOp::Gt => expr::gt(a, b),
                    BinOp::Ge => expr::ge(a, b),
                    BinOp::And => expr::and(a, b),
                    BinOp::Or => expr::or(a, b),
                }
            }
        })
    }

    /// Resolves an assignment target: local first, then global.
    fn lvalue(
        &self,
        name: &str,
        pos: Pos,
        locals: &HashMap<String, LocalId>,
    ) -> Result<pnp_kernel::LValue, LangError> {
        if let Some(&id) = locals.get(name) {
            return Ok(id.into());
        }
        match self.globals.get(name) {
            Some(&id) => Ok(id.into()),
            None => Err(LangError::new(
                format!("unknown variable or global '{name}'"),
                pos,
            )),
        }
    }

    fn claim_send_port(
        &mut self,
        port: &str,
        component: &str,
        pos: Pos,
    ) -> Result<SendAttachment, LangError> {
        match self.send_ports.get_mut(port) {
            None => Err(LangError::new(format!("unknown send port '{port}'"), pos)),
            Some((att, owner)) => match owner {
                Some(existing) if existing != component => Err(LangError::new(
                    format!("send port '{port}' is already used by component '{existing}'"),
                    pos,
                )),
                _ => {
                    *owner = Some(component.to_string());
                    Ok(att.clone())
                }
            },
        }
    }

    fn claim_recv_port(
        &mut self,
        port: &str,
        component: &str,
        pos: Pos,
    ) -> Result<RecvAttachment, LangError> {
        match self.recv_ports.get_mut(port) {
            None => Err(LangError::new(
                format!("unknown receive port '{port}'"),
                pos,
            )),
            Some((att, owner)) => match owner {
                Some(existing) if existing != component => Err(LangError::new(
                    format!("receive port '{port}' is already used by component '{existing}'"),
                    pos,
                )),
                _ => {
                    *owner = Some(component.to_string());
                    Ok(att.clone())
                }
            },
        }
    }

    fn component(&mut self, ast: &ComponentAst) -> Result<ComponentBuilder, LangError> {
        if ast.states.is_empty() {
            return Err(LangError::new(
                format!("component '{}' has no states", ast.name),
                ast.pos,
            ));
        }
        let mut builder = ComponentBuilder::new(&ast.name);
        let mut locals = HashMap::new();
        for (name, init, pos) in &ast.vars {
            if locals.contains_key(name) {
                return Err(LangError::new(format!("duplicate variable '{name}'"), *pos));
            }
            locals.insert(name.clone(), builder.local(name.clone(), *init));
        }
        let mut states = HashMap::new();
        for (name, pos) in &ast.states {
            if states.contains_key(name) {
                return Err(LangError::new(format!("duplicate state '{name}'"), *pos));
            }
            states.insert(name.clone(), builder.location(name.clone()));
        }
        let lookup_state = |name: &str, pos: Pos| {
            states
                .get(name)
                .copied()
                .ok_or_else(|| LangError::new(format!("unknown state '{name}'"), pos))
        };
        if let Some((name, pos)) = &ast.init {
            builder.set_initial(lookup_state(name, *pos)?);
        }
        for (name, pos) in &ast.ends {
            builder.mark_end(lookup_state(name, *pos)?);
        }

        for stmt in &ast.stmts {
            let from = lookup_state(&stmt.from, stmt.pos)?;
            let to = lookup_state(&stmt.goto, stmt.pos)?;
            let guard = match &stmt.guard {
                Some(g) => Guard::when(self.expr(g, Some(&locals))?),
                None => Guard::always(),
            };
            let lookup_local = |name: &str| -> Result<LocalId, LangError> {
                locals.get(name).copied().ok_or_else(|| {
                    LangError::new(
                        format!("'{name}' must be a declared component variable"),
                        stmt.pos,
                    )
                })
            };
            match &stmt.action {
                ActionAst::Skip => {
                    builder.transition(
                        from,
                        to,
                        guard,
                        Action::Skip,
                        format!("{} -> {}", stmt.from, stmt.goto),
                    );
                }
                ActionAst::Assign(assigns) => {
                    let mut compiled = Vec::new();
                    for (name, value) in assigns {
                        compiled.push((
                            self.lvalue(name, stmt.pos, &locals)?,
                            self.expr(value, Some(&locals))?,
                        ));
                    }
                    builder.transition(
                        from,
                        to,
                        guard,
                        Action::assign_all(compiled),
                        format!("do @ {}", stmt.from),
                    );
                }
                ActionAst::Send {
                    port,
                    data,
                    tag,
                    status,
                } => {
                    let att = self.claim_send_port(port, &ast.name, stmt.pos)?;
                    let data = self.expr(data, Some(&locals))?;
                    let tag = match tag {
                        Some(t) => self.expr(t, Some(&locals))?,
                        None => 0.into(),
                    };
                    let status = status.as_deref().map(lookup_local).transpose()?;
                    // The guard applies to the first hop of the interface;
                    // gate with a skip when present.
                    let start = if stmt.guard.is_some() {
                        let gate = builder.location(format!("{}@send_gate", stmt.from));
                        builder.transition(from, gate, guard, Action::Skip, "guard");
                        gate
                    } else {
                        from
                    };
                    builder.send_msg(start, to, &att, data, tag, status);
                }
                ActionAst::Receive {
                    port,
                    selective,
                    into,
                    status,
                    tagvar,
                } => {
                    let att = self.claim_recv_port(port, &ast.name, stmt.pos)?;
                    let selective = selective
                        .as_ref()
                        .map(|e| self.expr(e, Some(&locals)))
                        .transpose()?;
                    let mut binds = ReceiveBinds::ignore();
                    if let Some(name) = into {
                        binds.data = Some(lookup_local(name)?);
                    }
                    if let Some(name) = status {
                        binds.status = Some(lookup_local(name)?);
                    }
                    if let Some(name) = tagvar {
                        binds.tag = Some(lookup_local(name)?);
                    }
                    let start = if stmt.guard.is_some() {
                        let gate = builder.location(format!("{}@recv_gate", stmt.from));
                        builder.transition(from, gate, guard, Action::Skip, "guard");
                        gate
                    } else {
                        from
                    };
                    builder.recv_msg(start, to, &att, selective, binds);
                }
                ActionAst::Assert(cond, message) => {
                    let cond = self.expr(cond, Some(&locals))?;
                    builder.transition(
                        from,
                        to,
                        guard,
                        Action::assert(cond, message.clone()),
                        format!("assert @ {}", stmt.from),
                    );
                }
            }
        }
        Ok(builder)
    }

    fn property(&self, ast: &PropertyAst) -> Result<PropertySpec, LangError> {
        Ok(match ast {
            PropertyAst::Invariant { name, expr, .. } => PropertySpec::Invariant {
                name: name.clone(),
                predicate: Predicate::from_expr(self.expr(expr, None)?),
            },
            PropertyAst::Ltl {
                name,
                formula,
                bindings,
                pos,
            } => {
                let parsed = pnp_ltl::parse(formula).map_err(|e| {
                    LangError::new(format!("LTL formula does not parse: {e}"), *pos)
                })?;
                let mut props = Vec::new();
                for (pname, expr) in bindings {
                    props.push(Proposition::new(
                        pname.clone(),
                        Predicate::from_expr(self.expr(expr, None)?),
                    ));
                }
                // Validate that every proposition the formula uses is bound.
                for used in parsed.propositions() {
                    if !bindings.iter().any(|(n, _)| *n == used) {
                        return Err(LangError::new(
                            format!("proposition '{used}' is not bound by a 'where' clause"),
                            *pos,
                        ));
                    }
                }
                PropertySpec::Ltl {
                    name: name.clone(),
                    formula: parsed,
                    props,
                }
            }
            PropertyAst::NoDeadlock { name, .. } => PropertySpec::NoDeadlock { name: name.clone() },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &str = r#"
        system {
            global delivered = 0;
            connector wire {
                channel fifo(2);
                send tx: asyn_blocking;
                recv rx: blocking;
            }
            component producer {
                state start, done;
                end done;
                from start send tx(42) goto done;
            }
            component consumer {
                var got = 0;
                state recv, publish, done;
                end done;
                from recv receive rx into got goto publish;
                from publish do delivered = got goto done;
            }
            property ok: invariant delivered == 0 || delivered == 42;
            property live: no_deadlock;
        }
    "#;

    #[test]
    fn compiles_a_full_system() {
        let spec = compile(WIRE).unwrap();
        // 1 channel + 2 ports + 2 components.
        assert_eq!(spec.system().program().processes().len(), 5);
        assert_eq!(spec.properties().len(), 2);
    }

    #[test]
    fn compiles_fault_decorators_and_crash_ports() {
        let src = r#"system {
            global delivered = 0;
            connector wire {
                channel lossy fifo(2);
                faults { crash_restart rx; }
                send tx: asyn_blocking;
                recv rx: blocking;
            }
            component producer {
                state start, done;
                end done;
                from start send tx(42) goto done;
            }
            component consumer {
                var got = 0; var st = 0;
                state recv, publish, done;
                end done;
                from recv receive rx into got status st goto publish;
                from publish do delivered = got goto done;
            }
            property ok: invariant delivered == 0 || delivered == 42;
        }"#;
        let spec = compile(src).unwrap();
        let roles: Vec<String> = spec
            .system()
            .topology()
            .iter()
            .map(|(_, role)| role.describe())
            .collect();
        // The decorated channel and the crash port surface in the topology.
        assert!(
            roles.iter().any(|r| r.contains("Lossy(FIFO(2))")),
            "{roles:?}"
        );
        assert!(
            roles.iter().any(|r| r.contains("CrashRestartBlRecv")),
            "{roles:?}"
        );
        let results = spec.verify_all().unwrap();
        assert!(results[0].holds, "{}", results[0].detail);
    }

    #[test]
    fn rejects_unknown_crash_port() {
        let src = r#"system {
            connector c {
                channel single_slot;
                faults { crash_restart nowhere; }
                send tx: asyn_blocking;
                recv rx: blocking;
            }
            component x { state a; end a; }
        }"#;
        let err = compile(src).unwrap_err();
        assert!(err.to_string().contains("unknown port 'nowhere'"), "{err}");
    }

    #[test]
    fn rejects_unknown_port() {
        let src = r#"system {
            component x { state a, b; end b; from a send nowhere(1) goto b; }
        }"#;
        let err = compile(src).unwrap_err();
        assert!(err.to_string().contains("unknown send port"), "{err}");
    }

    #[test]
    fn rejects_port_shared_across_components() {
        let src = r#"system {
            connector c { channel single_slot; send tx: asyn_blocking; recv rx: blocking; }
            component a { state s, t; end t; from s send tx(1) goto t; }
            component b { state s, t; end t; from s send tx(2) goto t; }
        }"#;
        let err = compile(src).unwrap_err();
        assert!(err.to_string().contains("already used"), "{err}");
    }

    #[test]
    fn rejects_unknown_variable() {
        let src = r#"system {
            component x { state a, b; end b; from a do nope = 1 goto b; }
        }"#;
        let err = compile(src).unwrap_err();
        assert!(err.to_string().contains("unknown variable"), "{err}");
    }

    #[test]
    fn rejects_locals_in_properties() {
        let src = r#"system {
            component x { var v = 0; state a; end a; }
            property p: invariant v == 0;
        }"#;
        let err = compile(src).unwrap_err();
        assert!(err.to_string().contains("global"), "{err}");
    }

    #[test]
    fn rejects_unbound_ltl_proposition() {
        let src = r#"system {
            global g = 0;
            component x { state a; end a; }
            property p: ltl "<> mystery" where other = g == 1;
        }"#;
        let err = compile(src).unwrap_err();
        assert!(err.to_string().contains("mystery"), "{err}");
    }

    #[test]
    fn locals_shadow_globals() {
        let src = r#"system {
            global x = 5;
            component c {
                var x = 0;
                state a, b;
                end b;
                from a if x == 0 do x = 1 goto b;
            }
            property p: invariant x == 5;
        }"#;
        let spec = compile(src).unwrap();
        // The property reads the *global* x (untouched), so it holds.
        let results = spec.verify_all().unwrap();
        assert!(results[0].holds, "{:?}", results[0]);
    }

    #[test]
    fn status_variable_must_be_local() {
        let src = r#"system {
            global g = 0;
            connector c { channel single_slot; send tx: asyn_checking; recv rx: blocking; }
            component p { state a, b; end b; from a send tx(1) status g goto b; }
            component q { state a, b; end b; from a receive rx goto b; }
        }"#;
        let err = compile(src).unwrap_err();
        assert!(err.to_string().contains("component variable"), "{err}");
    }
}
