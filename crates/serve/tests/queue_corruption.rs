//! Property tests for `queue.pnpq` durability: random persisted queues
//! must roundtrip exactly, and any truncation or bitflip of the encoded
//! bytes must come back as a clean decode error — never a panic, never a
//! partial restore — which the supervisor then turns into a quarantine.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use pnp_kernel::{SearchConfig, SimFs, VfsHandle, VisitedKind};
use pnp_serve::job::{Chaos, JobConfig, JobRequest};
use pnp_serve::queue::{decode_queue, encode_queue, PersistedJob};
use pnp_serve::supervisor::{ServeConfig, Supervisor};

/// One random job from compact scalars: ids/attempts, a source picked
/// from realistic spec bodies, every visited backend, and the optional
/// deadline/retry/chaos knobs all exercised.
fn arb_job() -> impl Strategy<Value = PersistedJob> {
    let sources = proptest::sample::select(vec![
        "system { }",
        "system { global x = 0; }",
        "system {\n  global a = 0;\n  property p { invariant a >= 0 }\n}",
        "", // decoder must cope with empty source strings too
    ]);
    (
        0u64..2000,
        0u32..8,
        sources,
        1usize..100_000,
        0u8..3,
        1usize..5,
        0u8..4,
    )
        .prop_map(
            |(id, attempts, source, max_states, visited, threads, extras)| {
                let visited = match visited {
                    0 => VisitedKind::Exact,
                    1 => VisitedKind::Compact,
                    _ => VisitedKind::bitstate(1 << 16),
                };
                PersistedJob {
                    id,
                    attempts,
                    request: JobRequest::new(
                        source.to_string(),
                        JobConfig {
                            config: SearchConfig {
                                max_states,
                                max_time: (extras & 1 != 0)
                                    .then(|| Duration::from_millis(u64::from(extras) * 37)),
                                threads,
                                visited,
                                ..SearchConfig::default()
                            },
                            deadline: (extras & 2 != 0).then(|| Duration::from_millis(250)),
                            job_deadline: (extras & 4 != 0).then(|| Duration::from_millis(900)),
                            max_attempts: (extras == 3).then_some(5),
                            chaos: (extras == 1).then_some(Chaos::PanicOnFlush {
                                flush: 2,
                                attempts: 1,
                            }),
                        },
                    ),
                }
            },
        )
}

fn arb_queue() -> impl Strategy<Value = Vec<PersistedJob>> {
    proptest::collection::vec(arb_job(), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity on everything the supervisor
    /// restores: ids, attempt counts, and the full job configuration.
    #[test]
    fn random_queues_roundtrip(jobs in arb_queue()) {
        let decoded = decode_queue(&encode_queue(&jobs)).unwrap();
        prop_assert_eq!(decoded.len(), jobs.len());
        for (restored, original) in decoded.iter().zip(&jobs) {
            prop_assert_eq!(restored.id, original.id);
            prop_assert_eq!(restored.attempts, original.attempts);
            prop_assert_eq!(&restored.request.source, &original.request.source);
            let (r, o) = (&restored.request.config, &original.request.config);
            prop_assert_eq!(r.config.max_states, o.config.max_states);
            prop_assert_eq!(r.config.max_time, o.config.max_time);
            prop_assert_eq!(r.config.threads, o.config.threads);
            prop_assert_eq!(r.config.visited, o.config.visited);
            prop_assert_eq!(r.deadline, o.deadline);
            prop_assert_eq!(r.max_attempts, o.max_attempts);
            prop_assert_eq!(r.chaos, o.chaos);
        }
    }

    /// Truncating the file anywhere — a torn write caught mid-flight —
    /// is a clean error, never a panic or a shorter-but-plausible queue.
    #[test]
    fn truncation_never_panics_or_partially_restores(
        jobs in arb_queue(),
        cut in 0u32..10_000,
    ) {
        let bytes = encode_queue(&jobs);
        let cut = cut as usize % bytes.len();
        prop_assert!(
            decode_queue(&bytes[..cut]).is_err(),
            "truncation to {} of {} bytes must be rejected", cut, bytes.len()
        );
    }

    /// Flipping any bit anywhere — checksum field included — is caught.
    #[test]
    fn bitflips_never_panic_and_are_always_detected(
        jobs in arb_queue(),
        position in 0u32..10_000,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_queue(&jobs);
        let position = position as usize % bytes.len();
        bytes[position] ^= 1 << bit;
        prop_assert!(
            decode_queue(&bytes).is_err(),
            "bit {} of byte {} flipped undetected", bit, position
        );
    }

    /// End to end through the supervisor on the simulated filesystem: a
    /// corrupted queue file means a clean empty start with the evidence
    /// moved to `quarantine/`, not a crash and not garbage jobs.
    #[test]
    fn supervisor_quarantines_corrupt_queues(
        jobs in arb_queue(),
        position in 0u32..10_000,
        seed in 0u64..1000,
    ) {
        let fs = Arc::new(SimFs::new(seed));
        let vfs: VfsHandle = fs.clone();
        let state_dir = PathBuf::from("/state");
        vfs.create_dir_all(&state_dir).unwrap();
        let mut bytes = encode_queue(&jobs);
        let position = position as usize % bytes.len();
        bytes[position] ^= 0x40;
        vfs.write(&state_dir.join("queue.pnpq"), &bytes).unwrap();

        let supervisor = Supervisor::start(ServeConfig {
            workers: 1,
            state_dir: state_dir.clone(),
            vfs: vfs.clone(),
            ..ServeConfig::default()
        })
        .unwrap();
        let stats = supervisor.stats();
        supervisor.drain();

        prop_assert_eq!(supervisor.restored(), 0);
        prop_assert_eq!(stats.quarantined, 1);
        prop_assert!(vfs.exists(&state_dir.join("quarantine").join("queue.pnpq.corrupt")));
        prop_assert!(!vfs.exists(&state_dir.join("queue.pnpq")));
    }
}
