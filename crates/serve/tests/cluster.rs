//! Cluster integration tests: a real [`Coordinator`] fronting real
//! [`Supervisor`]-backed [`WorkerGateway`]s over an in-memory
//! [`SimNet`], plus the seeded network-chaos matrix and the
//! snapshot-shipping supervisor hooks.
//!
//! The end-to-end test is the "quiet network" baseline the chaos matrix
//! diverges from: no faults, two workers, jobs submitted through the
//! retrying client, completions pushed by the worker loop — every job
//! must land exactly once with results byte-identical to a direct
//! single-node verification.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pnp_lang::{compile, VerifyOptions};
use pnp_net::{SimNet, SubmitClient, Transport, WireRequest};
use pnp_serve::chaos::results_fingerprint;
use pnp_serve::cluster::{ClusterConfig, Coordinator, WorkerGateway};
use pnp_serve::job::{JobConfig, JobRequest, Verdict};
use pnp_serve::netchaos::{run_net_schedule, NetSchedule};
use pnp_serve::supervisor::{ServeConfig, Supervisor};

const COUNTERS: &str = r#"
system {
    global total = 0;

    component a {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }
    component b {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }

    property totals: invariant total <= 2;
}
"#;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pnp-cluster-test-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn worker_supervisor(tag: &str) -> Arc<Supervisor> {
    let config = ServeConfig {
        workers: 2,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(50),
        checkpoint_every: 100,
        state_dir: temp_state_dir(tag),
        ..ServeConfig::default()
    };
    Arc::new(Supervisor::start(config).expect("supervisor starts"))
}

fn baseline_fingerprint(source: &str) -> u64 {
    let spec = compile(source).expect("spec compiles");
    let results = spec
        .verify_all_with_options(&VerifyOptions::default())
        .expect("baseline verifies");
    results_fingerprint(&results)
}

/// Two real supervisors behind gateways, one coordinator, no faults:
/// jobs submitted through the retrying client complete exactly once
/// with fingerprints matching a direct single-node run.
#[test]
fn cluster_round_trip_over_simnet_matches_single_node() {
    let net = SimNet::new(42);
    let now = Arc::new(AtomicU64::new(0));

    let coordinator = Arc::new(Coordinator::new(
        ClusterConfig {
            state_dir: temp_state_dir("coord"),
            ..ClusterConfig::default()
        },
        Arc::new(net.endpoint("coord")),
    ));
    {
        let coordinator = Arc::clone(&coordinator);
        let now = Arc::clone(&now);
        net.register(
            "coord",
            Arc::new(move |request: &WireRequest| {
                coordinator.handle(request, now.load(Ordering::Relaxed))
            }),
        );
    }

    let gateways: Vec<Arc<WorkerGateway>> = ["w1", "w2"]
        .iter()
        .map(|name| {
            let gateway = Arc::new(WorkerGateway::new(name, worker_supervisor(name)));
            let handler = Arc::clone(&gateway);
            net.register(
                name,
                Arc::new(move |request: &WireRequest| handler.handle(request)),
            );
            gateway
        })
        .collect();
    for gateway in &gateways {
        let transport = net.endpoint(&gateway.name);
        gateway
            .register(&transport, "coord", &gateway.name)
            .expect("registration reaches the coordinator");
    }

    let client = SubmitClient::new(net.endpoint("client"));
    let id = client
        .submit("coord", COUNTERS, "tenant=it")
        .expect("submission admitted")
        .id;
    assert!(id.starts_with("g-"), "coordinator ids are global: {id}");

    // Drive virtual time; the supervisors' worker threads run on real
    // time underneath, so poll with short real sleeps.
    let mut result_body = None;
    for step in 1..=400u64 {
        let t = step * 100;
        now.store(t, Ordering::Relaxed);
        coordinator.tick(t);
        for gateway in &gateways {
            let transport = net.endpoint(&gateway.name);
            let _ = gateway.heartbeat(&transport, "coord");
            let _ = gateway.push_completions(&transport, "coord");
        }
        if let Ok(Some(body)) = client.poll_result("coord", &id) {
            result_body = Some(body);
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let body = result_body.expect("job completes within the driving loop");
    assert!(body.contains("\"verdict\""), "result body renders: {body}");

    let stats = coordinator.stats();
    assert_eq!(stats.completed, 1, "exactly one completion recorded");
    assert_eq!(stats.fenced, 0, "a quiet network fences nothing");
    let completion = coordinator.completion(1).expect("completion retained");
    assert_eq!(completion.verdict, Verdict::Passed);
    let results = completion.results.expect("results shipped in completion");
    assert_eq!(
        results_fingerprint(&results),
        baseline_fingerprint(COUNTERS),
        "cluster result is byte-identical to a single-node run"
    );
}

/// Duplicate submissions with the same idempotency key admit one job.
#[test]
fn coordinator_deduplicates_idempotent_submissions() {
    let net = SimNet::new(7);
    let coordinator = Arc::new(Coordinator::new(
        ClusterConfig {
            state_dir: temp_state_dir("idem"),
            ..ClusterConfig::default()
        },
        Arc::new(net.endpoint("coord")),
    ));
    {
        let coordinator = Arc::clone(&coordinator);
        net.register(
            "coord",
            Arc::new(move |request: &WireRequest| coordinator.handle(request, 0)),
        );
    }
    // Admission requires at least one live worker; park a stub that
    // accepts dispatches and never finishes them.
    net.register(
        "stub",
        Arc::new(|_request: &WireRequest| {
            pnp_net::WireResponse::new(202, b"{\"status\":\"accepted\"}".to_vec())
        }),
    );
    net.endpoint("stub")
        .request(
            "coord",
            &WireRequest::post(
                "/cluster/register?name=stub&peer=stub".to_string(),
                Vec::new(),
            ),
        )
        .expect("stub registers");
    let mut client = SubmitClient::new(net.endpoint("client"));
    client.idem_key = Some("same-key".into());
    let first = client
        .submit("coord", COUNTERS, "")
        .expect("first admitted")
        .id;
    let second = client
        .submit("coord", COUNTERS, "")
        .expect("second deduplicated")
        .id;
    assert_eq!(first, second, "idempotency key maps to one job");
    assert_eq!(coordinator.stats().submitted, 1);
}

/// A seed snapshot shipped with the job request seeds the supervisor's
/// resume path without changing the verdict or the result bytes.
#[test]
fn seed_snapshot_resume_is_fingerprint_identical() {
    // Produce a genuine mid-search snapshot by running under a tripping
    // state budget with flush-on-trip checkpointing.
    let spec = compile(COUNTERS).expect("spec compiles");
    let base = temp_state_dir("seedsnap").join("seed.pnpsnap");
    std::fs::create_dir_all(base.parent().unwrap()).unwrap();
    let bounded = pnp_kernel::SearchConfig {
        max_states: 20,
        threads: 1,
        ..pnp_kernel::SearchConfig::default()
    };
    let options = VerifyOptions {
        config: bounded,
        checkpoint: Some((base.clone(), 0)),
        ..VerifyOptions::default()
    };
    let _ = spec.verify_all_with_options(&options);
    let vfs = pnp_kernel::real_fs();
    let (_, snapshot) = pnp_kernel::load_latest_snapshot(&vfs, base)
        .expect("snapshot store readable")
        .expect("budget trip flushed a generation");

    let supervisor = worker_supervisor("seeded");
    let mut request = JobRequest::new(COUNTERS.to_string(), JobConfig::default());
    request.seed_snapshot = Some(snapshot.encode());
    let id = supervisor.submit(request).expect("admitted");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let verdict = loop {
        if let Some(Some(verdict)) = supervisor.verdict(id) {
            break verdict;
        }
        assert!(std::time::Instant::now() < deadline, "job finishes");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(verdict, Verdict::Passed);
    let results = supervisor.results(id).expect("results retained");
    assert_eq!(
        results_fingerprint(&results),
        baseline_fingerprint(COUNTERS)
    );
    supervisor.drain();
}

/// The chaos matrix, small edition: every schedule across four seeds.
/// CI runs the full 8-seed matrix in release via the `cluster_chaos`
/// binary; this keeps a debug-build gate in `cargo test`.
#[test]
fn net_chaos_matrix_smoke() {
    for schedule in NetSchedule::ALL {
        let expected_jobs = match schedule {
            NetSchedule::OverloadBurst => 5,
            NetSchedule::FlappingWorker => 6,
            _ => 3,
        };
        for seed in 0..4 {
            let outcome = run_net_schedule(schedule, seed)
                .unwrap_or_else(|e| panic!("{schedule} seed {seed}: {e}"));
            assert_eq!(outcome.jobs, expected_jobs);
        }
    }
}
