//! Regression test for binary cluster bodies over the *real* HTTP
//! layer: `/cluster/poll` answers a finished job with an
//! `encode_completion` payload (LE u64 fields, FNV checksum) that must
//! cross the socket byte-for-byte. An earlier bug routed every cluster
//! response through a lossy UTF-8 conversion, which corrupted exactly
//! this path — SimNet passes bytes verbatim, so only a real-TCP test
//! can catch it.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pnp_kernel::watch_termination;
use pnp_net::{RealTcp, Transport, WireRequest};
use pnp_serve::cluster::WorkerGateway;
use pnp_serve::job::{JobConfig, JobRequest};
use pnp_serve::supervisor::{ServeConfig, Supervisor};
use pnp_serve::transport::{decode_completion, encode_dispatch, Dispatch};
use pnp_serve::Node;

const SPEC: &str = r#"
system {
    global total = 0;

    component a {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }
    component b {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }

    property totals: invariant total <= 2;
}
"#;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_state_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pnp-cluster-wire-test-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn poll_completion_survives_real_tcp_byte_for_byte() {
    let supervisor = Arc::new(
        Supervisor::start(ServeConfig {
            workers: 1,
            state_dir: temp_state_dir(),
            ..ServeConfig::default()
        })
        .expect("supervisor starts"),
    );
    let gateway = Arc::new(WorkerGateway::new("w1", Arc::clone(&supervisor)));
    let node = Arc::new(Node {
        supervisor,
        coordinator: None,
        gateway: Some(Arc::clone(&gateway)),
    });

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let term = watch_termination();
    std::thread::spawn(move || {
        let _ = pnp_serve::serve_node(listener, node, term);
    });

    let tcp = RealTcp::default();
    let dispatch = Dispatch {
        job: 1,
        epoch: 0,
        attempts: 0,
        deadline_at_ms: None,
        request: JobRequest::new(SPEC.to_string(), JobConfig::default()),
    };
    let response = tcp
        .request(
            &addr,
            &WireRequest::post("/cluster/execute", encode_dispatch(&dispatch)),
        )
        .expect("execute reaches the worker");
    assert_eq!(response.status, 202, "dispatch accepted");

    // Poll until the job finishes; the 200 body is the binary
    // completion and must decode, checksum and all.
    let deadline = Instant::now() + Duration::from_secs(30);
    let completion = loop {
        let response = tcp
            .request(&addr, &WireRequest::get("/cluster/poll?job=1&epoch=0"))
            .expect("poll reaches the worker");
        if response.status == 200 {
            break decode_completion(&response.body)
                .expect("completion body crossed the wire intact");
        }
        assert_eq!(response.status, 202, "job still running");
        assert!(Instant::now() < deadline, "job did not finish in time");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(completion.job, 1);
    assert_eq!(completion.epoch, 0);
    assert_eq!(completion.worker, "w1");
    let results = completion.results.expect("verdict carries results");
    assert!(!results.is_empty());
}
