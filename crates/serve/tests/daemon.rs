//! Black-box test of the `pnp-serve` binary: start it, load it up,
//! SIGTERM it mid-flight, and verify the queue survives the restart.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pnp_serve::json::{find_num, find_str};

const SPEC: &str = r#"
system {
    global total = 0;

    component a {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }
    component b {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }

    property totals: invariant total <= 2;
}
"#;

struct Daemon {
    child: Child,
    addr: String,
    restored: usize,
}

fn start_daemon(state_dir: &Path, extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pnp-serve"))
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--state-dir")
        .arg(state_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn pnp-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut restored = 0;
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before listening")
            .expect("readable stdout");
        if let Some(count) = line
            .strip_prefix("pnp-serve: restored ")
            .and_then(|rest| rest.split(' ').next())
        {
            restored = count.parse().expect("restored count");
        }
        if let Some(addr) = line.strip_prefix("pnp-serve: listening on http://") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Daemon {
        child,
        addr,
        restored,
    }
}

fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("full response");
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, body.to_string())
}

fn wait_for_verdict(addr: &str, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{id}/result"), "");
        if status == 200 {
            return find_str(&body, "verdict").expect("verdict");
        }
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigterm_drain_persists_queue_and_restart_restores_it() {
    let state_dir = std::env::temp_dir().join(format!("pnp-serve-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    std::fs::create_dir_all(&state_dir).unwrap();

    // One slow worker so submitted jobs pile up in the queue.
    let daemon = start_daemon(&state_dir, &["--workers", "1"]);
    assert_eq!(daemon.restored, 0);

    let (_, body) = http(
        &daemon.addr,
        "POST",
        "/jobs?chaos=wedge_start_ms:800:9",
        SPEC,
    );
    let busy_id = find_str(&body, "id").expect("busy id");
    let mut queued = Vec::new();
    for _ in 0..3 {
        let (status, body) = http(&daemon.addr, "POST", "/jobs", SPEC);
        assert_eq!(status, 202, "{body}");
        queued.push(find_str(&body, "id").unwrap());
    }
    let (status, health) = http(&daemon.addr, "GET", "/health", "");
    assert_eq!(status, 200);
    assert!(find_num(&health, "queue_depth").is_some_and(|n| n >= 3));

    // SIGTERM: the daemon must drain and exit 0, leaving the queue on disk.
    let pid = daemon.child.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap()
        .success());
    let mut child = daemon.child;
    let exit = child.wait().expect("daemon exit status");
    assert!(exit.success(), "drain must exit 0, got {exit:?}");
    assert!(
        state_dir.join("queue.pnpq").exists(),
        "drained queue must be persisted"
    );

    // Restart: the queue is restored under the original ids and every
    // job still completes.
    let revived = start_daemon(&state_dir, &["--workers", "2"]);
    assert!(
        revived.restored >= 3,
        "expected >=3 restored jobs, got {}",
        revived.restored
    );
    for id in queued.iter().chain(std::iter::once(&busy_id)) {
        assert_eq!(wait_for_verdict(&revived.addr, id), "passed", "job {id}");
    }

    let pid = revived.child.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .unwrap()
        .success());
    let mut child = revived.child;
    assert!(child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&state_dir);
}
