//! Overload-control integration tests: the hedge fence under duplicated
//! completions (property-based), the coordinator's `?wait=ms` long-poll
//! over a [`SimNet`], and the client's deadline-capped,
//! `Retry-After`-honoring wait loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use pnp_lang::{compile, PropertyResult, VerifyOptions};
use pnp_net::{json_num, ClientError, SimNet, SubmitClient, Transport, WireRequest, WireResponse};
use pnp_serve::cluster::{ClusterConfig, Coordinator};
use pnp_serve::job::Verdict;
use pnp_serve::membership::DetectorConfig;
use pnp_serve::transport::{encode_completion, Completion};
use proptest::prelude::*;

const SPEC: &str = r#"
system {
    global handoff = 0;

    component left {
        var steps = 0;
        state run, idle;
        end idle;
        from run if steps < 5 do steps = steps + 1 goto run;
        from run if steps >= 5 do handoff = handoff + 1 goto idle;
    }

    property bounded: invariant handoff <= 1;
}
"#;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_state_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pnp-overload-test-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_results() -> &'static Vec<PropertyResult> {
    static RESULTS: OnceLock<Vec<PropertyResult>> = OnceLock::new();
    RESULTS.get_or_init(|| {
        compile(SPEC)
            .expect("spec compiles")
            .verify_all_with_options(&VerifyOptions::default())
            .expect("spec verifies")
    })
}

/// A coordinator over SimNet with two stub workers that accept every
/// dispatch and never finish, driven to the point where job `g-1` is
/// dispatched (primary epoch) and hedged (primary epoch + 1). Returns
/// the primary's and the hedge's worker names with the epochs.
struct HedgedCluster {
    net: Arc<SimNet>,
    coordinator: Arc<Coordinator>,
    primary: (String, u64),
    hedge: (String, u64),
}

fn hedged_cluster(seed: u64, tag: &str) -> HedgedCluster {
    let net = SimNet::new(seed);
    let now = Arc::new(AtomicU64::new(0));
    let coordinator = Arc::new(Coordinator::new(
        ClusterConfig {
            // The stubs never heartbeat: keep the detector quiet so the
            // hedge (not a migration) is the only second attempt.
            detector: DetectorConfig {
                heartbeat_ms: 1000,
                suspect_after_ms: 1_000_000,
                dead_after_ms: 2_000_000,
            },
            request_timeout_ms: 10_000,
            state_dir: temp_state_dir(tag),
            ..ClusterConfig::default()
        },
        Arc::new(net.endpoint("coord")),
    ));
    {
        let coordinator = Arc::clone(&coordinator);
        let now = Arc::clone(&now);
        net.register(
            "coord",
            Arc::new(move |request: &WireRequest| {
                coordinator.handle(request, now.load(Ordering::Relaxed))
            }),
        );
    }
    for name in ["wa", "wb"] {
        net.register(
            name,
            Arc::new(|request: &WireRequest| match request.path() {
                "/cluster/poll" => WireResponse::new(202, b"{\"status\":\"running\"}".to_vec()),
                _ => WireResponse::new(202, b"{\"status\":\"accepted\"}".to_vec()),
            }),
        );
        net.endpoint(name)
            .request(
                "coord",
                &WireRequest::post(
                    format!("/cluster/register?name={name}&peer={name}"),
                    Vec::new(),
                ),
            )
            .expect("stub registers");
    }

    let client = SubmitClient::new(net.endpoint("client"));
    let id = client
        .submit("coord", SPEC, "tenant=t")
        .expect("submission admitted")
        .id;
    assert_eq!(id, "g-1");

    now.store(100, Ordering::Relaxed);
    coordinator.tick(100);
    let primary_worker = coordinator.worker_of(1).expect("job dispatched");
    let status = net
        .endpoint("client")
        .request("coord", &WireRequest::get("/jobs/g-1".to_string()))
        .expect("status readable")
        .text();
    let primary_epoch = json_num(&status, "epoch").expect("epoch in status") as u64;

    // With fewer than five duration samples the hedge threshold is half
    // the request timeout (5000 ms); step past it.
    now.store(5200, Ordering::Relaxed);
    coordinator.tick(5200);
    assert_eq!(coordinator.stats().hedges, 1, "hedge armed");
    let hedge_worker = if primary_worker == "wa" { "wb" } else { "wa" };
    HedgedCluster {
        net,
        coordinator,
        primary: (primary_worker, primary_epoch),
        // A hedge always runs under the job's top epoch + 1.
        hedge: (hedge_worker.to_string(), primary_epoch + 1),
    }
}

fn upload(net: &Arc<SimNet>, worker: &str, epoch: u64, attempts: u32) -> u16 {
    let completion = Completion {
        job: 1,
        epoch,
        worker: worker.to_string(),
        verdict: Verdict::Passed,
        attempts,
        error: None,
        results: Some(spec_results().clone()),
    };
    net.endpoint(worker)
        .request(
            "coord",
            &WireRequest::post(
                "/cluster/complete".to_string(),
                encode_completion(&completion),
            ),
        )
        .expect("upload delivered")
        .status
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fence under a hedged race: any interleaving of duplicated
    /// primary-epoch, hedge-epoch, and stale-epoch completions adopts
    /// exactly one result — every other upload answers `409`.
    #[test]
    fn hedged_duplicate_completions_adopt_exactly_one(
        seed in 0u64..1024,
        uploads in proptest::collection::vec(0usize..4, 0..8),
        final_is_hedge in 0u8..2,
    ) {
        let cluster = hedged_cluster(seed, "prop");
        let (primary_worker, primary_epoch) = &cluster.primary;
        let (hedge_worker, hedge_epoch) = &cluster.hedge;

        let mut statuses = Vec::new();
        for (index, choice) in uploads.iter().enumerate() {
            let (worker, epoch) = match choice {
                0 => (primary_worker.as_str(), *primary_epoch),
                1 => (hedge_worker.as_str(), *hedge_epoch),
                // A worker from a long-superseded (or never-issued)
                // attempt epoch.
                _ => (primary_worker.as_str(), primary_epoch + 90),
            };
            statuses.push(upload(&cluster.net, worker, epoch, index as u32 + 1));
        }
        // At least one genuinely valid completion always lands.
        if final_is_hedge == 1 {
            statuses.push(upload(&cluster.net, hedge_worker, *hedge_epoch, 2));
        } else {
            statuses.push(upload(&cluster.net, primary_worker, *primary_epoch, 1));
        }

        let adopted = statuses.iter().filter(|s| **s == 200).count();
        let fenced = statuses.iter().filter(|s| **s == 409).count();
        prop_assert_eq!(adopted, 1, "exactly one completion adopted: {:?}", statuses);
        prop_assert_eq!(fenced, statuses.len() - 1, "the rest fence: {:?}", statuses);

        let stats = cluster.coordinator.stats();
        prop_assert_eq!(stats.completed, 1);
        prop_assert_eq!(stats.fenced as usize, fenced);
        // The adopted completion is the first valid upload, verbatim.
        let first_valid = uploads
            .iter()
            .find(|c| **c < 2)
            .map_or_else(
                || if final_is_hedge == 1 { *hedge_epoch } else { *primary_epoch },
                |c| if *c == 1 { *hedge_epoch } else { *primary_epoch },
            );
        let completion = cluster.coordinator.completion(1).expect("completion retained");
        prop_assert_eq!(completion.epoch, first_valid);
    }
}

/// `GET /jobs/<id>?wait=ms` parks the client until the job settles: a
/// completion pushed from another thread wakes the waiter well before
/// the window elapses, and the response already carries the verdict.
#[test]
fn long_poll_wakes_on_completion_push() {
    let cluster = hedged_cluster(99, "wait");
    let (primary_worker, primary_epoch) = cluster.primary.clone();

    let pusher = {
        let net = Arc::clone(&cluster.net);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            upload(&net, &primary_worker, primary_epoch, 1)
        })
    };
    let started = Instant::now();
    let response = cluster
        .net
        .endpoint("client")
        .request(
            "coord",
            &WireRequest::get("/jobs/g-1?wait=30000".to_string()),
        )
        .expect("long poll answers");
    let elapsed = started.elapsed();
    assert_eq!(pusher.join().expect("pusher finishes"), 200);
    assert_eq!(response.status, 200);
    let body = response.text();
    assert!(
        body.contains("\"phase\":\"done\""),
        "settled status: {body}"
    );
    assert!(body.contains("\"verdict\""), "verdict included: {body}");
    assert!(
        elapsed < Duration::from_secs(20),
        "woken by the push, not the window: {elapsed:?}"
    );
}

/// A long-poll for an unknown job answers immediately instead of
/// consuming the full window.
#[test]
fn long_poll_unknown_job_is_immediate() {
    let cluster = hedged_cluster(3, "unknown");
    let started = Instant::now();
    let response = cluster
        .net
        .endpoint("client")
        .request(
            "coord",
            &WireRequest::get("/jobs/g-77?wait=30000".to_string()),
        )
        .expect("request answers");
    assert_eq!(response.status, 404);
    assert!(started.elapsed() < Duration::from_secs(5));
}

/// The client's wait loop honors an overloaded daemon's `Retry-After`
/// hint between polls and still returns the result once the shed ends.
#[test]
fn wait_result_honors_retry_after_hint() {
    let net = SimNet::new(11);
    let polls = Arc::new(Mutex::new(0u32));
    {
        let polls = Arc::clone(&polls);
        net.register(
            "daemon",
            Arc::new(move |request: &WireRequest| {
                assert_eq!(request.path(), "/jobs/j-1/result");
                let mut polls = polls.lock().unwrap();
                *polls += 1;
                if *polls <= 2 {
                    let mut shed = WireResponse::new(
                        503,
                        b"{\"error\":\"overloaded\",\"reason\":\"queue_full\",\
                          \"retry_after_ms\":20}"
                            .to_vec(),
                    );
                    shed.retry_after = Some(1);
                    shed
                } else {
                    WireResponse::new(200, b"{\"id\":\"j-1\",\"verdict\":\"passed\"}".to_vec())
                }
            }),
        );
    }
    let mut client = SubmitClient::new(net.endpoint("client"));
    client.retry_backoff = Duration::from_millis(5);
    let body = client
        .wait_result("daemon", "j-1", Some(Duration::from_secs(30)))
        .expect("wait survives the shed")
        .expect("result arrives");
    assert!(body.contains("passed"));
    assert_eq!(
        *polls.lock().unwrap(),
        3,
        "one poll per shed, then the result"
    );

    // Without a deadline the shed surfaces instead of looping forever.
    *polls.lock().unwrap() = 0;
    let error = client.wait_result("daemon", "j-1", None);
    assert!(
        matches!(
            &error,
            Err(ClientError::Retryable {
                retry_after_ms: Some(20),
                ..
            })
        ),
        "hint surfaced: {error:?}"
    );
}

/// The wait loop's total budget is capped by the job deadline: a job
/// that never settles yields `Ok(None)` — the honest INCONCLUSIVE
/// signal — instead of hanging.
#[test]
fn wait_result_caps_total_time_at_the_deadline() {
    let net = SimNet::new(12);
    net.register(
        "daemon",
        Arc::new(|_request: &WireRequest| {
            WireResponse::new(202, b"{\"status\":\"running\"}".to_vec())
        }),
    );
    let mut client = SubmitClient::new(net.endpoint("client"));
    client.retry_backoff = Duration::from_millis(10);
    let started = Instant::now();
    let outcome = client
        .wait_result("daemon", "j-1", Some(Duration::from_millis(120)))
        .expect("polling is healthy");
    assert_eq!(outcome, None, "budget ran out with the job still running");
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(100) && elapsed < Duration::from_secs(10),
        "stopped at the deadline: {elapsed:?}"
    );
}
