//! End-to-end tests for the randomized fault-schedule search: format
//! error paths, run determinism (including the injected-fault trace),
//! the shrinker's 1-minimality contract, and the planted-bug detection
//! the committed `chaos-corpus/` guards.

use pnp_serve::chaos::Schedule;
use pnp_serve::chaosgen::{
    generate, replay, run_generated, search, shrink_with, Arena, BugPlant, FaultSchedule, Profile,
};
use pnp_serve::netchaos::NetSchedule;
use proptest::prelude::*;

#[test]
fn matrix_schedule_parsers_reject_unknown_names_and_list_the_valid_ones() {
    let storage = Schedule::parse("not-a-schedule").unwrap_err();
    assert!(storage.contains("not-a-schedule"), "{storage}");
    assert!(storage.contains("checkpoint-crash"), "{storage}");
    assert!(storage.contains("resume-after-spill"), "{storage}");

    let cluster = NetSchedule::parse("not-a-schedule").unwrap_err();
    assert!(cluster.contains("not-a-schedule"), "{cluster}");
    assert!(cluster.contains("worker_crash_mid_job"), "{cluster}");
    assert!(cluster.contains("flapping_worker"), "{cluster}");

    // The old binaries' names must all keep parsing (CLI aliases).
    for name in Schedule::ALL.map(|s| s.as_str()) {
        Schedule::parse(name).unwrap();
    }
    for name in NetSchedule::ALL.map(|s| s.as_str()) {
        NetSchedule::parse(name).unwrap();
    }
}

#[test]
fn fault_schedule_parse_reports_line_numbers_and_valid_alternatives() {
    let error = FaultSchedule::parse("arena queue\nseed 1\n\nfs main melt @3").unwrap_err();
    assert!(error.starts_with("line 4:"), "{error}");
    assert!(error.contains("crash"), "should list valid kinds: {error}");

    let error = FaultSchedule::parse("arena queue\nseed 1\nnet warp @2").unwrap_err();
    assert!(error.contains("drop-request"), "{error}");

    let error = FaultSchedule::parse("arena queue\nseed 1\nexpect nothing").unwrap_err();
    assert!(
        error.contains("lost-commit"),
        "should list oracles: {error}"
    );

    assert!(FaultSchedule::parse("seed 1")
        .unwrap_err()
        .contains("arena"));
    assert!(FaultSchedule::parse("arena queue")
        .unwrap_err()
        .contains("seed"));
}

#[test]
fn every_arena_generates_parseable_deterministic_schedules() {
    for arena in Arena::ALL {
        for seed in [0u64, 1, 0xdead_beef] {
            let a = generate(arena, seed, Profile::Heavy);
            let b = generate(arena, seed, Profile::Heavy);
            assert_eq!(a.encode(), b.encode(), "{arena} seed {seed}");
            assert_eq!(FaultSchedule::parse(&a.encode()).unwrap(), a);
            assert!(!a.injections.is_empty());
        }
    }
}

#[test]
fn same_seed_runs_produce_identical_fired_traces() {
    // The determinism regression the repro commands depend on: two runs
    // of the same schedule observe the exact same injected-fault trace.
    for arena in [Arena::Storage, Arena::Queue] {
        let schedule = generate(arena, 6, Profile::Medium);
        let a = run_generated(&schedule).unwrap();
        let b = run_generated(&schedule).unwrap();
        assert_eq!(a, b, "{arena}: outcome (incl. fired trace) must be stable");
    }
    let schedule = generate(Arena::Cluster, 17, Profile::Medium);
    let a = run_generated(&schedule).unwrap();
    let b = run_generated(&schedule).unwrap();
    assert_eq!(a.fired, b.fired, "cluster fired trace must be stable");
    assert_eq!(a, b);
}

#[test]
fn same_seed_searches_are_byte_identical() {
    let a = search(Arena::Queue, 41, Profile::Light, 12, BugPlant::None);
    let b = search(Arena::Queue, 41, Profile::Light, 12, BugPlant::None);
    assert_eq!(a, b);
}

#[test]
fn search_finds_the_planted_queue_bug_and_shrinks_it_to_a_minimal_repro() {
    // The acceptance gate: re-introduce the pre-commit_replace queue
    // bug and the bounded search must find it, shrink it to at most 5
    // injections, and the shrunk schedule must replay deterministically.
    let report = search(
        Arena::Queue,
        99,
        Profile::Medium,
        100,
        BugPlant::UnsyncedQueueCommit,
    );
    let hit = report
        .hit
        .expect("the planted bug must be found within 100 iterations");
    let shrunk = &hit.shrunk;
    assert!(
        shrunk.injections.len() <= 5,
        "shrunk to {} injections: {}",
        shrunk.injections.len(),
        shrunk.encode()
    );
    assert_eq!(shrunk.expect.as_deref(), Some(hit.failure.oracle));

    // Replayable from its serialized form, twice, with identical traces.
    let parsed = FaultSchedule::parse(&shrunk.encode()).unwrap();
    replay(&parsed).expect("the minimized schedule must replay its failure");
    let x = run_generated(&parsed).unwrap_err();
    let y = run_generated(&parsed).unwrap_err();
    assert_eq!(x, y, "the minimized failure must be deterministic");
    assert_eq!(x.oracle, hit.failure.oracle);

    // 1-minimality: removing any single remaining injection makes the
    // run pass or changes the failure.
    for index in 0..parsed.injections.len() {
        let mut weaker = parsed.clone();
        weaker.injections.remove(index);
        weaker.expect = None;
        match run_generated(&weaker) {
            Ok(_) => {}
            Err(failure) => assert_ne!(
                failure.oracle, hit.failure.oracle,
                "dropping injection {index} must not reproduce the same failure"
            ),
        }
    }
}

#[test]
fn fixed_corpus_style_schedule_detects_the_plant_without_search() {
    // The exact shape committed to chaos-corpus/: a tiny hand-auditable
    // schedule whose expect directive guards the detection.
    let text = "\
# regression guard: queue commits must be durable before rename
arena queue
seed 17757367667388014226
plant unsynced-queue-commit
expect lost-commit
fs main crash @8
";
    let schedule = FaultSchedule::parse(text).unwrap();
    replay(&schedule).expect("the corpus schedule must keep detecting the plant");

    // And with the plant removed, the shipped commit_replace passes the
    // very same fault — the bug, not the schedule, is what fails.
    let mut fixed = schedule.clone();
    fixed.plant = BugPlant::None;
    fixed.expect = None;
    run_generated(&fixed).expect("commit_replace must survive the same crash");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn shrinker_output_fails_and_is_one_minimal(
        items in proptest::collection::vec(0u32..40, 2..24),
        culprits in proptest::collection::vec(0u32..40, 1..4),
    ) {
        // Synthetic failure predicate: fails iff every culprit value is
        // present. Seed the items so the initial input fails.
        let mut all = items.clone();
        all.extend(culprits.iter().copied());
        let mut calls = 0u32;
        let mut fails = |xs: &[u32]| {
            calls += 1;
            culprits.iter().all(|c| xs.contains(c))
        };
        prop_assert!(fails(&all));
        let shrunk = shrink_with(&all, &mut fails);

        // Contract 1: the shrunk input still fails.
        prop_assert!(fails(&shrunk), "shrunk input must still fail: {:?}", shrunk);

        // Contract 2: 1-minimality — removing any single element passes.
        for index in 0..shrunk.len() {
            let mut weaker = shrunk.clone();
            weaker.remove(index);
            prop_assert!(
                !fails(&weaker),
                "removing element {} of {:?} should make it pass",
                index,
                shrunk
            );
        }

        // For this predicate the true minimum is the culprit set itself.
        let mut expected: Vec<u32> = culprits.clone();
        expected.sort_unstable();
        expected.dedup();
        let mut got = shrunk.clone();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
