//! End-to-end HTTP test: a real listener, a real client over
//! `TcpStream`, and a real SIGTERM delivered to this process to drive
//! the drain path. Kept as a single `#[test]` because the termination
//! flag is process-global and sticky: once the signal lands, every
//! accept loop in the process drains.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pnp_kernel::watch_termination;
use pnp_serve::json::{find_num, find_str};
use pnp_serve::serve;
use pnp_serve::supervisor::{ServeConfig, Supervisor};

const SPEC: &str = r#"
system {
    global total = 0;

    component a {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }
    component b {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }

    property totals: invariant total <= 2;
}
"#;

struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn http(addr: &str, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("full response");
    let mut lines = head.split("\r\n");
    let status = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

fn wait_for_done(addr: &str, id: &str) -> Response {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let response = http(addr, "GET", &format!("/jobs/{id}/result"), "");
        if response.status == 200 {
            return response;
        }
        assert_eq!(response.status, 202, "unexpected: {}", response.body);
        assert!(Instant::now() < deadline, "job {id} never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn http_api_end_to_end_with_sigterm_drain() {
    let state_dir = std::env::temp_dir().join(format!("pnp-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let config = ServeConfig {
        workers: 2,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(50),
        checkpoint_every: 25,
        state_dir: state_dir.clone(),
        ..ServeConfig::default()
    };
    let supervisor = Arc::new(Supervisor::start(config).unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let term = watch_termination();
    let server = {
        let supervisor = Arc::clone(&supervisor);
        std::thread::spawn(move || serve(listener, supervisor, term))
    };

    // Health before any work.
    let health = http(&addr, "GET", "/health", "");
    assert_eq!(health.status, 200);
    assert_eq!(find_str(&health.body, "status").as_deref(), Some("ok"));

    // A healthy job: 202 on submit, 202 while pending, 200 with verdict
    // and per-property stats when done.
    let submitted = http(&addr, "POST", "/jobs", SPEC);
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let id = find_str(&submitted.body, "id").expect("job id");
    let status = http(&addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(status.status, 200);
    let result = wait_for_done(&addr, &id);
    assert_eq!(find_str(&result.body, "verdict").as_deref(), Some("passed"));
    assert_eq!(find_num(&result.body, "exit_code"), Some(0));
    assert!(result.body.contains("\"properties\":["));
    assert!(find_num(&result.body, "states").is_some_and(|n| n > 0));

    // A panicking job: retried (attempts > 1) and still passes, with
    // totals matching the clean run — the checkpoint made the retry
    // cheap and exact.
    let chaotic = http(&addr, "POST", "/jobs?chaos=panic_on_flush:2:1", SPEC);
    assert_eq!(chaotic.status, 202, "{}", chaotic.body);
    let chaotic_id = find_str(&chaotic.body, "id").unwrap();
    let chaotic_result = wait_for_done(&addr, &chaotic_id);
    assert_eq!(
        find_str(&chaotic_result.body, "verdict").as_deref(),
        Some("passed")
    );
    assert_eq!(find_num(&chaotic_result.body, "attempts"), Some(2));
    assert_eq!(
        find_num(&chaotic_result.body, "states"),
        find_num(&result.body, "states"),
        "retried totals must match the uninterrupted run"
    );

    // A job that never stops panicking: structured permanent failure.
    let doomed = http(
        &addr,
        "POST",
        "/jobs?chaos=panic_on_flush:1:99&max_attempts=2",
        SPEC,
    );
    let doomed_id = find_str(&doomed.body, "id").unwrap();
    let doomed_result = wait_for_done(&addr, &doomed_id);
    assert_eq!(
        find_str(&doomed_result.body, "verdict").as_deref(),
        Some("failed")
    );
    assert_eq!(find_num(&doomed_result.body, "exit_code"), Some(2));
    assert_eq!(
        find_str(&doomed_result.body, "kind").as_deref(),
        Some("transient_exhausted")
    );

    // An over-budget job: inconclusive, exit code 3, partial stats.
    let capped = http(&addr, "POST", "/jobs?budget=states%3D40", SPEC);
    let capped_id = find_str(&capped.body, "id").unwrap();
    let capped_result = wait_for_done(&addr, &capped_id);
    assert_eq!(
        find_str(&capped_result.body, "verdict").as_deref(),
        Some("inconclusive")
    );
    assert_eq!(find_num(&capped_result.body, "exit_code"), Some(3));

    // Cancellation endpoint.
    let victim = http(&addr, "POST", "/jobs?chaos=wedge_start_ms:400:1", SPEC);
    let victim_id = find_str(&victim.body, "id").unwrap();
    let cancelled = http(&addr, "POST", &format!("/jobs/{victim_id}/cancel"), "");
    assert_eq!(cancelled.status, 200);
    let victim_result = wait_for_done(&addr, &victim_id);
    assert_eq!(
        find_str(&victim_result.body, "verdict").as_deref(),
        Some("cancelled")
    );

    // Bad requests degrade cleanly.
    assert_eq!(http(&addr, "POST", "/jobs", "").status, 400);
    assert_eq!(http(&addr, "POST", "/jobs?chaos=rm_rf:1", SPEC).status, 400);
    assert_eq!(http(&addr, "GET", "/jobs/j-9999", "").status, 404);
    assert_eq!(http(&addr, "GET", "/nope", "").status, 404);

    // Overload: a deliberately tiny service sheds with 503 + Retry-After
    // while its in-flight job still completes.
    let shed_dir = std::env::temp_dir().join(format!("pnp-serve-shed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&shed_dir);
    let mut tiny = ServeConfig {
        workers: 1,
        state_dir: shed_dir.clone(),
        ..ServeConfig::default()
    };
    tiny.queue.capacity = 1;
    tiny.queue.retry_after = Duration::from_millis(1500);
    let small = Arc::new(Supervisor::start(tiny).unwrap());
    let small_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let small_addr = small_listener.local_addr().unwrap().to_string();
    let small_server = {
        let small = Arc::clone(&small);
        std::thread::spawn(move || serve(small_listener, small, watch_termination()))
    };
    // Occupy the lone worker, fill the queue, then burst.
    let busy = http(
        &small_addr,
        "POST",
        "/jobs?chaos=wedge_start_ms:600:1",
        SPEC,
    );
    assert_eq!(busy.status, 202);
    let busy_id = find_str(&busy.body, "id").unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let queued = http(&small_addr, "POST", "/jobs", SPEC);
    assert_eq!(queued.status, 202);
    let rejected = http(&small_addr, "POST", "/jobs", SPEC);
    assert_eq!(rejected.status, 503, "{}", rejected.body);
    // The hint scales with queue pressure: base 1500 ms + 2x base at a
    // full queue (depth 1 of capacity 1) = 4500 ms, 4 whole seconds.
    assert_eq!(rejected.header("Retry-After"), Some("4"));
    assert_eq!(
        find_str(&rejected.body, "error").as_deref(),
        Some("overloaded")
    );
    assert_eq!(
        find_str(&rejected.body, "reason").as_deref(),
        Some("queue_full")
    );
    assert!(rejected.body.contains("\"retryable\":true"));
    assert_eq!(find_num(&rejected.body, "retry_after_ms"), Some(4500));
    // Admitted work is unaffected by the shed.
    let busy_result = wait_for_done(&small_addr, &busy_id);
    assert_eq!(
        find_str(&busy_result.body, "verdict").as_deref(),
        Some("passed")
    );

    // SIGTERM → drain → serve() returns cleanly. (A real signal, sent to
    // this very process; the handler was installed by watch_termination.)
    let pid = std::process::id().to_string();
    let killed = std::process::Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill must run");
    assert!(killed.success());
    let deadline = Instant::now() + Duration::from_secs(20);
    while !server.is_finished() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(server.is_finished(), "SIGTERM must stop the accept loop");
    server.join().unwrap().unwrap();
    small_server.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&shed_dir);

    // Draining supervisor sheds further submissions.
    let shed = supervisor.submit(pnp_serve::job::JobRequest::new(
        SPEC.to_string(),
        pnp_serve::job::JobConfig::default(),
    ));
    assert_eq!(shed.expect_err("draining must shed").reason, "draining");
    let _ = std::fs::remove_dir_all(&state_dir);
}
