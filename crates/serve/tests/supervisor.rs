//! In-process supervision tests: the kill-the-worker acceptance
//! criterion (a killed job retried from its checkpoint reports totals
//! byte-identical to an uninterrupted run), watchdog deadlines, load
//! shedding, cancellation, permanent vs. transient failure handling, and
//! drain/restore across a supervisor restart.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use pnp_kernel::SearchConfig;
use pnp_serve::job::{Chaos, JobConfig, JobId, JobRequest, Verdict};
use pnp_serve::queue::QueuePolicy;
use pnp_serve::supervisor::{ServeConfig, Supervisor};

/// Three independent counters → ~1000 unique states: enough for several
/// checkpoint flushes at `checkpoint_every = 100`, small enough that a
/// debug-build attempt finishes in well under a second.
const COUNTERS: &str = r#"
system {
    global total = 0;

    component a {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }
    component b {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }
    component c {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }

    property totals: invariant total <= 3;
}
"#;

/// Evaluates `1 / zero` with `zero = 0` on the very first step: a
/// deterministic model error, classified permanent — retrying cannot
/// help.
const BROKEN: &str = r#"
system {
    global zero = 0;
    global boom = 0;

    component a {
        state work, done;
        end done;
        from work do boom = 1 / zero goto done;
    }

    property never: invariant boom == 0;
}
"#;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pnp-serve-test-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config(tag: &str) -> ServeConfig {
    ServeConfig {
        workers: 2,
        default_deadline: Duration::from_secs(20),
        max_attempts: 3,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(50),
        wedge_grace: Duration::from_secs(3),
        checkpoint_every: 100,
        state_dir: temp_state_dir(tag),
        ..ServeConfig::default()
    }
}

fn request(source: &str, config: JobConfig) -> JobRequest {
    JobRequest::new(source.to_string(), config)
}

const WAIT: Duration = Duration::from_secs(30);

/// The acceptance criterion: a job whose worker panics mid-attempt is
/// retried from its last checkpoint, and its final verdict and totals
/// (unique states, steps, max depth) are byte-identical to an
/// uninterrupted run of the same specification.
#[test]
fn killed_job_retries_from_checkpoint_with_identical_totals() {
    let supervisor = Supervisor::start(test_config("kill")).unwrap();

    let clean = supervisor
        .submit(request(COUNTERS, JobConfig::default()))
        .unwrap();
    assert_eq!(supervisor.wait_done(clean, WAIT), Some(Verdict::Passed));
    assert_eq!(supervisor.attempts(clean), Some(1));

    // Panic just before the third checkpoint flush, first attempt only:
    // two flushes are on disk, so the retry resumes mid-search.
    let killed = supervisor
        .submit(request(
            COUNTERS,
            JobConfig {
                chaos: Some(Chaos::PanicOnFlush {
                    flush: 3,
                    attempts: 1,
                }),
                ..JobConfig::default()
            },
        ))
        .unwrap();
    assert_eq!(supervisor.wait_done(killed, WAIT), Some(Verdict::Passed));
    assert_eq!(supervisor.attempts(killed), Some(2), "one retry expected");

    let reference = supervisor.results(clean).unwrap();
    let retried = supervisor.results(killed).unwrap();
    assert_eq!(reference.len(), retried.len());
    for (a, b) in reference.iter().zip(&retried) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.holds, b.holds);
        assert_eq!(
            (a.states, a.steps, a.max_depth),
            (b.states, b.steps, b.max_depth),
            "resumed totals must match the uninterrupted run for '{}'",
            a.name
        );
    }

    let stats = supervisor.stats();
    assert!(stats.panics_caught >= 1, "the panic must be caught");
    assert!(stats.retries >= 1, "a retry must be scheduled");
    supervisor.drain();
}

/// A watchdog-deadline kill takes the same retry path: the cancelled
/// attempt flushes a final snapshot, the retry resumes, and the totals
/// still match an uninterrupted run.
#[test]
fn deadline_tripped_job_resumes_and_matches() {
    let supervisor = Supervisor::start(test_config("deadline")).unwrap();

    let clean = supervisor
        .submit(request(COUNTERS, JobConfig::default()))
        .unwrap();
    assert_eq!(supervisor.wait_done(clean, WAIT), Some(Verdict::Passed));

    // Attempt 1 sleeps 400 ms per checkpoint flush against a 150 ms
    // deadline: the watchdog cancels it mid-run. Attempt 2 is clean.
    let killed = supervisor
        .submit(request(
            COUNTERS,
            JobConfig {
                deadline: Some(Duration::from_millis(150)),
                chaos: Some(Chaos::SlowFlushMs {
                    ms: 400,
                    attempts: 1,
                }),
                ..JobConfig::default()
            },
        ))
        .unwrap();
    assert_eq!(supervisor.wait_done(killed, WAIT), Some(Verdict::Passed));
    assert!(supervisor.attempts(killed).unwrap() >= 2);

    let reference = supervisor.results(clean).unwrap();
    let retried = supervisor.results(killed).unwrap();
    for (a, b) in reference.iter().zip(&retried) {
        assert_eq!(
            (a.states, a.steps, a.max_depth),
            (b.states, b.steps, b.max_depth)
        );
    }
    supervisor.drain();
}

/// A client-requested budget trip is deterministic: the job finishes as
/// inconclusive with partial statistics on its first attempt — no retry.
#[test]
fn over_budget_job_is_inconclusive_with_partial_stats() {
    let supervisor = Supervisor::start(test_config("budget")).unwrap();
    let mut config = JobConfig::default();
    config.config.max_states = 50;
    let id = supervisor.submit(request(COUNTERS, config)).unwrap();
    assert_eq!(supervisor.wait_done(id, WAIT), Some(Verdict::Inconclusive));
    assert_eq!(supervisor.attempts(id), Some(1), "budget trips never retry");
    let results = supervisor.results(id).unwrap();
    assert!(results[0].inconclusive);
    assert!(results[0].states > 0, "partial coverage must be reported");
    supervisor.drain();
}

/// A deterministic model error fails the job permanently on the first
/// attempt, with the structured reason preserved.
#[test]
fn model_error_fails_permanently_without_retry() {
    let supervisor = Supervisor::start(test_config("permanent")).unwrap();
    let id = supervisor
        .submit(request(BROKEN, JobConfig::default()))
        .unwrap();
    assert_eq!(supervisor.wait_done(id, WAIT), Some(Verdict::Failed));
    assert_eq!(supervisor.attempts(id), Some(1));
    let error = supervisor.error(id).unwrap();
    assert_eq!(error.kind, "permanent");
    assert!(
        error.reason.contains("division by zero"),
        "reason was: {}",
        error.reason
    );
    assert_eq!(supervisor.stats().retries, 0);
    supervisor.drain();
}

/// A fault that persists across every attempt exhausts the retry budget
/// and fails with a structured, non-retryable error.
#[test]
fn persistent_panic_exhausts_retries() {
    let supervisor = Supervisor::start(test_config("exhaust")).unwrap();
    let id = supervisor
        .submit(request(
            COUNTERS,
            JobConfig {
                max_attempts: Some(2),
                chaos: Some(Chaos::PanicOnFlush {
                    flush: 1,
                    attempts: 99,
                }),
                ..JobConfig::default()
            },
        ))
        .unwrap();
    assert_eq!(supervisor.wait_done(id, WAIT), Some(Verdict::Failed));
    assert_eq!(supervisor.attempts(id), Some(2));
    let error = supervisor.error(id).unwrap();
    assert_eq!(error.kind, "transient_exhausted");
    assert!(error.reason.contains("injected panic"));
    supervisor.drain();
}

/// Unparseable source is a permanent failure too — not a panic, not a
/// retry loop.
#[test]
fn garbage_source_fails_cleanly() {
    let supervisor = Supervisor::start(test_config("garbage")).unwrap();
    let id = supervisor
        .submit(request("system { component ???", JobConfig::default()))
        .unwrap();
    assert_eq!(supervisor.wait_done(id, WAIT), Some(Verdict::Failed));
    assert_eq!(supervisor.error(id).unwrap().kind, "permanent");
    supervisor.drain();
}

/// Admission control: past the queue watermark submissions are shed with
/// a structured retry hint while admitted jobs still finish.
#[test]
fn overload_sheds_with_retry_hint_while_in_flight_jobs_finish() {
    let mut config = test_config("shed");
    config.workers = 1;
    config.queue = QueuePolicy {
        capacity: 2,
        max_queued_bytes: 1 << 20,
        retry_after: Duration::from_millis(1234),
    };
    let supervisor = Supervisor::start(config).unwrap();

    // Occupy the single worker for ~1.5 s, then fill the queue.
    let wedged = supervisor
        .submit(request(
            COUNTERS,
            JobConfig {
                chaos: Some(Chaos::WedgeStartMs {
                    ms: 1500,
                    attempts: 1,
                }),
                ..JobConfig::default()
            },
        ))
        .unwrap();
    // Give the worker a moment to pick the job up so it does not count
    // against the queue watermark.
    let deadline = std::time::Instant::now() + WAIT;
    while supervisor.stats().submitted == 1
        && supervisor.health_json().contains("\"queue_depth\":1")
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued: Vec<JobId> = (0..2)
        .map(|_| {
            supervisor
                .submit(request(COUNTERS, JobConfig::default()))
                .unwrap()
        })
        .collect();

    let shed = supervisor
        .submit(request(COUNTERS, JobConfig::default()))
        .expect_err("the queue is full; this submission must shed");
    assert_eq!(shed.reason, "queue_full");
    // Pressure-scaled hint: a full queue (depth 2 of capacity 2) pushes
    // back at 3x the base of 1234 ms.
    assert_eq!(shed.retry_after, Duration::from_millis(3 * 1234));
    assert!(shed.queue_depth >= 2);
    assert!(supervisor.stats().shed >= 1);

    // Byte watermark sheds too, independently of the depth watermark.
    let mut config = test_config("shed-bytes");
    config.queue.max_queued_bytes = 8;
    let tiny = Supervisor::start(config).unwrap();
    let shed = tiny
        .submit(request(COUNTERS, JobConfig::default()))
        .expect_err("source larger than the byte watermark must shed");
    assert_eq!(shed.reason, "queue_bytes");
    tiny.drain();

    // Everything admitted still completes.
    assert_eq!(supervisor.wait_done(wedged, WAIT), Some(Verdict::Passed));
    for id in queued {
        assert_eq!(supervisor.wait_done(id, WAIT), Some(Verdict::Passed));
    }
    supervisor.drain();
}

/// Cooperative cancellation: a queued job cancels immediately, a running
/// job cancels at its next kernel budget check, and a done job reports
/// `cancelled: false`.
#[test]
fn cancellation_covers_queued_and_running_jobs() {
    let mut config = test_config("cancel");
    config.workers = 1;
    let supervisor = Supervisor::start(config).unwrap();

    let running = supervisor
        .submit(request(
            COUNTERS,
            JobConfig {
                chaos: Some(Chaos::WedgeStartMs {
                    ms: 400,
                    attempts: 1,
                }),
                ..JobConfig::default()
            },
        ))
        .unwrap();
    let queued = supervisor
        .submit(request(COUNTERS, JobConfig::default()))
        .unwrap();

    assert_eq!(supervisor.cancel(queued), Some(true));
    assert_eq!(supervisor.wait_done(queued, WAIT), Some(Verdict::Cancelled));
    assert_eq!(supervisor.cancel(queued), Some(false), "already terminal");

    assert_eq!(supervisor.cancel(running), Some(true));
    assert_eq!(
        supervisor.wait_done(running, WAIT),
        Some(Verdict::Cancelled)
    );
    assert_eq!(supervisor.cancel(JobId(999)), None);
    supervisor.drain();
}

/// Graceful drain: in-flight jobs are parked with their checkpoints
/// flushed, the queue is persisted, and a new supervisor on the same
/// state directory restores and finishes every job under its original
/// id.
#[test]
fn drain_persists_queue_and_restart_restores_it() {
    let mut config = test_config("drain");
    config.workers = 1;
    let state_dir = config.state_dir.clone();
    let supervisor = Supervisor::start(config.clone()).unwrap();

    let in_flight = supervisor
        .submit(request(
            COUNTERS,
            JobConfig {
                chaos: Some(Chaos::WedgeStartMs {
                    ms: 300,
                    attempts: 1,
                }),
                ..JobConfig::default()
            },
        ))
        .unwrap();
    let queued_a = supervisor
        .submit(request(COUNTERS, JobConfig::default()))
        .unwrap();
    let queued_b = supervisor
        .submit(request(COUNTERS, JobConfig::default()))
        .unwrap();

    supervisor.drain();
    assert!(
        state_dir.join("queue.pnpq").exists(),
        "the drained queue must be persisted"
    );
    let shed = supervisor
        .submit(request(COUNTERS, JobConfig::default()))
        .expect_err("a draining supervisor admits nothing");
    assert_eq!(shed.reason, "draining");

    let restarted = Supervisor::start(config).unwrap();
    assert_eq!(restarted.restored(), 3, "all three jobs must come back");
    for id in [in_flight, queued_a, queued_b] {
        assert_eq!(
            restarted.wait_done(id, WAIT),
            Some(Verdict::Passed),
            "restored job {id} must finish under its original id"
        );
    }
    assert!(
        !state_dir.join("queue.pnpq").exists(),
        "the restored queue file must be consumed"
    );
    restarted.drain();
}

/// A corrupt persisted queue is quarantined, not trusted and not fatal.
#[test]
fn corrupt_queue_file_is_quarantined() {
    let config = test_config("corrupt");
    std::fs::create_dir_all(&config.state_dir).unwrap();
    std::fs::write(config.state_dir.join("queue.pnpq"), b"not a queue").unwrap();
    let supervisor = Supervisor::start(config.clone()).unwrap();
    assert_eq!(supervisor.restored(), 0);
    assert!(config
        .state_dir
        .join("quarantine")
        .join("queue.pnpq.corrupt")
        .exists());
    assert_eq!(supervisor.stats().quarantined, 1);
    supervisor.drain();
}

/// A liveness workload: `arrives` holds under the default weak fairness
/// (the lone component keeps delivering until it may stop), while
/// `settles` is violated by the terminal stutter lasso — `delivered`
/// leaves 0 and never returns.
const DELIVERY: &str = r#"
system {
    global delivered = 0;

    component src {
        state run, done;
        end done;
        from run if delivered < 2 do delivered = delivered + 1 goto run;
        from run if delivered >= 2 goto done;
    }

    property arrives: ltl "<> ok" where ok = delivered == 2;
    property settles: ltl "[] <> zero" where zero = delivered == 0;
}
"#;

/// `threads` flows from the submission parameters through `SearchConfig`
/// into the kernel's swarmed CNDFS liveness search: a threaded LTL job
/// reports exactly the sequential verdicts, including the
/// replay-validated counterexample lasso for the violated property.
#[test]
fn threaded_ltl_jobs_report_sequential_verdicts() {
    let supervisor = Supervisor::start(test_config("ltl")).unwrap();
    let mut runs = Vec::new();
    for threads in [1, 4] {
        let id = supervisor
            .submit(request(
                DELIVERY,
                JobConfig {
                    config: SearchConfig {
                        threads,
                        ..SearchConfig::default()
                    },
                    ..JobConfig::default()
                },
            ))
            .unwrap();
        assert_eq!(
            supervisor.wait_done(id, WAIT),
            Some(Verdict::Violated),
            "threads={threads}"
        );
        let results = supervisor.results(id).expect("finished job has results");
        assert_eq!(results.len(), 2, "threads={threads}");
        assert!(results[0].holds, "threads={threads}: arrives must hold");
        assert!(
            !results[1].holds && !results[1].inconclusive,
            "threads={threads}: settles must be violated"
        );
        assert!(
            results[1].detail.contains("-- cycle --"),
            "threads={threads}: violated LTL property must carry a lasso"
        );
        runs.push(results);
    }
    let (seq, par) = (&runs[0], &runs[1]);
    for (s, p) in seq.iter().zip(par.iter()) {
        assert_eq!(
            s.holds, p.holds,
            "{}: verdict diverged across threads",
            s.name
        );
        assert_eq!(
            s.inconclusive, p.inconclusive,
            "{}: conclusiveness diverged across threads",
            s.name
        );
    }
    supervisor.drain();
}
