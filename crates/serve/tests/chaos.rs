//! Seeded storage-chaos tests: the fault-schedule matrix over the
//! simulated filesystem, harness determinism, the two checkpoint crash
//! windows the durability design must survive, and a supervisor running
//! end to end on [`SimFs`].

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use pnp_kernel::{load_latest_snapshot, FaultPlan, GenStore, SimFs, Snapshot, Vfs, VfsHandle};
use pnp_lang::{compile, VerifyOptions};
use pnp_net::{SimNet, WireRequest};
use pnp_serve::chaos::{
    results_fingerprint, run_schedule, ChaosOutcome, Schedule, CHAOS_SPEC, CHECKPOINT_EVERY,
};
use pnp_serve::cluster::{ClusterConfig, Coordinator};
use pnp_serve::job::{Chaos, JobConfig, JobRequest, Verdict};
use pnp_serve::supervisor::{ServeConfig, Supervisor};

fn sim_with_state(seed: u64) -> (Arc<SimFs>, VfsHandle) {
    let fs = Arc::new(SimFs::new(seed));
    fs.as_ref()
        .create_dir_all(&PathBuf::from("/state"))
        .unwrap();
    let vfs: VfsHandle = fs.clone();
    (fs, vfs)
}

/// The acceptance matrix: every seed × schedule recovers to results
/// byte-identical to an uninterrupted run (or, for the drain schedule,
/// to exactly the old or new queue), with no invariant violation.
#[test]
fn fault_schedule_matrix_recovers_byte_identical() {
    for schedule in Schedule::ALL {
        for seed in 0..8 {
            let outcome = run_schedule(schedule, seed)
                .unwrap_or_else(|e| panic!("{schedule} seed {seed}: {e}"));
            assert!(
                outcome.identical,
                "{schedule} seed {seed} diverged: {}",
                outcome.detail
            );
        }
    }
}

/// The harness itself is deterministic: the same seed reproduces the
/// same fault schedule, the same number of crashes and attempts, and the
/// same recovered fingerprint.
#[test]
fn same_seed_reproduces_the_same_chaos_run() {
    for schedule in Schedule::ALL {
        let a: ChaosOutcome = run_schedule(schedule, 7).unwrap();
        let b: ChaosOutcome = run_schedule(schedule, 7).unwrap();
        assert_eq!(a, b, "{schedule} is not deterministic");
    }
}

/// Commits two generations cleanly, then crashes a third commit inside
/// the given syscall window and returns the generation recovered after
/// reboot (with its payload checked against what that generation wrote).
fn recovered_generation_after_crash(seed: u64, crash_after_ops: u64) -> u64 {
    let (fs, vfs) = sim_with_state(seed);
    let base = PathBuf::from("/state/snap");
    let mut store = GenStore::new(vfs.clone(), &base);
    store.commit(b"gen-1").unwrap();
    store.commit(b"gen-2").unwrap();
    // The warmed store commits in exactly four syscalls: write tmp,
    // sync_file, rename, sync_dir. (A cold store would prepend scan
    // reads, shifting the crash window.)
    fs.set_plan(FaultPlan::crash_after(crash_after_ops));
    let result = store.commit(b"gen-3");
    assert!(
        fs.crashed(),
        "crash_after({crash_after_ops}) must trip mid-commit"
    );
    assert!(result.is_err());
    fs.reboot();
    let scan = GenStore::new(vfs, &base).scan().unwrap();
    let (generation, payload) = scan.latest().expect("a generation must survive");
    match generation {
        2 => assert_eq!(payload, b"gen-2"),
        3 => assert_eq!(payload, b"gen-3"),
        other => panic!("recovered impossible generation {other}"),
    }
    *generation
}

/// Acceptance criterion: a crash between the tmp-file write and the
/// rename (the tmp write is op 1, its fsync op 2, so both windows before
/// the rename) always recovers the previous good generation — the new
/// one never became visible.
#[test]
fn crash_between_tmp_write_and_rename_recovers_previous_generation() {
    for crash_after_ops in [1, 2] {
        for seed in 0..32 {
            assert_eq!(
                recovered_generation_after_crash(seed, crash_after_ops),
                2,
                "seed {seed}, crash after {crash_after_ops} commit ops"
            );
        }
    }
}

/// Acceptance criterion: a crash between the rename and the directory
/// fsync recovers to the previous *or* the new generation — the rename
/// is in the disk's unsynced window, so both outcomes are legal and the
/// seeds must exercise both. Either way the recovered payload is the
/// complete payload of that generation.
#[test]
fn crash_between_rename_and_dir_fsync_recovers_either_adjacent_generation() {
    let mut recovered_old = false;
    let mut recovered_new = false;
    for seed in 0..32 {
        match recovered_generation_after_crash(seed, 3) {
            2 => recovered_old = true,
            3 => recovered_new = true,
            _ => unreachable!(),
        }
    }
    assert!(recovered_old, "no seed lost the unsynced rename");
    assert!(recovered_new, "no seed preserved the unsynced rename");
}

/// A full lang-level run on SimFs with no faults armed: checkpoints land
/// as generations, and the newest one reloads as the search's final
/// flushed snapshot.
#[test]
fn checkpoints_on_simfs_land_as_loadable_generations() {
    let (_fs, vfs) = sim_with_state(11);
    let spec = compile(CHAOS_SPEC).unwrap();
    let base = PathBuf::from("/state/clean.pnpsnap");
    let options = VerifyOptions {
        checkpoint: Some((base.clone(), CHECKPOINT_EVERY)),
        vfs: Some(vfs.clone()),
        ..VerifyOptions::default()
    };
    let results = spec.verify_all_with_options(&options).unwrap();
    assert!(results.iter().all(|r| r.holds));
    let (generation, snapshot): (u64, Snapshot) = load_latest_snapshot(&vfs, &base)
        .unwrap()
        .expect("a checkpoint generation");
    assert!(
        generation >= 2,
        "several flushes expected, got {generation}"
    );
    assert_eq!(snapshot.tag(), "totals");
    assert!(snapshot.matches_program(spec.system().program()));
}

/// The supervisor runs end to end on the simulated filesystem: a job
/// whose worker panics mid-attempt retries from its generation
/// checkpoint and reports results byte-identical to a clean job; a drain
/// persists the queue to SimFs and a restarted supervisor (same disk)
/// restores it.
#[test]
fn supervisor_on_simfs_retries_drains_and_restores() {
    let (_fs, vfs) = sim_with_state(23);
    let config = ServeConfig {
        workers: 2,
        default_deadline: Duration::from_secs(20),
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(50),
        checkpoint_every: 100,
        state_dir: PathBuf::from("/state/serve"),
        vfs: vfs.clone(),
        ..ServeConfig::default()
    };
    let supervisor = Supervisor::start(config.clone()).unwrap();
    let wait = Duration::from_secs(30);

    let clean = supervisor
        .submit(JobRequest::new(
            CHAOS_SPEC.to_string(),
            JobConfig::default(),
        ))
        .unwrap();
    assert_eq!(supervisor.wait_done(clean, wait), Some(Verdict::Passed));

    let killed = supervisor
        .submit(JobRequest::new(
            CHAOS_SPEC.to_string(),
            JobConfig {
                chaos: Some(Chaos::PanicOnFlush {
                    flush: 3,
                    attempts: 1,
                }),
                ..JobConfig::default()
            },
        ))
        .unwrap();
    assert_eq!(supervisor.wait_done(killed, wait), Some(Verdict::Passed));
    assert_eq!(supervisor.attempts(killed), Some(2), "one retry expected");
    assert_eq!(
        results_fingerprint(&supervisor.results(clean).unwrap()),
        results_fingerprint(&supervisor.results(killed).unwrap()),
        "retried job must be byte-identical to the clean one"
    );

    // Park a queued job behind the drain, then restore it on a fresh
    // supervisor over the same simulated disk.
    let parked = supervisor
        .submit(JobRequest::new(
            CHAOS_SPEC.to_string(),
            JobConfig::default(),
        ))
        .unwrap();
    let _ = parked;
    supervisor.drain();
    let restarted = Supervisor::start(config).unwrap();
    let restored = restarted.restored();
    if restored > 0 {
        assert_eq!(
            restarted.wait_done(parked, wait),
            Some(Verdict::Passed),
            "restored job must finish under its original id"
        );
    }
    restarted.drain();
}

/// An orphaned spill scratch tree (the nested `job-N.spill/{frontier,
/// visited}/` layout a real out-of-core search leaves behind) is swept
/// — removed bottom-up, not quarantined — when a supervisor starts over
/// the state directory and no restored job owns it.
#[test]
fn startup_sweep_removes_orphaned_nested_spill_tree() {
    let (fs, vfs) = sim_with_state(31);
    let state = PathBuf::from("/state/serve");
    for sub in ["frontier", "visited"] {
        fs.as_ref()
            .create_dir_all(&state.join("job-7.spill").join(sub))
            .unwrap();
    }
    fs.as_ref()
        .write(
            &state.join("job-7.spill/visited/part00-run00000001.pnprun"),
            b"stale",
        )
        .unwrap();
    fs.as_ref()
        .write(
            &state.join("job-7.spill/frontier/chunk-00000001.pnprun"),
            b"stale",
        )
        .unwrap();
    let supervisor = Supervisor::start(ServeConfig {
        workers: 1,
        state_dir: state.clone(),
        vfs: vfs.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    assert!(
        vfs.list_dirs(&state).unwrap().is_empty(),
        "the orphaned spill tree must be gone"
    );
    assert!(
        supervisor.stats().tmp_swept >= 1,
        "the sweep must be counted"
    );
    supervisor.drain();
}

/// The coordinator's durable `cluster.pnpq` commit under a full disk:
/// ENOSPC anywhere inside `commit_replace` (the tmp write gets a torn
/// prefix, the rename never happens) must leave the previously committed
/// queue byte-intact, and the coordinator must keep serving — admitting
/// jobs and answering `/health` — so a later drain can retry and a
/// restarted coordinator restores every open job.
#[test]
fn enospc_mid_cluster_commit_keeps_previous_queue_and_coordinator_serving() {
    for seed in 0..8u64 {
        let (fs, vfs) = sim_with_state(seed);
        let net = SimNet::new(seed);
        let config = || ClusterConfig {
            state_dir: PathBuf::from("/state/coord"),
            vfs: vfs.clone(),
            ..ClusterConfig::default()
        };
        let coordinator = Coordinator::new(config(), Arc::new(net.endpoint("coord")));
        let register = WireRequest::post("/cluster/register?name=w1&peer=w1", Vec::new());
        assert_eq!(coordinator.handle(&register, 0).status, 200);
        let submit = |tenant: &str| {
            let request = WireRequest::post(
                format!("/jobs?tenant={tenant}"),
                CHAOS_SPEC.as_bytes().to_vec(),
            );
            let response = coordinator.handle(&request, 0);
            assert_eq!(response.status, 202, "seed {seed}: submission must land");
        };

        submit("a");
        coordinator.drain();
        let path = PathBuf::from("/state/coord/cluster.pnpq");
        let committed = fs
            .as_ref()
            .read(&path)
            .expect("clean drain persists the cluster queue");

        submit("b");
        fs.set_plan(FaultPlan {
            enospc_per_mille: 1000,
            ..FaultPlan::default()
        });
        coordinator.drain();
        fs.set_plan(FaultPlan::default());
        assert_eq!(
            fs.as_ref()
                .read(&path)
                .expect("seed {seed}: the previous queue must survive a full disk"),
            committed,
            "seed {seed}: a failed commit must leave the previous generation byte-intact"
        );

        assert_eq!(
            coordinator.handle(&WireRequest::get("/health"), 0).status,
            200,
            "seed {seed}: the coordinator must keep serving after the failed persist"
        );
        submit("c");
        coordinator.drain();
        let replaced = fs
            .as_ref()
            .read(&path)
            .expect("the retried drain commits cleanly");
        assert_ne!(
            replaced, committed,
            "seed {seed}: the retried drain must commit the grown job set"
        );

        let restarted = Coordinator::new(config(), Arc::new(net.endpoint("coord-2")));
        assert_eq!(restarted.stats().restored, 3, "seed {seed}");
    }
}
