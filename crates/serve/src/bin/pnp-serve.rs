//! The `pnp-serve` daemon: a supervised verification service.
//!
//! ```text
//! pnp-serve [--listen ADDR] [--state-dir DIR] [--workers N]
//!           [--queue-cap N] [--max-queued-bytes N] [--retry-after-ms N]
//!           [--deadline-ms N] [--max-attempts N] [--backoff-base-ms N]
//!           [--backoff-cap-ms N] [--wedge-grace-ms N]
//!           [--checkpoint-every N] [--budget SPEC] [--spill-at MB]
//!           [--retain-done N] [--seed N]
//!           [--cluster coordinator|worker] [--coordinator ADDR]
//!           [--worker-name NAME] [--self-addr ADDR]
//! ```
//!
//! `--spill-at MB` sets the service-level memory budget: any job without
//! its own `spill_at` spills its search state to disk (under the state
//! directory) once it crosses this estimate, instead of OOM-dying.
//! `--retain-done N` bounds both the coordinator's terminal-job map and
//! a worker gateway's settled-entry map.
//!
//! Without `--cluster` the daemon is a plain single-node service. With
//! `--cluster coordinator` it fronts a worker fleet: the job API shards
//! submissions across registered workers with fail-over and exactly-once
//! completion. With `--cluster worker` it registers with `--coordinator`
//! under `--worker-name`, announces `--self-addr` as its dial-back
//! address, executes dispatched jobs on the local supervisor, and pushes
//! completions back.
//!
//! SIGINT or SIGTERM triggers a graceful drain: admission stops,
//! in-flight attempts are cancelled (flushing final checkpoints), and
//! the queue (plus, on a coordinator, the cluster job set) is persisted
//! to the state directory for the next start.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pnp_kernel::watch_termination;
use pnp_net::RealTcp;
use pnp_serve::cluster::{wall_ms, ClusterConfig, Coordinator, WorkerGateway};
use pnp_serve::job::parse_budget_spec;
use pnp_serve::supervisor::{ServeConfig, Supervisor};
use pnp_serve::Node;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Role {
    Single,
    Coordinator,
    Worker,
}

fn usage() -> ! {
    eprintln!(
        "usage: pnp-serve [--listen ADDR] [--state-dir DIR] [--workers N] \
         [--queue-cap N] [--max-queued-bytes N] [--retry-after-ms N] \
         [--deadline-ms N] [--max-attempts N] [--backoff-base-ms N] \
         [--backoff-cap-ms N] [--wedge-grace-ms N] [--checkpoint-every N] \
         [--budget SPEC] [--spill-at MB] [--retain-done N] [--seed N] \
         [--cluster coordinator|worker] \
         [--coordinator ADDR] [--worker-name NAME] [--self-addr ADDR]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:7878");
    let mut config = ServeConfig::default();
    let mut role = Role::Single;
    let mut retain_done: Option<usize> = None;
    let mut coordinator_addr: Option<String> = None;
    let mut worker_name: Option<String> = None;
    let mut self_addr: Option<String> = None;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("pnp-serve: {flag} needs a value");
            usage();
        })
    };
    let parse_num = |flag: &str, v: String| -> u64 {
        v.parse().unwrap_or_else(|_| {
            eprintln!("pnp-serve: {flag} '{v}' is not a number");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = value(&mut args, "--listen"),
            "--state-dir" => config.state_dir = PathBuf::from(value(&mut args, "--state-dir")),
            "--workers" => {
                config.workers = parse_num("--workers", value(&mut args, "--workers")) as usize
            }
            "--queue-cap" => {
                config.queue.capacity =
                    parse_num("--queue-cap", value(&mut args, "--queue-cap")) as usize
            }
            "--max-queued-bytes" => {
                config.queue.max_queued_bytes =
                    parse_num("--max-queued-bytes", value(&mut args, "--max-queued-bytes")) as usize
            }
            "--retry-after-ms" => {
                config.queue.retry_after = Duration::from_millis(parse_num(
                    "--retry-after-ms",
                    value(&mut args, "--retry-after-ms"),
                ))
            }
            "--deadline-ms" => {
                config.default_deadline = Duration::from_millis(parse_num(
                    "--deadline-ms",
                    value(&mut args, "--deadline-ms"),
                ))
            }
            "--max-attempts" => {
                config.max_attempts =
                    parse_num("--max-attempts", value(&mut args, "--max-attempts")) as u32
            }
            "--backoff-base-ms" => {
                config.backoff_base = Duration::from_millis(parse_num(
                    "--backoff-base-ms",
                    value(&mut args, "--backoff-base-ms"),
                ))
            }
            "--backoff-cap-ms" => {
                config.backoff_cap = Duration::from_millis(parse_num(
                    "--backoff-cap-ms",
                    value(&mut args, "--backoff-cap-ms"),
                ))
            }
            "--wedge-grace-ms" => {
                config.wedge_grace = Duration::from_millis(parse_num(
                    "--wedge-grace-ms",
                    value(&mut args, "--wedge-grace-ms"),
                ))
            }
            "--checkpoint-every" => {
                config.checkpoint_every =
                    parse_num("--checkpoint-every", value(&mut args, "--checkpoint-every")) as usize
            }
            "--budget" => {
                let spec = value(&mut args, "--budget");
                config.default_search = parse_budget_spec(&spec, config.default_search)
                    .unwrap_or_else(|e| {
                        eprintln!("pnp-serve: {e}");
                        usage();
                    })
            }
            "--spill-at" => {
                config.spill_at_bytes =
                    Some((parse_num("--spill-at", value(&mut args, "--spill-at")) as usize) << 20)
            }
            "--retain-done" => {
                retain_done =
                    Some(parse_num("--retain-done", value(&mut args, "--retain-done")) as usize)
            }
            "--seed" => config.seed = parse_num("--seed", value(&mut args, "--seed")),
            "--cluster" => {
                role = match value(&mut args, "--cluster").as_str() {
                    "coordinator" => Role::Coordinator,
                    "worker" => Role::Worker,
                    other => {
                        eprintln!("pnp-serve: --cluster '{other}': want coordinator or worker");
                        usage();
                    }
                }
            }
            "--coordinator" => coordinator_addr = Some(value(&mut args, "--coordinator")),
            "--worker-name" => worker_name = Some(value(&mut args, "--worker-name")),
            "--self-addr" => self_addr = Some(value(&mut args, "--self-addr")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("pnp-serve: unknown flag '{other}'");
                usage();
            }
        }
    }

    if role == Role::Worker && (coordinator_addr.is_none() || worker_name.is_none()) {
        eprintln!("pnp-serve: --cluster worker needs --coordinator ADDR and --worker-name NAME");
        usage();
    }

    let term = watch_termination();
    let state_dir = config.state_dir.clone();
    let default_search = config.default_search;
    let queue_policy = config.queue;
    let supervisor = match Supervisor::start(config) {
        Ok(supervisor) => Arc::new(supervisor),
        Err(error) => {
            eprintln!("pnp-serve: failed to start: {error}");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&listen) {
        Ok(listener) => listener,
        Err(error) => {
            eprintln!("pnp-serve: cannot listen on {listen}: {error}");
            return ExitCode::from(2);
        }
    };
    let addr = listener
        .local_addr()
        .map_or(listen.clone(), |a| a.to_string());
    let restored = supervisor.restored();
    if restored > 0 {
        println!("pnp-serve: restored {restored} queued job(s)");
    }

    let node = match role {
        Role::Single => Node::single(supervisor),
        Role::Coordinator => {
            let mut cluster_config = ClusterConfig {
                state_dir,
                queue: queue_policy,
                default_search,
                ..ClusterConfig::default()
            };
            if let Some(retain) = retain_done {
                // One flag bounds both maps: the coordinator's terminal
                // jobs and (on workers) the gateway's settled entries.
                cluster_config.retain_done = retain;
                cluster_config.settled_retain = retain;
            }
            let coordinator = Arc::new(Coordinator::new(
                cluster_config,
                Arc::new(RealTcp::default()),
            ));
            let restored = coordinator.stats().restored;
            if restored > 0 {
                println!("pnp-serve: restored {restored} cluster job(s)");
            }
            // The coordinator advances on wall time: failure detection,
            // deadline polls, and dispatch all happen on this cadence.
            {
                let coordinator = Arc::clone(&coordinator);
                std::thread::spawn(move || {
                    while !term.is_raised() {
                        coordinator.tick(wall_ms());
                        std::thread::sleep(Duration::from_millis(250));
                    }
                });
            }
            println!("pnp-serve: coordinating a cluster");
            Node {
                supervisor,
                coordinator: Some(coordinator),
                gateway: None,
            }
        }
        Role::Worker => {
            let coordinator_addr = coordinator_addr.expect("checked above");
            let name = worker_name.expect("checked above");
            let self_peer = self_addr.unwrap_or_else(|| addr.clone());
            let mut gateway = WorkerGateway::new(&name, Arc::clone(&supervisor));
            if let Some(retain) = retain_done {
                gateway = gateway.with_settled_retain(retain);
            }
            let gateway = Arc::new(gateway);
            // The worker loop: register (and re-register whenever the
            // coordinator forgets us), heartbeat, push completions.
            {
                let gateway = Arc::clone(&gateway);
                let coordinator_addr = coordinator_addr.clone();
                std::thread::spawn(move || {
                    let transport = RealTcp::default();
                    let mut registered = false;
                    while !term.is_raised() {
                        if !registered {
                            registered = gateway
                                .register(&transport, &coordinator_addr, &self_peer)
                                .is_ok();
                        } else if let Ok(known) = gateway.heartbeat(&transport, &coordinator_addr) {
                            registered = known;
                        }
                        let _ = gateway.push_completions(&transport, &coordinator_addr);
                        std::thread::sleep(Duration::from_millis(500));
                    }
                });
            }
            println!("pnp-serve: worker '{name}' reporting to {coordinator_addr}");
            Node {
                supervisor,
                coordinator: None,
                gateway: Some(gateway),
            }
        }
    };

    println!("pnp-serve: listening on http://{addr}");
    match pnp_serve::serve_node(listener, Arc::new(node), term) {
        Ok(()) => {
            println!(
                "pnp-serve: drained on {}",
                term.signal_name().unwrap_or("signal")
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("pnp-serve: accept loop failed: {error}");
            ExitCode::from(2)
        }
    }
}
