//! The `pnp-serve` daemon: a supervised verification service.
//!
//! ```text
//! pnp-serve [--listen ADDR] [--state-dir DIR] [--workers N]
//!           [--queue-cap N] [--max-queued-bytes N] [--retry-after-ms N]
//!           [--deadline-ms N] [--max-attempts N] [--backoff-base-ms N]
//!           [--backoff-cap-ms N] [--wedge-grace-ms N]
//!           [--checkpoint-every N] [--budget SPEC] [--seed N]
//! ```
//!
//! SIGINT or SIGTERM triggers a graceful drain: admission stops,
//! in-flight attempts are cancelled (flushing final checkpoints), and
//! the queue is persisted to the state directory for the next start.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pnp_kernel::watch_termination;
use pnp_serve::job::parse_budget_spec;
use pnp_serve::supervisor::{ServeConfig, Supervisor};

fn usage() -> ! {
    eprintln!(
        "usage: pnp-serve [--listen ADDR] [--state-dir DIR] [--workers N] \
         [--queue-cap N] [--max-queued-bytes N] [--retry-after-ms N] \
         [--deadline-ms N] [--max-attempts N] [--backoff-base-ms N] \
         [--backoff-cap-ms N] [--wedge-grace-ms N] [--checkpoint-every N] \
         [--budget SPEC] [--seed N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut listen = String::from("127.0.0.1:7878");
    let mut config = ServeConfig::default();

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("pnp-serve: {flag} needs a value");
            usage();
        })
    };
    let parse_num = |flag: &str, v: String| -> u64 {
        v.parse().unwrap_or_else(|_| {
            eprintln!("pnp-serve: {flag} '{v}' is not a number");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = value(&mut args, "--listen"),
            "--state-dir" => config.state_dir = PathBuf::from(value(&mut args, "--state-dir")),
            "--workers" => {
                config.workers = parse_num("--workers", value(&mut args, "--workers")) as usize
            }
            "--queue-cap" => {
                config.queue.capacity =
                    parse_num("--queue-cap", value(&mut args, "--queue-cap")) as usize
            }
            "--max-queued-bytes" => {
                config.queue.max_queued_bytes =
                    parse_num("--max-queued-bytes", value(&mut args, "--max-queued-bytes")) as usize
            }
            "--retry-after-ms" => {
                config.queue.retry_after = Duration::from_millis(parse_num(
                    "--retry-after-ms",
                    value(&mut args, "--retry-after-ms"),
                ))
            }
            "--deadline-ms" => {
                config.default_deadline = Duration::from_millis(parse_num(
                    "--deadline-ms",
                    value(&mut args, "--deadline-ms"),
                ))
            }
            "--max-attempts" => {
                config.max_attempts =
                    parse_num("--max-attempts", value(&mut args, "--max-attempts")) as u32
            }
            "--backoff-base-ms" => {
                config.backoff_base = Duration::from_millis(parse_num(
                    "--backoff-base-ms",
                    value(&mut args, "--backoff-base-ms"),
                ))
            }
            "--backoff-cap-ms" => {
                config.backoff_cap = Duration::from_millis(parse_num(
                    "--backoff-cap-ms",
                    value(&mut args, "--backoff-cap-ms"),
                ))
            }
            "--wedge-grace-ms" => {
                config.wedge_grace = Duration::from_millis(parse_num(
                    "--wedge-grace-ms",
                    value(&mut args, "--wedge-grace-ms"),
                ))
            }
            "--checkpoint-every" => {
                config.checkpoint_every =
                    parse_num("--checkpoint-every", value(&mut args, "--checkpoint-every")) as usize
            }
            "--budget" => {
                let spec = value(&mut args, "--budget");
                config.default_search = parse_budget_spec(&spec, config.default_search)
                    .unwrap_or_else(|e| {
                        eprintln!("pnp-serve: {e}");
                        usage();
                    })
            }
            "--seed" => config.seed = parse_num("--seed", value(&mut args, "--seed")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("pnp-serve: unknown flag '{other}'");
                usage();
            }
        }
    }

    let term = watch_termination();
    let supervisor = match Supervisor::start(config) {
        Ok(supervisor) => Arc::new(supervisor),
        Err(error) => {
            eprintln!("pnp-serve: failed to start: {error}");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&listen) {
        Ok(listener) => listener,
        Err(error) => {
            eprintln!("pnp-serve: cannot listen on {listen}: {error}");
            return ExitCode::from(2);
        }
    };
    let addr = listener
        .local_addr()
        .map_or(listen.clone(), |a| a.to_string());
    let restored = supervisor.restored();
    if restored > 0 {
        println!("pnp-serve: restored {restored} queued job(s)");
    }
    println!("pnp-serve: listening on http://{addr}");

    match pnp_serve::serve(listener, supervisor, term) {
        Ok(()) => {
            println!(
                "pnp-serve: drained on {}",
                term.signal_name().unwrap_or("signal")
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("pnp-serve: accept loop failed: {error}");
            ExitCode::from(2)
        }
    }
}
