//! A minimal JSON emitter (and a field extractor for tests and simple
//! clients). No external dependencies, matching the workspace's
//! vendored-shim policy: the service's responses are flat, so a tiny
//! writer beats a serialization framework.

use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incrementally built JSON object.
#[derive(Debug, Default)]
pub struct Obj {
    out: String,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    fn key(&mut self, key: &str) -> &mut String {
        if self.out.is_empty() {
            self.out.push('{');
        } else {
            self.out.push(',');
        }
        let _ = write!(self.out, "\"{}\":", escape(key));
        &mut self.out
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Obj {
        let escaped = escape(value);
        let _ = write!(self.key(key), "\"{escaped}\"");
        self
    }

    /// Adds an integer field.
    pub fn num(mut self, key: &str, value: impl Into<i128>) -> Obj {
        let value = value.into();
        let _ = write!(self.key(key), "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Obj {
        let _ = write!(self.key(key), "{value}");
        self
    }

    /// Adds a field whose value is already-rendered JSON (an object or
    /// array built elsewhere).
    pub fn raw(mut self, key: &str, value: &str) -> Obj {
        self.key(key).push_str(value);
        self
    }

    /// Adds a field only when `value` is `Some`.
    pub fn opt_str(self, key: &str, value: Option<&str>) -> Obj {
        match value {
            Some(v) => self.str(key, v),
            None => self,
        }
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        if self.out.is_empty() {
            "{}".to_string()
        } else {
            let mut out = self.out;
            out.push('}');
            out
        }
    }
}

/// Renders an array of already-rendered JSON values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Extracts the string value of the *first* occurrence of `"key":"…"` in
/// `json`. Good enough for the flat objects this service emits (no
/// nested objects sharing key names before the wanted field); not a
/// general JSON parser. Unescapes the common escapes [`escape`] emits.
pub fn find_str(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{}\":\"", escape(key));
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
}

/// Extracts the integer value of the first `"key":N` in `json`.
pub fn find_num(json: &str, key: &str) -> Option<i64> {
    let needle = format!("\"{}\":", escape(key));
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_render_and_roundtrip() {
        let json = Obj::new()
            .str("id", "j-1")
            .str("detail", "line one\nline \"two\"")
            .num("states", 42)
            .bool("ok", true)
            .raw("items", &array(vec!["1".into(), "2".into()]))
            .build();
        assert_eq!(find_str(&json, "id").as_deref(), Some("j-1"));
        assert_eq!(
            find_str(&json, "detail").as_deref(),
            Some("line one\nline \"two\"")
        );
        assert_eq!(find_num(&json, "states"), Some(42));
        assert!(json.contains("\"items\":[1,2]"));
        assert!(json.contains("\"ok\":true"));
    }

    #[test]
    fn empty_object_and_control_chars() {
        assert_eq!(Obj::new().build(), "{}");
        let json = Obj::new().str("s", "a\u{1}b").build();
        assert_eq!(json, "{\"s\":\"a\\u0001b\"}");
        assert_eq!(find_str(&json, "s").as_deref(), Some("a\u{1}b"));
    }
}
