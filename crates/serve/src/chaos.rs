//! The seeded storage-chaos harness: full
//! verify-checkpoint-crash-restart-resume loops and drain/restore cycles
//! over the simulated filesystem ([`SimFs`]), with every fault schedule
//! derived from a seed.
//!
//! This is FoundationDB-style simulation testing for the stack's durable
//! paths. A schedule arms [`FaultPlan`]s — crashes at seeded syscall
//! boundaries, ENOSPC/EIO draws — against a verification (or queue
//! persistence) loop, reboots the simulated disk after each crash, and
//! checks the robustness invariants end to end:
//!
//! 1. **Byte-identical recovery**: a crash-interrupted verification,
//!    resumed from its newest valid checkpoint generation, reports the
//!    same verdicts and totals (states, steps, max depth, detail) as an
//!    uninterrupted run.
//! 2. **No wrong verdicts**: every storage fault surfaces as a clean
//!    transient failure (retry) — never as a permanent failure, a wrong
//!    verdict, or a panic.
//! 3. **All-or-nothing queue persistence**: a crash anywhere inside the
//!    drain's `queue.pnpq` commit leaves either the complete old queue or
//!    the complete new one on disk, never a torn file.
//! 4. **Out-of-core parity**: a search forced to spill its visited set
//!    and frontier to the (faulty) simulated disk converges to the same
//!    verdict fingerprint as the in-memory baseline, with ENOSPC during
//!    a spill or merge degrading to an honest memory trip — never a
//!    wrong verdict.
//!
//! Both `crates/serve/tests/chaos.rs` and the `pnp-bench` `chaos` binary
//! (the CI smoke matrix) drive the harness through [`run_schedule`].

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use pnp_kernel::{
    commit_replace, fnv64, load_latest_snapshot, BudgetKind, FailureClass, FaultPlan, JobOutcome,
    SearchConfig, SimFs, SplitMix64, Vfs, VfsHandle,
};
use pnp_lang::{compile, PropertyResult, VerifyOptions};

use crate::job::{JobConfig, JobRequest};
use crate::queue::{decode_queue, encode_queue, PersistedJob};

/// The specification every chaos schedule verifies: three independent
/// counters, ~1000 unique states — enough for a dozen checkpoint flushes
/// at [`CHECKPOINT_EVERY`], small enough that one attempt is a few
/// milliseconds in a debug build.
pub const CHAOS_SPEC: &str = r#"
system {
    global total = 0;

    component a {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }
    component b {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }
    component c {
        var count = 0;
        state work, done;
        end done;
        from work if count < 8 do count = count + 1 goto work;
        from work if count >= 8 do total = total + 1 goto done;
    }

    property totals: invariant total <= 3;
}
"#;

/// Checkpoint flush cadence (newly interned states) for chaos runs.
pub const CHECKPOINT_EVERY: usize = 64;

/// Reboots after which a schedule stops arming new faults, so every run
/// converges; the invariants are still checked on the clean tail.
const MAX_FAULTY_REBOOTS: u32 = 25;

/// Attempts after which the ENOSPC/EIO schedule goes clean.
const MAX_FAULTY_ATTEMPTS: u32 = 10;

/// Hard cap on recovery attempts — tripping it is a harness failure.
const MAX_ATTEMPTS: u32 = 200;

/// A seeded fault schedule the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Crash the process at a seeded syscall boundary during a
    /// checkpointed verification; reboot; resume; repeat.
    CheckpointCrash,
    /// Crash inside the drain's `queue.pnpq` commit; reboot; restore.
    DrainCrash,
    /// Seeded ENOSPC and EIO draws against checkpoint writes.
    Enospc,
    /// Crash at a seeded syscall boundary while an out-of-core search
    /// (tiny spill budget) is writing visited partitions and frontier
    /// chunks; reboot; resume; repeat.
    SpillCrash,
    /// Seeded ENOSPC and EIO draws against an out-of-core search's
    /// spill and merge writes: ENOSPC must degrade to an honest memory
    /// trip, never a wrong verdict.
    EnospcDuringMerge,
    /// Crash *after* the search has spilled, so recovery exercises the
    /// disk-backed resume path (rebuilding the on-disk visited set from
    /// the checkpoint).
    ResumeAfterSpill,
}

impl Schedule {
    /// Every schedule, in matrix order.
    pub const ALL: [Schedule; 6] = [
        Schedule::CheckpointCrash,
        Schedule::DrainCrash,
        Schedule::Enospc,
        Schedule::SpillCrash,
        Schedule::EnospcDuringMerge,
        Schedule::ResumeAfterSpill,
    ];

    /// The schedule's stable name (CLI and report rows).
    pub fn as_str(self) -> &'static str {
        match self {
            Schedule::CheckpointCrash => "checkpoint-crash",
            Schedule::DrainCrash => "drain-crash",
            Schedule::Enospc => "enospc",
            Schedule::SpillCrash => "spill-crash",
            Schedule::EnospcDuringMerge => "enospc-during-merge",
            Schedule::ResumeAfterSpill => "resume-after-spill",
        }
    }

    /// Whether this schedule runs the search out of core (tiny spill
    /// budget, scratch directory on the simulated disk).
    fn spills(self) -> bool {
        matches!(
            self,
            Schedule::SpillCrash | Schedule::EnospcDuringMerge | Schedule::ResumeAfterSpill
        )
    }

    /// Parses a schedule name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<Schedule, String> {
        Schedule::ALL
            .into_iter()
            .find(|s| s.as_str() == name)
            .ok_or_else(|| {
                format!(
                    "unknown chaos schedule '{name}' (want one of: {})",
                    Schedule::ALL.map(|s| s.as_str()).join(", ")
                )
            })
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one seeded schedule run observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// The schedule that ran.
    pub schedule: Schedule,
    /// The seed it ran under.
    pub seed: u64,
    /// Simulated crashes injected (and reboots performed).
    pub reboots: u32,
    /// Verification (or commit) attempts, including the final clean one.
    pub attempts: u32,
    /// Whether the recovered end state matched the uninterrupted
    /// reference exactly (verdict fingerprints for verification
    /// schedules; old-or-new queue content for the drain schedule).
    pub identical: bool,
    /// One line of context for the report table.
    pub detail: String,
}

/// A stable fingerprint over everything a caller observes in a result
/// set: names, verdicts, totals, and rendered details. Two runs with the
/// same fingerprint are indistinguishable to a client.
pub fn results_fingerprint(results: &[PropertyResult]) -> u64 {
    let mut rendered = String::new();
    for r in results {
        rendered.push_str(&format!(
            "{}|{}|{}|{}|{}|{}|{}|{}\n",
            r.name, r.holds, r.inconclusive, r.approx, r.states, r.steps, r.max_depth, r.detail
        ));
    }
    fnv64(rendered.as_bytes())
}

/// Runs one seeded schedule and checks its invariants.
///
/// # Errors
///
/// Returns a description of the first violated invariant — a storage
/// fault classified permanent, a torn queue file, or a run that failed
/// to converge — followed by a one-line repro command.
pub fn run_schedule(schedule: Schedule, seed: u64) -> Result<ChaosOutcome, String> {
    let result = match schedule {
        Schedule::DrainCrash => drain_crash_roundtrip(seed),
        _ => verify_recovery_loop(schedule, seed),
    };
    result.map_err(|e| {
        format!(
            "{e}\n  repro: {}",
            crate::chaosgen::matrix_repro(schedule.as_str(), seed)
        )
    })
}

/// The verify-checkpoint-crash-restart-resume loop: arms the schedule's
/// faults, reboots after every simulated crash, resumes from the newest
/// valid checkpoint generation, and compares the converged results
/// against an uninterrupted baseline.
fn verify_recovery_loop(schedule: Schedule, seed: u64) -> Result<ChaosOutcome, String> {
    let spec = compile(CHAOS_SPEC).map_err(|e| format!("chaos spec does not compile: {e}"))?;
    let baseline = spec
        .verify_all()
        .map_err(|e| format!("baseline run failed: {e}"))?;
    let baseline_fp = results_fingerprint(&baseline);

    let fs = Arc::new(SimFs::new(seed));
    let state = PathBuf::from("/state");
    fs.as_ref()
        .create_dir_all(&state)
        .map_err(|e| format!("simfs mkdir: {e}"))?;
    let vfs: VfsHandle = fs.clone();
    let base = state.join("chaos.pnpsnap");
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x6368_616f_735f_7631);
    let mut reboots = 0u32;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if attempts > MAX_ATTEMPTS {
            return Err(format!(
                "{schedule} seed {seed}: no convergence after {MAX_ATTEMPTS} attempts"
            ));
        }
        match schedule {
            Schedule::CheckpointCrash if reboots < MAX_FAULTY_REBOOTS => {
                fs.set_plan(FaultPlan::crash_after(3 + rng.gen_index(48) as u64));
            }
            Schedule::Enospc if attempts <= MAX_FAULTY_ATTEMPTS => {
                fs.set_plan(FaultPlan {
                    enospc_per_mille: 250,
                    eio_per_mille: 120,
                    ..FaultPlan::default()
                });
            }
            // An out-of-core attempt does far more syscalls than a
            // checkpoint-only one: a wide crash window lands inside
            // partition flushes, merges, and frontier chunk commits.
            Schedule::SpillCrash if reboots < MAX_FAULTY_REBOOTS => {
                fs.set_plan(FaultPlan::crash_after(3 + rng.gen_index(192) as u64));
            }
            Schedule::EnospcDuringMerge if attempts <= MAX_FAULTY_ATTEMPTS => {
                fs.set_plan(FaultPlan {
                    enospc_per_mille: 120,
                    eio_per_mille: 60,
                    ..FaultPlan::default()
                });
            }
            // A late crash window: by then the tiny budget has forced
            // the spill, so every reboot resumes a DiskExact checkpoint.
            Schedule::ResumeAfterSpill if reboots < MAX_FAULTY_REBOOTS => {
                fs.set_plan(FaultPlan::crash_after(150 + rng.gen_index(350) as u64));
            }
            _ => fs.set_plan(FaultPlan::default()),
        }

        // Recovery: newest generation that decodes and matches the
        // program; a damaged or missing checkpoint restarts from scratch.
        let resume = load_latest_snapshot(&vfs, &base)
            .ok()
            .flatten()
            .map(|(_, snapshot)| snapshot)
            .filter(|s| s.matches_program(spec.system().program()));
        let options = VerifyOptions {
            checkpoint: Some((base.clone(), CHECKPOINT_EVERY)),
            resume,
            vfs: Some(vfs.clone()),
            config: if schedule.spills() {
                // A budget of a few KiB forces the spill within the
                // first checkpoint interval, so the whole search runs
                // out of core on the faulty simulated disk.
                SearchConfig {
                    spill_at_bytes: Some(4 << 10),
                    ..SearchConfig::default()
                }
            } else {
                SearchConfig::default()
            },
            spill_dir: schedule.spills().then(|| state.join("spill")),
            ..VerifyOptions::default()
        };
        match spec.verify_all_with_options(&options) {
            Ok(results) => {
                if let Some(stop) = results.iter().find_map(|r| r.stop) {
                    // Graceful degradation under disk faults: ENOSPC on
                    // a spill write must surface as an honest memory
                    // trip — partial stats, no verdict — and the next
                    // attempt resumes from the flushed checkpoint.
                    if stop != BudgetKind::Memory {
                        return Err(format!(
                            "{schedule} seed {seed}: attempt stopped on {stop:?} \
                             (only a memory trip is an honest degradation here)"
                        ));
                    }
                    if fs.crashed() {
                        fs.reboot();
                        reboots += 1;
                    }
                    continue;
                }
                fs.set_plan(FaultPlan::default());
                let fp = results_fingerprint(&results);
                return Ok(ChaosOutcome {
                    schedule,
                    seed,
                    reboots,
                    attempts,
                    identical: fp == baseline_fp,
                    detail: format!(
                        "{} states, fingerprint {:#018x}",
                        results.first().map_or(0, |r| r.states),
                        fp
                    ),
                });
            }
            Err(error) => {
                // Invariant 2: a storage fault is only ever a transient,
                // retryable failure — anything else is a wrong verdict
                // in the making.
                match JobOutcome::classify_error(&error.0) {
                    JobOutcome::Failed {
                        class: FailureClass::Transient,
                        ..
                    } => {}
                    other => {
                        return Err(format!(
                            "{schedule} seed {seed}: storage fault classified {other:?} \
                             (must be transient): {error}"
                        ))
                    }
                }
                if fs.crashed() {
                    fs.reboot();
                    reboots += 1;
                }
            }
        }
    }
}

/// Two sample queues with distinct job sets for the drain schedule (and
/// the generated queue arena in [`crate::chaosgen`]).
pub(crate) fn sample_queues() -> (Vec<PersistedJob>, Vec<PersistedJob>) {
    let job = |id: u64, source: &str| PersistedJob {
        id,
        attempts: 0,
        request: JobRequest::new(source.to_string(), JobConfig::default()),
    };
    let old = vec![job(1, "system { global x = 0; }"), job(2, CHAOS_SPEC)];
    let new = vec![
        job(2, CHAOS_SPEC),
        job(3, "system { global y = 1; }"),
        job(4, "system { global z = 2; }"),
    ];
    (old, new)
}

/// The drain/restore cycle: a known-good `queue.pnpq` on disk, then a
/// crash at a seeded syscall boundary inside the commit of its
/// replacement. After reboot the file must decode to exactly the old or
/// exactly the new job set — never a torn or partial one.
fn drain_crash_roundtrip(seed: u64) -> Result<ChaosOutcome, String> {
    let fs = Arc::new(SimFs::new(seed));
    let state = PathBuf::from("/state");
    fs.as_ref()
        .create_dir_all(&state)
        .map_err(|e| format!("simfs mkdir: {e}"))?;
    let path = state.join("queue.pnpq");
    let (old_jobs, new_jobs) = sample_queues();

    commit_replace(fs.as_ref(), &path, &encode_queue(&old_jobs))
        .map_err(|e| format!("clean commit of the old queue failed: {e}"))?;

    // A commit is 4 syscalls (write tmp, fsync tmp, rename, fsync dir);
    // crash at every boundary across seeds, including "no crash".
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x6472_6169_6e5f_7631);
    let crash_ops = rng.gen_index(6) as u64;
    fs.set_plan(FaultPlan::crash_after(crash_ops));
    let committed = commit_replace(fs.as_ref(), &path, &encode_queue(&new_jobs));
    let mut reboots = 0u32;
    if fs.crashed() {
        fs.reboot();
        reboots = 1;
    } else {
        committed.map_err(|e| format!("uncrashed commit failed: {e}"))?;
        fs.set_plan(FaultPlan::default());
    }

    let bytes = fs
        .as_ref()
        .read(&path)
        .map_err(|e| format!("queue vanished after crash (old copy lost): {e}"))?;
    // Invariant 3: whatever the crash exposed decodes cleanly...
    let recovered = decode_queue(&bytes)
        .map_err(|e| format!("torn queue after crash at op {crash_ops}: {e}"))?;
    // ...and is exactly one of the two committed queues.
    let ids: Vec<u64> = recovered.iter().map(|j| j.id).collect();
    let old_ids: Vec<u64> = old_jobs.iter().map(|j| j.id).collect();
    let new_ids: Vec<u64> = new_jobs.iter().map(|j| j.id).collect();
    let identical = ids == old_ids || ids == new_ids;
    Ok(ChaosOutcome {
        schedule: Schedule::DrainCrash,
        seed,
        reboots,
        attempts: 1,
        identical,
        detail: format!(
            "crash after {crash_ops} ops → {} queue",
            if ids == new_ids { "new" } else { "old" }
        ),
    })
}
