//! Randomized fault-schedule search with deterministic replay and
//! automatic shrinking — the generator that upgrades the hand-written
//! chaos matrices ([`crate::chaos`], [`crate::netchaos`]) from
//! "replays known bugs" to "hunts unknown ones".
//!
//! A [`FaultSchedule`] is a small, serializable text file: an arena, a
//! seed, and a list of *exact* injections — storage faults at precise
//! [`SimFs`] operation indices, network faults at precise
//! [`pnp_net::SimNet`] delivery indices, and worker crash/restart
//! events at precise virtual-time steps. Because both fault counters
//! are monotonic for the life of a run (they keep counting across
//! reboots), one schedule file describes one whole multi-crash run,
//! bit for bit.
//!
//! The pipeline:
//!
//! 1. [`generate`] derives a schedule from a single [`SplitMix64`] seed
//!    and an intensity [`Profile`].
//! 2. [`run_generated`] drives it through the matching harness arena
//!    and checks the full invariant oracle (see [`ORACLES`]). A failure
//!    carries a stable oracle name — the failure's *identity* — plus
//!    the trace of every fault that actually fired.
//! 3. On failure, [`shrink_schedule`] runs a ddmin-style shrinker
//!    ([`shrink_with`]) that deletes and coarsens injections while the
//!    same oracle keeps failing, down to a 1-minimal schedule: removing
//!    any single remaining injection makes the run pass or changes the
//!    failure.
//! 4. The minimized schedule is written to a file that [`replay`] (and
//!    the committed `chaos-corpus/` CI step) re-runs deterministically.
//!
//! [`search`] ties it together: a bounded seeded loop of
//! generate → run → shrink, used by the `chaos_search` bench binary's
//! `search` subcommand and the nightly CI job. To prove the detector
//! end to end, a schedule file may also arm a [`BugPlant`] — a known
//! historical bug re-introduced at runtime — and declare the oracle it
//! `expect`s to fail; such a file replays green exactly while the
//! search still catches the planted bug.

use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pnp_kernel::{
    commit_replace, load_latest_snapshot, tmp_sibling, BudgetKind, FailureClass, FsFaultKind,
    FsInjection, JobOutcome, SearchConfig, SimFs, SplitMix64, Vfs, VfsHandle,
};
use pnp_lang::{compile, VerifyOptions};
use pnp_net::{ClientError, NetFaultKind, NetInjection, SimNet, SubmitClient};

use crate::chaos::{results_fingerprint, sample_queues, CHAOS_SPEC, CHECKPOINT_EVERY};
use crate::netchaos::{
    baseline_fingerprint, make_coordinator, migration_cluster_config, SimWorker, SMALL_SPEC,
    STEP_MS,
};
use crate::queue::{decode_queue, encode_queue};

/// Every invariant oracle a generated run checks, with the stable name
/// a [`GenFailure`] carries. The name is the failure's identity: the
/// shrinker only keeps deletions that preserve it, and a corpus file's
/// `expect` directive names the oracle it must keep tripping.
pub const ORACLES: [(&str, &str); 12] = [
    (
        "fingerprint-divergence",
        "a recovered/adopted result set is not byte-identical to the fault-free baseline",
    ),
    (
        "dishonest-stop",
        "a faulted attempt stopped on a budget other than an honest memory trip",
    ),
    (
        "misclassified-error",
        "a storage fault surfaced as anything but a transient, retryable failure",
    ),
    (
        "no-convergence",
        "the run did not converge within the attempt/step ceiling",
    ),
    (
        "torn-queue",
        "the persisted queue no longer decodes after a crash",
    ),
    (
        "queue-content",
        "the recovered queue is neither the complete old nor the complete new job set",
    ),
    (
        "lost-commit",
        "a commit reported success but the old content came back after a crash",
    ),
    (
        "queue-lost",
        "the queue file vanished entirely (old copy lost)",
    ),
    ("lost-job", "a submitted job has no completion"),
    ("missing-results", "a completion carries no result payload"),
    (
        "completion-count",
        "completions recorded != jobs submitted (exactly-once broken)",
    ),
    (
        "submit-failed",
        "a submission failed fatally through the retrying client",
    ),
];

/// The setup-error oracle: the harness itself could not run (a spec
/// that does not compile, an injection aimed at a target the arena does
/// not have). Deterministic, so a search surfaces it loudly on
/// iteration one rather than masking it as a pass.
pub const HARNESS_ORACLE: &str = "harness-setup";

/// Which harness a schedule drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arena {
    /// The checkpointed verify-crash-resume loop on a seeded [`SimFs`]
    /// (the generated analogue of the `checkpoint-crash`/`enospc`
    /// schedules).
    Storage,
    /// The same loop forced out of core: tiny spill budget, visited
    /// partitions and frontier chunks on the faulty simulated disk.
    StorageSpill,
    /// The `queue.pnpq` commit/recover cycle (the generated analogue of
    /// `drain-crash`), where the all-or-nothing promise lives.
    Queue,
    /// The virtual-time cluster: a real coordinator, two simulated
    /// workers with durable disks, and a seeded [`SimNet`] — network,
    /// storage, crash, and timing faults combined in one run.
    Cluster,
}

impl Arena {
    /// Every arena, in matrix order.
    pub const ALL: [Arena; 4] = [
        Arena::Storage,
        Arena::StorageSpill,
        Arena::Queue,
        Arena::Cluster,
    ];

    /// The stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            Arena::Storage => "storage",
            Arena::StorageSpill => "storage-spill",
            Arena::Queue => "queue",
            Arena::Cluster => "cluster",
        }
    }

    /// Parses a serialized name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<Arena, String> {
        Arena::ALL
            .into_iter()
            .find(|a| a.as_str() == name)
            .ok_or_else(|| {
                format!(
                    "unknown arena '{name}' (want one of: {})",
                    Arena::ALL.map(|a| a.as_str()).join(", ")
                )
            })
    }
}

impl fmt::Display for Arena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How hard [`generate`] leans on a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// 1–3 injections: single-fault scenarios.
    Light,
    /// 3–8 injections: the default search intensity.
    Medium,
    /// 8–16 injections: compound multi-crash runs.
    Heavy,
}

impl Profile {
    /// Every profile.
    pub const ALL: [Profile; 3] = [Profile::Light, Profile::Medium, Profile::Heavy];

    /// The stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            Profile::Light => "light",
            Profile::Medium => "medium",
            Profile::Heavy => "heavy",
        }
    }

    /// Parses a serialized name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<Profile, String> {
        Profile::ALL
            .into_iter()
            .find(|p| p.as_str() == name)
            .ok_or_else(|| {
                format!(
                    "unknown profile '{name}' (want one of: {})",
                    Profile::ALL.map(|p| p.as_str()).join(", ")
                )
            })
    }

    /// Inclusive injection-count range.
    fn injection_range(self) -> (usize, usize) {
        match self {
            Profile::Light => (1, 3),
            Profile::Medium => (3, 8),
            Profile::Heavy => (8, 16),
        }
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a storage injection or worker event aims at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Target {
    /// The single simulated disk of the storage/queue arenas.
    Main,
    /// Cluster worker `w1` (its disk, or its process for worker events).
    W1,
    /// Cluster worker `w2`.
    W2,
}

impl Target {
    /// The stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            Target::Main => "main",
            Target::W1 => "w1",
            Target::W2 => "w2",
        }
    }

    /// Parses a serialized name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<Target, String> {
        match name {
            "main" => Ok(Target::Main),
            "w1" => Ok(Target::W1),
            "w2" => Ok(Target::W2),
            other => Err(format!(
                "unknown injection target '{other}' (want main, w1, or w2)"
            )),
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A timed worker-process event (cluster arena only): the timing-fault
/// axis of the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkerEvent {
    /// Kill the worker process: unreachable, memory wiped, disk kept.
    Crash,
    /// Boot it back up (no-op when it is not down).
    Restart,
}

impl WorkerEvent {
    /// The stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerEvent::Crash => "crash",
            WorkerEvent::Restart => "restart",
        }
    }
}

impl fmt::Display for WorkerEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One exact injection of a [`FaultSchedule`]. Serialized one per line:
///
/// ```text
/// fs main crash @117
/// net drop-response @12
/// worker w1 crash @5
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// A storage fault on the `at_op`-th [`Vfs`] operation of the
    /// target's [`SimFs`] (1-based, monotonic across reboots).
    Fs {
        /// Whose disk.
        target: Target,
        /// What fires.
        kind: FsFaultKind,
        /// The 1-based operation index.
        at_op: u64,
    },
    /// A network fault on the `at_delivery`-th exchange attempted on
    /// the run's [`SimNet`] (1-based, any endpoint).
    Net {
        /// What fires.
        kind: NetFaultKind,
        /// The 1-based delivery index.
        at_delivery: u64,
    },
    /// A worker-process event at the `at_step`-th virtual harness step.
    Worker {
        /// Which worker.
        target: Target,
        /// Crash or restart.
        event: WorkerEvent,
        /// The 1-based virtual step.
        at_step: u64,
    },
}

impl Injection {
    /// The injection's index (op, delivery, or step) — the value the
    /// shrinker coarsens.
    pub fn at(self) -> u64 {
        match self {
            Injection::Fs { at_op, .. } => at_op,
            Injection::Net { at_delivery, .. } => at_delivery,
            Injection::Worker { at_step, .. } => at_step,
        }
    }

    /// The same injection re-aimed at index `at`.
    pub fn with_at(self, at: u64) -> Injection {
        match self {
            Injection::Fs { target, kind, .. } => Injection::Fs {
                target,
                kind,
                at_op: at,
            },
            Injection::Net { kind, .. } => Injection::Net {
                kind,
                at_delivery: at,
            },
            Injection::Worker { target, event, .. } => Injection::Worker {
                target,
                event,
                at_step: at,
            },
        }
    }

    /// Canonical ordering key, so generated and shrunk schedules encode
    /// byte-identically regardless of construction order.
    fn sort_key(self) -> (u8, u64, u8, u8) {
        match self {
            Injection::Fs {
                target,
                kind,
                at_op,
            } => (0, at_op, target as u8, kind as u8),
            Injection::Net { kind, at_delivery } => (1, at_delivery, 0, kind as u8),
            Injection::Worker {
                target,
                event,
                at_step,
            } => (2, at_step, target as u8, event as u8),
        }
    }

    /// Parses one serialized injection line (already split on
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed part.
    fn parse_tokens(tokens: &[&str]) -> Result<Injection, String> {
        let at = |token: &str| -> Result<u64, String> {
            let digits = token
                .strip_prefix('@')
                .ok_or_else(|| format!("expected an '@index', got '{token}'"))?;
            let value: u64 = digits
                .parse()
                .map_err(|_| format!("bad index '{token}' (want '@N')"))?;
            if value == 0 {
                return Err("indices are 1-based: '@0' never fires".to_string());
            }
            Ok(value)
        };
        match tokens {
            ["fs", target, kind, index] => Ok(Injection::Fs {
                target: Target::parse(target)?,
                kind: FsFaultKind::parse(kind)?,
                at_op: at(index)?,
            }),
            ["net", kind, index] => Ok(Injection::Net {
                kind: NetFaultKind::parse(kind)?,
                at_delivery: at(index)?,
            }),
            ["worker", target, event, index] => Ok(Injection::Worker {
                target: Target::parse(target)?,
                event: match *event {
                    "crash" => WorkerEvent::Crash,
                    "restart" => WorkerEvent::Restart,
                    other => {
                        return Err(format!(
                            "unknown worker event '{other}' (want crash or restart)"
                        ))
                    }
                },
                at_step: at(index)?,
            }),
            _ => Err(format!(
                "unrecognized injection '{}' (want 'fs <target> <kind> @N', \
                 'net <kind> @N', or 'worker <target> crash|restart @N')",
                tokens.join(" ")
            )),
        }
    }
}

impl fmt::Display for Injection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Injection::Fs {
                target,
                kind,
                at_op,
            } => write!(f, "fs {target} {kind} @{at_op}"),
            Injection::Net { kind, at_delivery } => write!(f, "net {kind} @{at_delivery}"),
            Injection::Worker {
                target,
                event,
                at_step,
            } => write!(f, "worker {target} {event} @{at_step}"),
        }
    }
}

/// A known historical bug a schedule can re-introduce at runtime, to
/// prove (in tests, CI, and the committed corpus) that the search and
/// its oracles still catch it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BugPlant {
    /// No plant: the shipped code runs as-is.
    #[default]
    None,
    /// The pre-PR-5 queue-commit bug: write the `.tmp` sibling and
    /// rename it over `queue.pnpq` with *no* `sync_file`/`sync_dir`. A
    /// crash after the "successful" commit can then expose a torn or
    /// stale queue — exactly what [`commit_replace`] exists to prevent.
    UnsyncedQueueCommit,
}

impl BugPlant {
    /// The stable serialized name.
    pub fn as_str(self) -> &'static str {
        match self {
            BugPlant::None => "none",
            BugPlant::UnsyncedQueueCommit => "unsynced-queue-commit",
        }
    }

    /// Parses a serialized name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<BugPlant, String> {
        match name {
            "none" => Ok(BugPlant::None),
            "unsynced-queue-commit" => Ok(BugPlant::UnsyncedQueueCommit),
            other => Err(format!(
                "unknown bug plant '{other}' (want none or unsynced-queue-commit)"
            )),
        }
    }
}

impl fmt::Display for BugPlant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A complete, replayable fault schedule: everything [`run_generated`]
/// needs to reproduce a run bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Which harness to drive.
    pub arena: Arena,
    /// The seed for every RNG the run touches (SimFs tear offsets,
    /// SimNet streams, worker disks).
    pub seed: u64,
    /// The intensity the schedule was generated at (informational; the
    /// injections below are what replays).
    pub profile: Option<Profile>,
    /// A re-introduced historical bug, for detector self-tests.
    pub plant: BugPlant,
    /// When set, replay *expects* the run to fail with this oracle:
    /// the file guards a detection, and a pass means the detector
    /// regressed.
    pub expect: Option<String>,
    /// The exact injections, canonically ordered.
    pub injections: Vec<Injection>,
}

impl FaultSchedule {
    /// Serializes the schedule to its line-based text form.
    pub fn encode(&self) -> String {
        let mut out = String::from("# pnp fault schedule v1\n");
        out.push_str(&format!("arena {}\n", self.arena));
        out.push_str(&format!("seed {}\n", self.seed));
        if let Some(profile) = self.profile {
            out.push_str(&format!("profile {profile}\n"));
        }
        if self.plant != BugPlant::None {
            out.push_str(&format!("plant {}\n", self.plant));
        }
        if let Some(oracle) = &self.expect {
            out.push_str(&format!("expect {oracle}\n"));
        }
        for injection in &self.injections {
            out.push_str(&format!("{injection}\n"));
        }
        out
    }

    /// Parses the text form produced by [`FaultSchedule::encode`].
    /// Blank lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line (with its line number) or a
    /// missing required directive (`arena`, `seed`).
    pub fn parse(text: &str) -> Result<FaultSchedule, String> {
        let mut arena = None;
        let mut seed = None;
        let mut profile = None;
        let mut plant = BugPlant::None;
        let mut expect = None;
        let mut injections = Vec::new();
        for (index, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at_line = |e: String| format!("line {}: {e}", index + 1);
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.as_slice() {
                ["arena", name] => arena = Some(Arena::parse(name).map_err(at_line)?),
                ["seed", value] => {
                    seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| at_line(format!("bad seed '{value}'")))?,
                    )
                }
                ["profile", name] => profile = Some(Profile::parse(name).map_err(at_line)?),
                ["plant", name] => plant = BugPlant::parse(name).map_err(at_line)?,
                ["expect", oracle] => {
                    if !ORACLES.iter().any(|(name, _)| name == oracle) {
                        return Err(at_line(format!(
                            "unknown oracle '{oracle}' (want one of: {})",
                            ORACLES.map(|(name, _)| name).join(", ")
                        )));
                    }
                    expect = Some((*oracle).to_string());
                }
                _ => injections.push(Injection::parse_tokens(&tokens).map_err(at_line)?),
            }
        }
        let mut schedule = FaultSchedule {
            arena: arena.ok_or("missing 'arena <name>' directive")?,
            seed: seed.ok_or("missing 'seed <n>' directive")?,
            profile,
            plant,
            expect,
            injections,
        };
        schedule.canonicalize();
        Ok(schedule)
    }

    /// Sorts injections into canonical order and drops exact
    /// duplicates, so equal schedules encode byte-identically.
    fn canonicalize(&mut self) {
        self.injections.sort_by_key(|i| i.sort_key());
        self.injections.dedup();
    }

    /// The storage injections aimed at `target`, in [`SimFs`] form.
    fn fs_injections(&self, target: Target) -> Vec<FsInjection> {
        self.injections
            .iter()
            .filter_map(|i| match i {
                Injection::Fs {
                    target: t,
                    kind,
                    at_op,
                } if *t == target => Some(FsInjection {
                    at_op: *at_op,
                    kind: *kind,
                }),
                _ => None,
            })
            .collect()
    }

    /// The network injections, in [`SimNet`] form.
    fn net_injections(&self) -> Vec<NetInjection> {
        self.injections
            .iter()
            .filter_map(|i| match i {
                Injection::Net { kind, at_delivery } => Some(NetInjection {
                    at_delivery: *at_delivery,
                    kind: *kind,
                }),
                _ => None,
            })
            .collect()
    }

    /// The worker events, sorted by step.
    fn worker_events(&self) -> Vec<(Target, WorkerEvent, u64)> {
        let mut events: Vec<(Target, WorkerEvent, u64)> = self
            .injections
            .iter()
            .filter_map(|i| match i {
                Injection::Worker {
                    target,
                    event,
                    at_step,
                } => Some((*target, *event, *at_step)),
                _ => None,
            })
            .collect();
        events.sort_by_key(|&(target, event, step)| (step, target as u8, event as u8));
        events
    }
}

/// What a converged (invariant-clean) generated run observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenOutcome {
    /// The arena that ran.
    pub arena: Arena,
    /// The seed it ran under.
    pub seed: u64,
    /// Attempts (storage/queue) or virtual steps (cluster) until
    /// convergence.
    pub attempts: u32,
    /// Simulated machine reboots performed.
    pub reboots: u32,
    /// Every fault that actually fired, in firing order per source —
    /// the injected-fault trace a report prints and the determinism
    /// regression compares.
    pub fired: Vec<String>,
    /// One line of context for the report table.
    pub detail: String,
}

/// One violated invariant: the stable oracle name (the failure's
/// identity for shrinking and `expect` directives), the human message,
/// and the trace of faults that fired on the failing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenFailure {
    /// Which oracle tripped (a name from [`ORACLES`] or
    /// [`HARNESS_ORACLE`]).
    pub oracle: &'static str,
    /// What happened, with seeds and fingerprints.
    pub message: String,
    /// Every fault that actually fired before the failure.
    pub fired: Vec<String>,
}

impl fmt::Display for GenFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.message)?;
        for fault in &self.fired {
            write!(f, "\n  fired: {fault}")?;
        }
        Ok(())
    }
}

/// The one-line repro command for a failing hand-written matrix cell —
/// every [`crate::chaos::run_schedule`] / [`crate::netchaos::run_net_schedule`]
/// failure message ends with it.
pub fn matrix_repro(schedule: &str, seed: u64) -> String {
    format!("cargo run --release -p pnp-bench --bin chaos_search -- matrix --schedule {schedule} --seed {seed}")
}

/// The one-line repro command for a schedule file.
pub fn replay_repro(path: &str) -> String {
    format!("cargo run --release -p pnp-bench --bin chaos_search -- replay {path}")
}

/// Derives a schedule from a single seed and an intensity profile. The
/// same `(arena, seed, profile)` always yields the same schedule, byte
/// for byte.
pub fn generate(arena: Arena, seed: u64, profile: Profile) -> FaultSchedule {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x6368_6765_6e5f_7631);
    let (lo, hi) = profile.injection_range();
    let count = lo + rng.gen_index(hi - lo + 1);
    let fs_kind = |rng: &mut SplitMix64| match rng.gen_index(4) {
        0 | 1 => FsFaultKind::Crash,
        2 => FsFaultKind::Enospc,
        _ => FsFaultKind::Eio,
    };
    let mut injections = Vec::new();
    for _ in 0..count {
        match arena {
            Arena::Storage => injections.push(Injection::Fs {
                target: Target::Main,
                kind: fs_kind(&mut rng),
                at_op: 1 + rng.gen_index(400) as u64,
            }),
            // An out-of-core attempt does several times the syscalls of
            // a checkpoint-only one: spread the window over spills,
            // merges, and frontier chunk commits.
            Arena::StorageSpill => injections.push(Injection::Fs {
                target: Target::Main,
                kind: fs_kind(&mut rng),
                at_op: 1 + rng.gen_index(900) as u64,
            }),
            // A queue roundtrip is ~a dozen ops including retries.
            Arena::Queue => injections.push(Injection::Fs {
                target: Target::Main,
                kind: fs_kind(&mut rng),
                at_op: 1 + rng.gen_index(12) as u64,
            }),
            Arena::Cluster => match rng.gen_index(10) {
                0..=4 => injections.push(Injection::Net {
                    kind: match rng.gen_index(4) {
                        0 => NetFaultKind::DropRequest,
                        1 => NetFaultKind::DropResponse,
                        2 => NetFaultKind::Duplicate,
                        _ => NetFaultKind::Reset,
                    },
                    at_delivery: 1 + rng.gen_index(400) as u64,
                }),
                5 | 6 => injections.push(Injection::Fs {
                    target: if rng.gen_index(2) == 0 {
                        Target::W1
                    } else {
                        Target::W2
                    },
                    kind: fs_kind(&mut rng),
                    at_op: 1 + rng.gen_index(120) as u64,
                }),
                7 | 8 => {
                    // A crash is only interesting if the worker comes
                    // back: pair it with a restart a few steps later.
                    let target = if rng.gen_index(2) == 0 {
                        Target::W1
                    } else {
                        Target::W2
                    };
                    let crash_at = 1 + rng.gen_index(60) as u64;
                    injections.push(Injection::Worker {
                        target,
                        event: WorkerEvent::Crash,
                        at_step: crash_at,
                    });
                    injections.push(Injection::Worker {
                        target,
                        event: WorkerEvent::Restart,
                        at_step: crash_at + 3 + rng.gen_index(12) as u64,
                    });
                }
                _ => injections.push(Injection::Worker {
                    target: if rng.gen_index(2) == 0 {
                        Target::W1
                    } else {
                        Target::W2
                    },
                    event: WorkerEvent::Restart,
                    at_step: 1 + rng.gen_index(60) as u64,
                }),
            },
        }
    }
    let mut schedule = FaultSchedule {
        arena,
        seed,
        profile: Some(profile),
        plant: BugPlant::None,
        expect: None,
        injections,
    };
    schedule.canonicalize();
    schedule
}

/// Runs one schedule through its arena and checks the invariant
/// oracle.
///
/// # Errors
///
/// Returns the first violated oracle as a [`GenFailure`] (including
/// [`HARNESS_ORACLE`] for schedules the arena cannot run).
pub fn run_generated(schedule: &FaultSchedule) -> Result<GenOutcome, GenFailure> {
    validate(schedule)?;
    match schedule.arena {
        Arena::Storage => run_storage(schedule, false),
        Arena::StorageSpill => run_storage(schedule, true),
        Arena::Queue => run_queue(schedule),
        Arena::Cluster => run_cluster(schedule),
    }
}

/// Rejects injections the arena has no seam for, so a corpus file
/// cannot silently test nothing.
fn validate(schedule: &FaultSchedule) -> Result<(), GenFailure> {
    let reject = |message: String| {
        Err(GenFailure {
            oracle: HARNESS_ORACLE,
            message,
            fired: Vec::new(),
        })
    };
    for injection in &schedule.injections {
        match (schedule.arena, injection) {
            (Arena::Cluster, Injection::Fs { target, .. }) if *target == Target::Main => {
                return reject(format!(
                    "'{injection}': the cluster arena has no 'main' disk (aim at w1 or w2)"
                ));
            }
            (Arena::Cluster, Injection::Worker { target, .. }) if *target == Target::Main => {
                return reject(format!("'{injection}': 'main' is not a worker"));
            }
            (Arena::Cluster, _) => {}
            (_, Injection::Fs { target, .. }) if *target != Target::Main => {
                return reject(format!(
                    "'{injection}': the {} arena only has the 'main' disk",
                    schedule.arena
                ));
            }
            (_, Injection::Net { .. } | Injection::Worker { .. }) => {
                return reject(format!(
                    "'{injection}': the {} arena has no network or workers",
                    schedule.arena
                ));
            }
            _ => {}
        }
    }
    if schedule.plant == BugPlant::UnsyncedQueueCommit && schedule.arena != Arena::Queue {
        return reject(format!(
            "plant {} only applies to the queue arena",
            schedule.plant
        ));
    }
    Ok(())
}

fn harness(message: String) -> GenFailure {
    GenFailure {
        oracle: HARNESS_ORACLE,
        message,
        fired: Vec::new(),
    }
}

/// Attempt ceiling for the generated storage arenas — generous against
/// the at most 16 injected faults of a heavy profile.
const MAX_GEN_ATTEMPTS: u32 = 80;

/// Step ceiling for the generated cluster arena (virtual time:
/// `MAX_GEN_STEPS * STEP_MS` ms). Wider than the hand-written
/// schedules' ceiling because generated runs may stack several crashes
/// and detector timeouts back to back.
const MAX_GEN_STEPS: u64 = 900;

/// The generated storage arena: the verify-checkpoint-crash-resume
/// loop of [`crate::chaos`], driven by exact op-indexed injections
/// instead of probabilistic plans.
fn run_storage(schedule: &FaultSchedule, spill: bool) -> Result<GenOutcome, GenFailure> {
    let seed = schedule.seed;
    let spec =
        compile(CHAOS_SPEC).map_err(|e| harness(format!("chaos spec does not compile: {e}")))?;
    let baseline = spec
        .verify_all()
        .map_err(|e| harness(format!("baseline run failed: {e}")))?;
    let baseline_fp = results_fingerprint(&baseline);

    let fs = Arc::new(SimFs::new(seed));
    fs.set_injections(schedule.fs_injections(Target::Main));
    let fired =
        |fs: &SimFs| -> Vec<String> { fs.fault_trace().iter().map(|r| r.to_string()).collect() };
    let state = PathBuf::from("/state");
    let mut reboots = 0u32;
    for _ in 0..8 {
        match fs.as_ref().create_dir_all(&state) {
            Ok(()) => break,
            Err(_) if fs.crashed() => {
                fs.reboot();
                reboots += 1;
            }
            Err(_) => {}
        }
    }
    let vfs: VfsHandle = fs.clone();
    let base = state.join("chaos.pnpsnap");
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if attempts > MAX_GEN_ATTEMPTS {
            return Err(GenFailure {
                oracle: "no-convergence",
                message: format!(
                    "{} seed {seed}: no convergence after {MAX_GEN_ATTEMPTS} attempts",
                    schedule.arena
                ),
                fired: fired(&fs),
            });
        }
        let resume = load_latest_snapshot(&vfs, &base)
            .ok()
            .flatten()
            .map(|(_, snapshot)| snapshot)
            .filter(|s| s.matches_program(spec.system().program()));
        let options = VerifyOptions {
            checkpoint: Some((base.clone(), CHECKPOINT_EVERY)),
            resume,
            vfs: Some(vfs.clone()),
            config: if spill {
                SearchConfig {
                    spill_at_bytes: Some(4 << 10),
                    ..SearchConfig::default()
                }
            } else {
                SearchConfig::default()
            },
            spill_dir: spill.then(|| state.join("spill")),
            ..VerifyOptions::default()
        };
        match spec.verify_all_with_options(&options) {
            Ok(results) => {
                if let Some(stop) = results.iter().find_map(|r| r.stop) {
                    if stop != BudgetKind::Memory {
                        return Err(GenFailure {
                            oracle: "dishonest-stop",
                            message: format!(
                                "{} seed {seed}: attempt stopped on {stop:?} \
                                 (only a memory trip is an honest degradation here)",
                                schedule.arena
                            ),
                            fired: fired(&fs),
                        });
                    }
                    if fs.crashed() {
                        fs.reboot();
                        reboots += 1;
                    }
                    continue;
                }
                let fp = results_fingerprint(&results);
                if fp != baseline_fp {
                    return Err(GenFailure {
                        oracle: "fingerprint-divergence",
                        message: format!(
                            "{} seed {seed}: recovered fingerprint {fp:#018x} differs from \
                             baseline {baseline_fp:#018x}",
                            schedule.arena
                        ),
                        fired: fired(&fs),
                    });
                }
                return Ok(GenOutcome {
                    arena: schedule.arena,
                    seed,
                    attempts,
                    reboots,
                    fired: fired(&fs),
                    detail: format!(
                        "{} states, fingerprint {:#018x}",
                        results.first().map_or(0, |r| r.states),
                        fp
                    ),
                });
            }
            Err(error) => {
                match JobOutcome::classify_error(&error.0) {
                    JobOutcome::Failed {
                        class: FailureClass::Transient,
                        ..
                    } => {}
                    other => {
                        return Err(GenFailure {
                            oracle: "misclassified-error",
                            message: format!(
                                "{} seed {seed}: storage fault classified {other:?} \
                                 (must be transient): {error}",
                                schedule.arena
                            ),
                            fired: fired(&fs),
                        });
                    }
                }
                if fs.crashed() {
                    fs.reboot();
                    reboots += 1;
                }
            }
        }
    }
}

/// The planted queue commit: stage and rename with no durability —
/// byte-for-byte the pre-`commit_replace` bug.
fn unsynced_commit(vfs: &dyn Vfs, path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    vfs.write(&tmp, bytes)?;
    vfs.rename(&tmp, path)
}

/// The generated queue arena: commit a known-good queue, commit its
/// replacement under injections, and check the all-or-nothing promise
/// on whatever a crash exposed.
fn run_queue(schedule: &FaultSchedule) -> Result<GenOutcome, GenFailure> {
    let seed = schedule.seed;
    let fs = Arc::new(SimFs::new(seed));
    fs.set_injections(schedule.fs_injections(Target::Main));
    let fired =
        |fs: &SimFs| -> Vec<String> { fs.fault_trace().iter().map(|r| r.to_string()).collect() };
    let state = PathBuf::from("/state");
    let path = state.join("queue.pnpq");
    let (old_jobs, new_jobs) = sample_queues();
    let old_bytes = encode_queue(&old_jobs);
    let new_bytes = encode_queue(&new_jobs);
    let mut reboots = 0u32;
    let mut attempts = 0u32;
    for _ in 0..8 {
        match fs.as_ref().create_dir_all(&state) {
            Ok(()) => break,
            Err(_) if fs.crashed() => {
                fs.reboot();
                reboots += 1;
            }
            Err(_) => {}
        }
    }

    // The old queue must land durably before the interesting commit; an
    // injected fault here just costs a retry.
    let mut old_committed = false;
    for _ in 0..20 {
        attempts += 1;
        match commit_replace(fs.as_ref(), &path, &old_bytes) {
            Ok(()) => {
                old_committed = true;
                break;
            }
            Err(_) if fs.crashed() => {
                fs.reboot();
                reboots += 1;
            }
            Err(_) => {}
        }
    }
    if !old_committed {
        return Err(GenFailure {
            oracle: "no-convergence",
            message: format!("queue seed {seed}: the old queue never committed in 20 attempts"),
            fired: fired(&fs),
        });
    }

    // The replacement commit — the crash story under test. A crash ends
    // the attempt sequence: what the reboot exposed is what we judge.
    let mut committed = false;
    for _ in 0..20 {
        attempts += 1;
        let result = match schedule.plant {
            BugPlant::None => commit_replace(fs.as_ref(), &path, &new_bytes),
            BugPlant::UnsyncedQueueCommit => unsynced_commit(fs.as_ref(), &path, &new_bytes),
        };
        match result {
            Ok(()) => {
                committed = true;
                break;
            }
            Err(_) if fs.crashed() => {
                fs.reboot();
                reboots += 1;
                break;
            }
            Err(_) => {}
        }
    }

    // A crash injection may still be pending past the commit: the read
    // below can fire it, which is exactly the "power loss after the
    // commit returned" case the plant gets wrong.
    let mut bytes = None;
    for _ in 0..10 {
        match fs.as_ref().read(&path) {
            Ok(content) => {
                bytes = Some(content);
                break;
            }
            Err(_) if fs.crashed() => {
                fs.reboot();
                reboots += 1;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(GenFailure {
                    oracle: "queue-lost",
                    message: format!(
                        "queue seed {seed}: queue.pnpq vanished after the crash (old copy lost)"
                    ),
                    fired: fired(&fs),
                });
            }
            Err(_) => {}
        }
    }
    let Some(bytes) = bytes else {
        return Err(GenFailure {
            oracle: "no-convergence",
            message: format!("queue seed {seed}: the recovered queue never became readable"),
            fired: fired(&fs),
        });
    };
    let recovered = decode_queue(&bytes).map_err(|e| GenFailure {
        oracle: "torn-queue",
        message: format!("queue seed {seed}: torn queue after crash: {e}"),
        fired: fired(&fs),
    })?;
    let ids: Vec<u64> = recovered.iter().map(|j| j.id).collect();
    let old_ids: Vec<u64> = old_jobs.iter().map(|j| j.id).collect();
    let new_ids: Vec<u64> = new_jobs.iter().map(|j| j.id).collect();
    if ids != old_ids && ids != new_ids {
        return Err(GenFailure {
            oracle: "queue-content",
            message: format!(
                "queue seed {seed}: recovered job ids {ids:?} are neither the old {old_ids:?} \
                 nor the new {new_ids:?}"
            ),
            fired: fired(&fs),
        });
    }
    if committed && !fs.crashed() && ids == old_ids && reboots > 0 {
        return Err(GenFailure {
            oracle: "lost-commit",
            message: format!(
                "queue seed {seed}: the commit reported success but a later crash exposed \
                 the old queue"
            ),
            fired: fired(&fs),
        });
    }
    Ok(GenOutcome {
        arena: Arena::Queue,
        seed,
        attempts,
        reboots,
        fired: fired(&fs),
        detail: format!(
            "recovered the {} queue after {reboots} reboot(s)",
            if ids == new_ids { "new" } else { "old" }
        ),
    })
}

/// One planned cluster submission.
struct ClusterSubmission {
    source: &'static str,
    tenant: &'static str,
    baseline: u64,
    idem: String,
    id: Option<u64>,
    retry_at: u64,
}

/// The generated cluster arena: a real coordinator and two simulated
/// workers on virtual time, with exact network injections, exact
/// storage injections on the worker disks, and timed worker
/// crash/restart events — all four fault axes in one run.
///
/// A worker whose *disk* suffers an injected crash is treated as a dead
/// machine: the harness kills the process, reboots the disk to its
/// crash image, and boots the worker back up a few steps later — the
/// cluster must migrate or resume its jobs without double-completion.
fn run_cluster(schedule: &FaultSchedule) -> Result<GenOutcome, GenFailure> {
    let seed = schedule.seed;
    let fp_chaos = baseline_fingerprint(CHAOS_SPEC).map_err(harness)?;
    let fp_small = baseline_fingerprint(SMALL_SPEC).map_err(harness)?;
    let mut submissions: Vec<ClusterSubmission> = [
        (CHAOS_SPEC, "a", fp_chaos),
        (SMALL_SPEC, "b", fp_small),
        (CHAOS_SPEC, "a", fp_chaos),
    ]
    .into_iter()
    .enumerate()
    .map(|(index, (source, tenant, baseline))| ClusterSubmission {
        source,
        tenant,
        baseline,
        idem: format!("chaosgen-{seed}-{index}"),
        id: None,
        retry_at: 0,
    })
    .collect();

    let net = SimNet::new(seed);
    net.set_injections(schedule.net_injections());
    let now = Arc::new(AtomicU64::new(0));
    let coordinator_fs: Arc<SimFs> = Arc::new(SimFs::new(seed ^ 0x636f_6f72_645f_6673));
    let coordinator_vfs: VfsHandle = coordinator_fs.clone();
    let _ = coordinator_vfs.create_dir_all(&PathBuf::from("/coord"));
    let coordinator = make_coordinator(&net, migration_cluster_config(coordinator_vfs), &now);
    let w1 = SimWorker::new(&net, "w1", "coord", seed ^ 1, &now);
    let w2 = SimWorker::new(&net, "w2", "coord", seed ^ 2, &now);
    w1.sim_fs()
        .set_injections(schedule.fs_injections(Target::W1));
    w2.sim_fs()
        .set_injections(schedule.fs_injections(Target::W2));
    w1.run_pending();
    w2.run_pending();
    coordinator.tick(0);

    let events = schedule.worker_events();
    let mut timeline: Vec<String> = Vec::new();
    let mut auto_restarts: Vec<(Target, u64)> = Vec::new();
    let worker_of = |target: Target| -> &Arc<SimWorker> {
        if target == Target::W2 {
            &w2
        } else {
            &w1
        }
    };
    let fired = |timeline: &[String]| -> Vec<String> {
        let mut all: Vec<String> = net.fault_trace().iter().map(|r| r.to_string()).collect();
        for (name, worker) in [("w1", &w1), ("w2", &w2)] {
            all.extend(
                worker
                    .sim_fs()
                    .fault_trace()
                    .iter()
                    .map(|r| format!("{name} {r}")),
            );
        }
        all.extend(timeline.iter().cloned());
        all
    };
    let mut reboots = 0u32;
    let mut steps = 0u64;
    loop {
        steps += 1;
        if steps > MAX_GEN_STEPS {
            return Err(GenFailure {
                oracle: "no-convergence",
                message: format!("cluster seed {seed}: no convergence after {MAX_GEN_STEPS} steps"),
                fired: fired(&timeline),
            });
        }
        let t = steps * STEP_MS;
        now.store(t, Ordering::Relaxed);

        for &(target, event, at_step) in &events {
            if at_step != steps {
                continue;
            }
            let worker = worker_of(target);
            match event {
                WorkerEvent::Crash => worker.crash(),
                WorkerEvent::Restart => worker.restart(),
            }
            timeline.push(format!("worker {target} {event} @{steps}"));
        }
        // An injected disk crash kills the machine under the process:
        // down the worker, expose the crash image, boot it back later.
        for (target, worker) in [(Target::W1, &w1), (Target::W2, &w2)] {
            if worker.sim_fs().crashed() {
                worker.crash();
                worker.sim_fs().reboot();
                reboots += 1;
                auto_restarts.push((target, steps + 8));
                timeline.push(format!("worker {target} disk-crash reboot @{steps}"));
            }
        }
        auto_restarts.retain(|&(target, due)| {
            if steps >= due {
                worker_of(target).restart();
                false
            } else {
                true
            }
        });

        let mut fatal: Option<String> = None;
        for submission in &mut submissions {
            if submission.id.is_some() || t < submission.retry_at {
                continue;
            }
            let mut client = SubmitClient::new(net.endpoint("client"));
            client.retry_backoff = std::time::Duration::ZERO;
            client.max_retries = 8;
            client.idem_key = Some(submission.idem.clone());
            match client.submit(
                "coord",
                submission.source,
                &format!("tenant={}", submission.tenant),
            ) {
                Ok(outcome) => match outcome
                    .id
                    .strip_prefix("g-")
                    .and_then(|n| n.parse::<u64>().ok())
                {
                    Some(id) => submission.id = Some(id),
                    None => fatal = Some(format!("unexpected job id {}", outcome.id)),
                },
                Err(ClientError::Retryable { retry_after_ms, .. }) => {
                    submission.retry_at = t + retry_after_ms.unwrap_or(STEP_MS).max(STEP_MS);
                }
                Err(error) => fatal = Some(error.to_string()),
            }
        }
        if let Some(message) = fatal {
            return Err(GenFailure {
                oracle: "submit-failed",
                message: format!("cluster seed {seed}: submit failed: {message}"),
                fired: fired(&timeline),
            });
        }

        coordinator.tick(t);
        w1.run_pending();
        w2.run_pending();

        if submissions.iter().all(|s| s.id.is_some()) && coordinator.all_done() {
            break;
        }
    }

    let stats = coordinator.stats();
    for submission in &submissions {
        let id = submission.id.expect("checked before convergence");
        let completion = coordinator.completion(id).ok_or_else(|| GenFailure {
            oracle: "lost-job",
            message: format!("cluster seed {seed}: g-{id} has no completion"),
            fired: fired(&timeline),
        })?;
        let results = completion.results.as_deref().ok_or_else(|| GenFailure {
            oracle: "missing-results",
            message: format!("cluster seed {seed}: g-{id} completed without results"),
            fired: fired(&timeline),
        })?;
        let fp = results_fingerprint(results);
        if fp != submission.baseline {
            return Err(GenFailure {
                oracle: "fingerprint-divergence",
                message: format!(
                    "cluster seed {seed}: g-{id} fingerprint {fp:#018x} differs from baseline \
                     {:#018x}",
                    submission.baseline
                ),
                fired: fired(&timeline),
            });
        }
    }
    if stats.completed != submissions.len() as u64 {
        return Err(GenFailure {
            oracle: "completion-count",
            message: format!(
                "cluster seed {seed}: {} completions recorded for {} jobs",
                stats.completed,
                submissions.len()
            ),
            fired: fired(&timeline),
        });
    }

    Ok(GenOutcome {
        arena: Arena::Cluster,
        seed,
        attempts: steps as u32,
        reboots,
        fired: fired(&timeline),
        detail: format!(
            "{} jobs, {} migrations, {} fenced, {} hedges",
            submissions.len(),
            stats.migrations,
            stats.fenced,
            stats.hedges
        ),
    })
}

/// Delta-debugging (ddmin) reduction of `items` against a failure
/// predicate, followed by a single-deletion fixpoint pass, yielding a
/// **1-minimal** subset: `fails` holds on the result, and removing any
/// single element makes it stop holding.
///
/// `fails(items)` must hold on entry; the predicate must be
/// deterministic (in this module it replays a fault schedule, which
/// is).
pub fn shrink_with<T: Clone>(items: &[T], fails: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current = items.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut next: Option<(Vec<T>, usize)> = None;
        // Try each chunk alone, then each chunk's complement.
        for start in (0..current.len()).step_by(chunk) {
            let subset = current[start..(start + chunk).min(current.len())].to_vec();
            if subset.len() < current.len() && fails(&subset) {
                next = Some((subset, 2));
                break;
            }
        }
        if next.is_none() && n > 2 {
            for start in (0..current.len()).step_by(chunk) {
                let mut complement = current.clone();
                complement.drain(start..(start + chunk).min(complement.len()));
                if complement.len() < current.len() && fails(&complement) {
                    next = Some((complement, n - 1));
                    break;
                }
            }
        }
        match next {
            Some((reduced, granularity)) => {
                current = reduced;
                n = granularity.clamp(2, current.len().max(2));
            }
            None => {
                if n >= current.len() {
                    break;
                }
                n = (n * 2).min(current.len());
            }
        }
    }
    // 1-minimality: keep deleting single elements to a fixpoint (also
    // covers the length-0/1 edge ddmin skips).
    loop {
        let mut reduced = false;
        for index in 0..current.len() {
            let mut candidate = current.clone();
            candidate.remove(index);
            if fails(&candidate) {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}

/// Shrinks a failing schedule: ddmin-deletes injections, then coarsens
/// each surviving injection's index toward rounder values — all while
/// the *same oracle* keeps failing, so the minimized schedule
/// reproduces the original failure, not a different one.
///
/// The result is 1-minimal: removing any remaining injection makes the
/// run pass or changes the failure.
pub fn shrink_schedule(failing: &FaultSchedule, failure: &GenFailure) -> FaultSchedule {
    let oracle = failure.oracle;
    let template = failing.clone();
    let mut fails = move |injections: &[Injection]| -> bool {
        let mut candidate = template.clone();
        candidate.injections = injections.to_vec();
        candidate.canonicalize();
        matches!(run_generated(&candidate), Err(f) if f.oracle == oracle)
    };
    let mut kept = shrink_with(&failing.injections, &mut fails);
    // Coarsen: a repro at op @10 reads better than @117, and rounder
    // indices survive harness drift longer.
    for index in 0..kept.len() {
        let at = kept[index].at();
        for candidate_at in [at - at % 10, at - at % 5] {
            if candidate_at == 0 || candidate_at == at {
                continue;
            }
            let mut trial = kept.clone();
            trial[index] = trial[index].with_at(candidate_at);
            if fails(&trial) {
                kept = trial;
                break;
            }
        }
    }
    let mut shrunk = failing.clone();
    shrunk.injections = kept;
    shrunk.canonicalize();
    shrunk
}

/// One failure a [`search`] found, with its minimized repro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// The 0-based search iteration that failed.
    pub iteration: u64,
    /// The failing case's derived seed.
    pub case_seed: u64,
    /// The oracle violation.
    pub failure: GenFailure,
    /// The schedule as generated.
    pub schedule: FaultSchedule,
    /// The 1-minimal shrunk schedule, `expect` set to the failing
    /// oracle — ready to commit to `chaos-corpus/`.
    pub shrunk: FaultSchedule,
}

/// What a bounded [`search`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchReport {
    /// The arena searched.
    pub arena: Arena,
    /// The search's master seed.
    pub seed: u64,
    /// The intensity profile.
    pub profile: Profile,
    /// Iterations actually run (≤ the budget; a hit stops the search).
    pub iterations: u64,
    /// The first failure found, if any.
    pub hit: Option<SearchHit>,
}

/// A bounded seeded search: derive `iterations` case seeds from one
/// master seed, generate-and-run each, and on the first failure shrink
/// it to a minimal repro. Fully deterministic: the same
/// `(arena, seed, profile, iterations, plant)` always yields the same
/// report, injected-fault traces included.
pub fn search(
    arena: Arena,
    seed: u64,
    profile: Profile,
    iterations: u64,
    plant: BugPlant,
) -> SearchReport {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x6368_616f_735f_7365);
    for iteration in 0..iterations {
        let case_seed = rng.next_u64();
        let mut schedule = generate(arena, case_seed, profile);
        schedule.plant = plant;
        if let Err(failure) = run_generated(&schedule) {
            let mut shrunk = shrink_schedule(&schedule, &failure);
            shrunk.expect = Some(failure.oracle.to_string());
            return SearchReport {
                arena,
                seed,
                profile,
                iterations: iteration + 1,
                hit: Some(SearchHit {
                    iteration,
                    case_seed,
                    failure,
                    schedule,
                    shrunk,
                }),
            };
        }
    }
    SearchReport {
        arena,
        seed,
        profile,
        iterations,
        hit: None,
    }
}

/// Replays a schedule file's run and judges it against the file's
/// `expect` directive: a plain file must pass its oracle checks; an
/// `expect <oracle>` file must fail with exactly that oracle (it
/// guards a *detection*, typically of a [`BugPlant`]).
///
/// # Errors
///
/// Returns the divergence: an unexpected failure, the wrong oracle, or
/// an expected failure that no longer fires (the detector regressed).
pub fn replay(schedule: &FaultSchedule) -> Result<String, String> {
    match (run_generated(schedule), &schedule.expect) {
        (Ok(outcome), None) => Ok(format!(
            "ok: {} seed {} converged ({} faults fired; {})",
            outcome.arena,
            outcome.seed,
            outcome.fired.len(),
            outcome.detail
        )),
        (Ok(_), Some(oracle)) => Err(format!(
            "{} seed {}: expected the '{oracle}' oracle to fail but the run passed — \
             the regression this schedule guards is no longer detected",
            schedule.arena, schedule.seed
        )),
        (Err(failure), Some(oracle)) if failure.oracle == oracle => Ok(format!(
            "ok: {} seed {} failed '{oracle}' as expected ({} faults fired)",
            schedule.arena,
            schedule.seed,
            failure.fired.len()
        )),
        (Err(failure), Some(oracle)) => Err(format!(
            "{} seed {}: expected the '{oracle}' oracle, got: {failure}",
            schedule.arena, schedule.seed
        )),
        (Err(failure), None) => Err(format!(
            "{} seed {}: {failure}",
            schedule.arena, schedule.seed
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_text_roundtrips() {
        for arena in Arena::ALL {
            for profile in Profile::ALL {
                let schedule = generate(arena, 42, profile);
                let parsed = FaultSchedule::parse(&schedule.encode()).unwrap();
                assert_eq!(parsed, schedule);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Arena::Cluster, 7, Profile::Heavy);
        let b = generate(Arena::Cluster, 7, Profile::Heavy);
        assert_eq!(a.encode(), b.encode());
        assert_ne!(
            generate(Arena::Cluster, 7, Profile::Heavy).encode(),
            generate(Arena::Cluster, 8, Profile::Heavy).encode()
        );
    }

    #[test]
    fn parse_rejects_malformed_schedules() {
        let cases: [(&str, &str); 8] = [
            ("seed 1\nfs main crash @3", "missing 'arena"),
            ("arena queue\nfs main crash @3", "missing 'seed"),
            ("arena nope\nseed 1", "unknown arena 'nope'"),
            ("arena queue\nseed 1\nfs main crash @0", "1-based"),
            (
                "arena queue\nseed 1\nfs main melt @3",
                "unknown storage fault 'melt'",
            ),
            (
                "arena queue\nseed 1\nnet eat-packet @3",
                "unknown network fault 'eat-packet'",
            ),
            (
                "arena queue\nseed 1\nexpect not-an-oracle",
                "unknown oracle",
            ),
            ("arena queue\nseed 1\nwobble", "unrecognized injection"),
        ];
        for (text, needle) in cases {
            let error = FaultSchedule::parse(text).unwrap_err();
            assert!(
                error.contains(needle),
                "parse of {text:?} should mention {needle:?}, got: {error}"
            );
        }
    }

    #[test]
    fn validate_rejects_inapplicable_injections() {
        let text = "arena storage\nseed 1\nnet reset @3";
        let schedule = FaultSchedule::parse(text).unwrap();
        let failure = run_generated(&schedule).unwrap_err();
        assert_eq!(failure.oracle, HARNESS_ORACLE);

        let text = "arena cluster\nseed 1\nfs main crash @3";
        let schedule = FaultSchedule::parse(text).unwrap();
        let failure = run_generated(&schedule).unwrap_err();
        assert_eq!(failure.oracle, HARNESS_ORACLE);
    }

    #[test]
    fn clean_queue_arena_passes_and_replays_identically() {
        let schedule = generate(Arena::Queue, 3, Profile::Medium);
        let a = run_generated(&schedule).unwrap();
        let b = run_generated(&schedule).unwrap();
        assert_eq!(a, b, "same schedule, same outcome and fired trace");
    }

    #[test]
    fn shrink_with_is_one_minimal_on_a_synthetic_predicate() {
        // Fails iff it contains both 3 and 7: the minimum is {3, 7}.
        let items: Vec<u32> = (0..20).collect();
        let mut fails = |xs: &[u32]| xs.contains(&3) && xs.contains(&7);
        let mut shrunk = shrink_with(&items, &mut fails);
        shrunk.sort_unstable();
        assert_eq!(shrunk, vec![3, 7]);
    }
}
