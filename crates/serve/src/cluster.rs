//! Cluster mode: a coordinator that hash-shards submitted jobs across
//! worker daemons, detects failed workers, migrates their jobs behind a
//! fencing epoch, and records every job's completion exactly once.
//!
//! ## Exactly-once argument
//!
//! A cluster job has a global id (`g-N`) and a monotonically increasing
//! *attempt epoch*. Every dispatch carries the current epoch; every
//! completion upload carries the epoch its dispatch ran under. The
//! coordinator accepts a completion only when (a) the job is not yet
//! terminal and (b) the upload's epoch equals the job's current epoch.
//! Migration bumps the epoch *before* re-dispatching, so a stale worker
//! that finishes after its job moved is fenced with `409` — its result
//! is provably discarded, never double-counted. Verification itself is
//! deterministic, so whichever attempt's completion is adopted carries
//! the same property results byte for byte (the chaos matrix asserts
//! the fingerprint against a single-node run).
//!
//! ## Failure detection and affinity
//!
//! Workers register and heartbeat; the [`Membership`] detector demotes
//! them on silence (suspect → dead), and the coordinator additionally
//! polls a dispatched worker once its request deadline passes — an
//! unreachable worker is declared dead immediately instead of waiting
//! out the heartbeat windows. Retries are *sticky*: a job re-dispatches
//! to the worker already holding its newest checkpoint generation when
//! that worker is alive; otherwise the coordinator fetches the
//! checkpoint from the old worker if it is still reachable and ships it
//! with the dispatch (`seed_snapshot`), falling back to a fresh start.
//!
//! All coordinator methods take an explicit `now_ms`, so the
//! deterministic chaos harness ([`crate::netchaos`]) drives the whole
//! cluster on virtual time over a [`pnp_net::SimNet`].

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use pnp_kernel::{commit_replace, real_fs, SearchConfig, VfsHandle};
use pnp_net::{NetError, Transport, WireRequest, WireResponse};

use crate::job::{resolve_job_config, JobId, JobRequest, Verdict};
use crate::json::{array, Obj};
use crate::membership::{BreakerConfig, DetectorConfig, Membership, WorkerLoad};
use crate::queue::{decode_queue, encode_queue, PersistedJob, QueuePolicy, Reader, Writer};
use crate::supervisor::{property_json, Supervisor};
use crate::transport::{
    decode_completion, decode_dispatch, encode_completion, encode_dispatch, Completion, Dispatch,
};

/// Milliseconds since the Unix epoch — the real-mode clock behind the
/// coordinator's `now_ms` parameters (the sim harness uses virtual
/// time instead).
pub fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Coordinator policy.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Heartbeat failure-detector windows.
    pub detector: DetectorConfig,
    /// Dispatch attempts per job before it fails as
    /// `transient_exhausted` (default 4).
    pub max_attempts: u32,
    /// How long a dispatched job may sit without completing before the
    /// coordinator polls its worker and, if unreachable, migrates
    /// (default 10 000 ms).
    pub request_timeout_ms: u64,
    /// First re-dispatch backoff; doubles per attempt (default 200 ms).
    pub backoff_base_ms: u64,
    /// Total non-terminal jobs admitted before shedding (default 64).
    pub capacity: usize,
    /// Non-terminal jobs one tenant may hold before its submissions
    /// shed with reason `tenant_quota` (default 16).
    pub tenant_quota: usize,
    /// Concurrent dispatches per worker (default 2 — the worker
    /// daemon's thread count).
    pub max_inflight_per_worker: usize,
    /// Terminal jobs retained for result queries before the oldest are
    /// evicted (default 256). Keeps a long-lived coordinator's job and
    /// idempotency maps bounded; an evicted job's late stale upload
    /// gets `404` instead of `409`, which discards it just the same.
    pub retain_done: usize,
    /// Settled gateway entries a *worker* keeps before the oldest are
    /// evicted (default 256). The worker-side twin of `retain_done`:
    /// bounds a long-lived worker's global-job map while still
    /// answering duplicated dispatches of finished epochs idempotently.
    /// `pnp-serve --retain-done N` sets both.
    pub settled_retain: usize,
    /// Shed `Retry-After` scaling (reuses the queue policy's
    /// pressure-derived hint).
    pub queue: QueuePolicy,
    /// Where `cluster.pnpq` (the drained job set) lives.
    pub state_dir: std::path::PathBuf,
    /// The filesystem durable state goes through (SimFs in the chaos
    /// harness).
    pub vfs: VfsHandle,
    /// Base search configuration submissions resolve against.
    pub default_search: SearchConfig,
    /// Per-worker circuit-breaker tuning (trips on dispatch/poll
    /// failures, not heartbeat silence).
    pub breaker: BreakerConfig,
    /// Floor for the hedge threshold: a dispatched job is never hedged
    /// before this much time on one worker, no matter how fast the
    /// completed-duration percentile says jobs usually finish
    /// (default 500 ms).
    pub hedge_floor_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            detector: DetectorConfig::default(),
            max_attempts: 4,
            request_timeout_ms: 10_000,
            backoff_base_ms: 200,
            capacity: 64,
            tenant_quota: 16,
            max_inflight_per_worker: 2,
            retain_done: 256,
            settled_retain: 256,
            queue: QueuePolicy::default(),
            state_dir: std::path::PathBuf::from(".pnp-serve"),
            vfs: real_fs(),
            default_search: SearchConfig::default(),
            breaker: BreakerConfig::default(),
            hedge_floor_ms: 500,
        }
    }
}

/// Monotonic coordinator counters, surfaced by `/cluster/status`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs that reached a terminal phase (each counted exactly once).
    pub completed: u64,
    /// Submissions shed.
    pub shed: u64,
    /// Dispatches sent to workers.
    pub dispatches: u64,
    /// Jobs migrated off a dead worker.
    pub migrations: u64,
    /// Stale completion uploads fenced with `409`.
    pub fenced: u64,
    /// Migrations that shipped a checkpoint snapshot with the dispatch.
    pub snapshots_shipped: u64,
    /// Jobs restored from a persisted `cluster.pnpq` at startup.
    pub restored: u64,
    /// Speculative second attempts launched for stalled dispatches.
    pub hedges: u64,
    /// Jobs force-expired as `Inconclusive` when their end-to-end
    /// deadline passed without an adoptable completion.
    pub expired: u64,
    /// Circuit-breaker trips (closed → open, or a failed half-open
    /// probe reopening).
    pub breaker_trips: u64,
}

/// Where a cluster job is.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GlobalPhase {
    /// Waiting for placement (possibly behind a backoff).
    Pending,
    /// Running on a worker under the current epoch.
    Dispatched {
        worker: String,
        at_ms: u64,
    },
    Done(Verdict),
}

/// A speculative second attempt for a stalled dispatch. It runs under
/// its own (higher) epoch; [`Coordinator::adopt_completion`] accepts
/// whichever of the primary and hedge epochs reports first, and the
/// loser is fenced by the job-already-terminal 409.
#[derive(Debug, Clone, PartialEq, Eq)]
struct HedgeAttempt {
    worker: String,
    epoch: u64,
    at_ms: u64,
}

#[derive(Debug)]
struct GlobalJob {
    id: u64,
    tenant: String,
    request: JobRequest,
    /// Fencing epoch; bumped on every migration.
    epoch: u64,
    /// Dispatches so far.
    attempts: u32,
    phase: GlobalPhase,
    /// The worker that ran (or is running) the newest attempt — the
    /// sticky-affinity target and snapshot source.
    last_worker: Option<String>,
    /// Earliest virtual time the next dispatch may happen.
    not_before_ms: u64,
    /// Minimum live workers the submitter required (`workers=N`).
    required_workers: usize,
    /// Adopted completion (for result rendering).
    completion: Option<Completion>,
    /// Stale uploads fenced for this job.
    fenced: u64,
    /// Absolute end-to-end deadline on the coordinator clock
    /// (admission time + the client's `job_deadline_ms`). The envelope
    /// every dispatch hop re-derives its remaining budget from.
    deadline_at_ms: Option<u64>,
    /// When the current primary dispatch was sent. Unlike the phase's
    /// `at_ms` (re-stamped by 202 progress polls to push out the
    /// request deadline), this is fixed for the attempt — it is the
    /// hedge trigger's reference point and the duration-sample start.
    dispatched_at_ms: Option<u64>,
    /// The in-flight hedge, if one was launched for this dispatch.
    hedge: Option<HedgeAttempt>,
}

impl GlobalJob {
    /// The highest epoch any live attempt of this job runs under.
    fn top_epoch(&self) -> u64 {
        match &self.hedge {
            Some(h) => self.epoch.max(h.epoch),
            None => self.epoch,
        }
    }
}

struct CoInner {
    jobs: BTreeMap<u64, GlobalJob>,
    next_id: u64,
    idem: HashMap<String, u64>,
    membership: Membership,
    /// Round-robin cursor over tenants for fair-share dispatch.
    rr: u64,
    stats: ClusterStats,
    /// Recent dispatch→adoption durations (ms), the sample the hedge
    /// threshold's percentile is derived from. Bounded ring.
    durations: Vec<u64>,
}

/// The cluster coordinator. Shared behind an [`Arc`]; `handle` serves
/// client and worker requests, `tick` advances failure detection and
/// dispatch. Network calls never run under the lock.
pub struct Coordinator {
    config: ClusterConfig,
    transport: Arc<dyn Transport>,
    inner: Mutex<CoInner>,
    /// Signalled whenever a job reaches a terminal phase; long-poll
    /// result requests (`GET /jobs/<id>?wait=ms`) block on it.
    settled: Condvar,
}

/// One outbound action computed under the lock, performed outside it.
enum Outbound {
    /// Poll `worker` for `job`'s completion (request-deadline check).
    Poll {
        job: u64,
        epoch: u64,
        worker: String,
        peer: String,
    },
    /// Dispatch `job` to `worker`, optionally pre-fetching the newest
    /// checkpoint from `fetch_from` (the peer that last ran the job).
    Dispatch {
        dispatch: Box<Dispatch>,
        worker: String,
        peer: String,
        fetch_from: Option<String>,
    },
}

const CLUSTER_QUEUE_MAGIC: &[u8; 8] = b"PNPCLST2";

impl Coordinator {
    /// Starts a coordinator, restoring any `cluster.pnpq` a previous
    /// drain left behind (restored jobs get a bumped epoch, so an
    /// attempt dispatched before the restart is fenced when it reports
    /// back).
    pub fn new(config: ClusterConfig, transport: Arc<dyn Transport>) -> Coordinator {
        let mut membership = Membership::new(config.detector);
        membership.breaker = config.breaker;
        let mut inner = CoInner {
            jobs: BTreeMap::new(),
            next_id: 1,
            idem: HashMap::new(),
            membership,
            rr: 0,
            stats: ClusterStats::default(),
            durations: Vec::new(),
        };
        let path = config.state_dir.join("cluster.pnpq");
        if let Ok(bytes) = config.vfs.read(&path) {
            match decode_cluster_queue(&bytes) {
                Ok((next_id, jobs)) => {
                    for job in jobs {
                        inner.next_id = inner.next_id.max(job.id + 1);
                        inner.stats.restored += 1;
                        inner.stats.submitted += 1;
                        if let Some(key) = &job.request.idem {
                            inner.idem.insert(key.clone(), job.id);
                        }
                        inner.jobs.insert(job.id, job);
                    }
                    inner.next_id = inner.next_id.max(next_id);
                }
                Err(reason) => eprintln!("pnp-serve: ignoring persisted cluster queue: {reason}"),
            }
            let _ = config.vfs.remove(&path);
        }
        Coordinator {
            config,
            transport,
            inner: Mutex::new(inner),
            settled: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CoInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A snapshot of the coordinator counters.
    pub fn stats(&self) -> ClusterStats {
        self.lock().stats
    }

    /// The adopted completion for a terminal job (test hook).
    pub fn completion(&self, job: u64) -> Option<Completion> {
        self.lock().jobs.get(&job)?.completion.clone()
    }

    /// The worker a job is currently dispatched to (harness hook).
    pub fn worker_of(&self, job: u64) -> Option<String> {
        match &self.lock().jobs.get(&job)?.phase {
            GlobalPhase::Dispatched { worker, .. } => Some(worker.clone()),
            _ => None,
        }
    }

    /// How many stale uploads were fenced for `job`.
    pub fn fenced_count(&self, job: u64) -> u64 {
        self.lock().jobs.get(&job).map_or(0, |j| j.fenced)
    }

    /// Whether every admitted job is terminal.
    pub fn all_done(&self) -> bool {
        let inner = self.lock();
        !inner.jobs.is_empty()
            && inner
                .jobs
                .values()
                .all(|j| matches!(j.phase, GlobalPhase::Done(_)))
    }

    /// Serves one request — from a client (`/jobs*`, `/health`) or a
    /// worker (`/cluster/*`).
    pub fn handle(&self, request: &WireRequest, now_ms: u64) -> WireResponse {
        let path = request.path();
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let wait_ms = request
            .query("wait")
            .and_then(|w| w.parse::<u64>().ok())
            .filter(|w| *w > 0);
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["health"]) | ("GET", ["cluster", "status"]) => self.status_response(),
            ("POST", ["jobs"]) => self.submit_response(request, now_ms),
            ("GET", ["jobs", id]) => self.job_response(id, false, wait_ms),
            ("GET", ["jobs", id, "result"]) => self.job_response(id, true, wait_ms),
            ("POST", ["jobs", id, "cancel"]) => self.cancel_response(id),
            ("POST", ["cluster", "register"]) => self.register_response(request, now_ms),
            ("POST", ["cluster", "heartbeat"]) => self.heartbeat_response(request, now_ms),
            ("POST", ["cluster", "complete"]) => self.complete_response(request, now_ms),
            _ => not_found(),
        }
    }

    fn status_response(&self) -> WireResponse {
        let inner = self.lock();
        let s = inner.stats;
        let workers = array(inner.membership.all().iter().map(|w| {
            Obj::new()
                .str("name", &w.name)
                .str("peer", &w.peer)
                .str("state", w.state.as_str())
                .num("incarnation", w.incarnation)
                .str("breaker", w.breaker.as_str())
                .num("queue_depth", w.load.queue_depth)
                .num("running", w.load.running)
                .num("memory_bytes", w.load.memory_bytes)
                .num("spill_bytes", w.load.spill_bytes)
                .build()
        }));
        let pending = inner
            .jobs
            .values()
            .filter(|j| j.phase == GlobalPhase::Pending)
            .count();
        let running = inner
            .jobs
            .values()
            .filter(|j| matches!(j.phase, GlobalPhase::Dispatched { .. }))
            .count();
        let body = Obj::new()
            .str("status", "ok")
            .str("role", "coordinator")
            .num("pending", pending as u64)
            .num("running", running as u64)
            .num("submitted", s.submitted)
            .num("completed", s.completed)
            .num("shed", s.shed)
            .num("dispatches", s.dispatches)
            .num("migrations", s.migrations)
            .num("fenced", s.fenced)
            .num("snapshots_shipped", s.snapshots_shipped)
            .num("restored", s.restored)
            .num("hedges", s.hedges)
            .num("expired", s.expired)
            .num("breaker_trips", s.breaker_trips)
            .raw("workers", &workers)
            .build();
        WireResponse::new(200, body.into_bytes())
    }

    fn submit_response(&self, request: &WireRequest, now_ms: u64) -> WireResponse {
        let source = match String::from_utf8(request.body.clone()) {
            Ok(source) if !source.trim().is_empty() => source,
            Ok(_) => return bad_request("empty body: POST the .pnp source"),
            Err(_) => return bad_request("body is not UTF-8"),
        };
        let config = match resolve_job_config(&|key| request.query(key), self.config.default_search)
        {
            Ok(config) => config,
            Err(message) => return bad_request(&message),
        };
        let tenant = request.query("tenant").unwrap_or_else(|| "default".into());
        let required_workers = request
            .query("workers")
            .and_then(|w| w.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        let idem = request.query("idem");

        let mut inner = self.lock();
        if let Some(key) = &idem {
            if let Some(&id) = inner.idem.get(key) {
                return accepted(id);
            }
        }
        let open = |inner: &CoInner, tenant: Option<&str>| {
            inner
                .jobs
                .values()
                .filter(|j| !matches!(j.phase, GlobalPhase::Done(_)))
                .filter(|j| tenant.is_none_or(|t| j.tenant == t))
                .count()
        };
        let shed = |inner: &mut CoInner, reason: &str| {
            inner.stats.shed += 1;
            let depth = open(inner, None);
            shed_response(reason, self.config.queue.retry_after_for(depth), depth)
        };
        if inner.membership.live().len() < required_workers {
            return shed(&mut inner, "workers");
        }
        if open(&inner, None) >= self.config.capacity {
            return shed(&mut inner, "queue_full");
        }
        if open(&inner, Some(&tenant)) >= self.config.tenant_quota {
            return shed(&mut inner, "tenant_quota");
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.stats.submitted += 1;
        if let Some(key) = &idem {
            inner.idem.insert(key.clone(), id);
        }
        let mut request = JobRequest::new(source, config);
        request.idem = idem;
        // The end-to-end envelope starts at admission: queueing time,
        // dispatch, migrations, and hedges all spend from it.
        let deadline_at_ms = config
            .job_deadline
            .map(|d| now_ms.saturating_add(d.as_millis() as u64));
        inner.jobs.insert(
            id,
            GlobalJob {
                id,
                tenant,
                request,
                epoch: 0,
                attempts: 0,
                phase: GlobalPhase::Pending,
                last_worker: None,
                not_before_ms: now_ms,
                required_workers,
                completion: None,
                fenced: 0,
                deadline_at_ms,
                dispatched_at_ms: None,
                hedge: None,
            },
        );
        accepted(id)
    }

    fn job_response(&self, id: &str, with_result: bool, wait_ms: Option<u64>) -> WireResponse {
        let Some(id) = parse_global(id) else {
            return not_found();
        };
        let mut inner = self.lock();
        // Long-poll: block up to the window for a terminal phase. Only
        // real-mode clients pass `wait` — the single-threaded sim
        // harness never does, so this cannot deadlock virtual time.
        if let Some(window) = wait_ms {
            let deadline = std::time::Instant::now() + Duration::from_millis(window.min(60_000));
            while !matches!(
                inner.jobs.get(&id).map(|j| &j.phase),
                None | Some(GlobalPhase::Done(_))
            ) {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    break;
                }
                let (guard, _timeout) = self
                    .settled
                    .wait_timeout(inner, left)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }
        let inner = inner;
        let Some(job) = inner.jobs.get(&id) else {
            return not_found();
        };
        let phase = match &job.phase {
            GlobalPhase::Pending if job.attempts > 0 => "retrying",
            GlobalPhase::Pending => "queued",
            GlobalPhase::Dispatched { .. } => "running",
            GlobalPhase::Done(_) => "done",
        };
        let mut obj = Obj::new()
            .str("id", &format!("g-{id}"))
            .str("phase", phase)
            .num("attempts", job.attempts)
            .num("epoch", job.epoch);
        if let Some(deadline) = job.deadline_at_ms {
            obj = obj.num("deadline_at_ms", deadline);
        }
        if let GlobalPhase::Dispatched { worker, .. } = &job.phase {
            obj = obj.str("worker", worker);
            if let Some(hedge) = &job.hedge {
                obj = obj.str("hedge_worker", &hedge.worker);
            }
        }
        let done = if let GlobalPhase::Done(verdict) = job.phase {
            obj = obj
                .str("verdict", verdict.as_str())
                .num("exit_code", verdict.exit_code());
            true
        } else {
            false
        };
        if with_result && done {
            if let Some(completion) = &job.completion {
                if let Some(results) = &completion.results {
                    obj = obj.raw("properties", &array(results.iter().map(property_json)));
                }
                if let Some(error) = &completion.error {
                    obj = obj.raw(
                        "error",
                        &Obj::new()
                            .str("kind", error.kind)
                            .str("reason", &error.reason)
                            .num("attempts", error.attempts)
                            .bool("retryable", false)
                            .build(),
                    );
                }
            }
        }
        let status = if with_result && !done { 202 } else { 200 };
        WireResponse::new(status, obj.build().into_bytes())
    }

    fn cancel_response(&self, id: &str) -> WireResponse {
        let Some(id) = parse_global(id) else {
            return not_found();
        };
        let relay = {
            let mut inner = self.lock();
            let worker = match inner.jobs.get(&id) {
                None => return not_found(),
                Some(job) => match &job.phase {
                    GlobalPhase::Done(_) => None,
                    GlobalPhase::Dispatched { worker, .. } => Some(worker.clone()),
                    GlobalPhase::Pending => None,
                },
            };
            let already_done = matches!(
                inner.jobs.get(&id).map(|j| &j.phase),
                Some(GlobalPhase::Done(_))
            );
            if already_done {
                None
            } else {
                let peer = worker
                    .as_deref()
                    .and_then(|w| inner.membership.get(w).map(|w| w.peer.clone()));
                let job = inner.jobs.get_mut(&id).expect("job exists");
                job.phase = GlobalPhase::Done(Verdict::Cancelled);
                inner.stats.completed += 1;
                self.evict_terminal(&mut inner);
                self.settled.notify_all();
                peer
            }
        };
        if let Some(peer) = relay {
            // Best effort: the fence discards the worker's eventual
            // upload either way.
            let _ = self.transport.request(
                &peer,
                &WireRequest::post(format!("/cluster/cancel?job={id}"), Vec::new()),
            );
        }
        let body = Obj::new()
            .str("id", &format!("g-{id}"))
            .bool("cancelled", true)
            .build();
        WireResponse::new(200, body.into_bytes())
    }

    fn register_response(&self, request: &WireRequest, now_ms: u64) -> WireResponse {
        let (Some(name), Some(peer)) = (request.query("name"), request.query("peer")) else {
            return bad_request("register needs name and peer");
        };
        let mut inner = self.lock();
        let incarnation = inner.membership.register(&name, &peer, now_ms);
        let body = Obj::new()
            .str("name", &name)
            .num("incarnation", incarnation)
            .build();
        WireResponse::new(200, body.into_bytes())
    }

    fn heartbeat_response(&self, request: &WireRequest, now_ms: u64) -> WireResponse {
        let Some(name) = request.query("name") else {
            return bad_request("heartbeat needs name");
        };
        // Load telemetry rides on the heartbeat as query parameters; a
        // heartbeat without them leaves the last report in place.
        let field = |key: &str| request.query(key).and_then(|v| v.parse::<u64>().ok());
        let load = field("queue").map(|queue_depth| WorkerLoad {
            queue_depth,
            running: field("running").unwrap_or(0),
            memory_bytes: field("mem").unwrap_or(0),
            spill_bytes: field("spill").unwrap_or(0),
        });
        let mut inner = self.lock();
        if inner.membership.heartbeat(&name, now_ms, load) {
            WireResponse::new(200, Obj::new().str("status", "ok").build().into_bytes())
        } else {
            // Dead or unknown: the worker must re-register (fresh
            // incarnation) before it is placeable again.
            not_found()
        }
    }

    fn complete_response(&self, request: &WireRequest, now_ms: u64) -> WireResponse {
        let completion = match decode_completion(&request.body) {
            Ok(completion) => completion,
            Err(reason) => return bad_request(&reason),
        };
        let mut inner = self.lock();
        self.adopt_completion(&mut inner, completion, now_ms)
    }

    /// The single point where completions are accepted or fenced. A
    /// hedged job has two live epochs (primary and hedge); whichever
    /// reports a terminal result first is adopted, which makes the job
    /// terminal and fences the loser with the job-already-terminal 409.
    fn adopt_completion(
        &self,
        inner: &mut CoInner,
        completion: Completion,
        now_ms: u64,
    ) -> WireResponse {
        let job_id = completion.job;
        let Some(job) = inner.jobs.get_mut(&job_id) else {
            return not_found();
        };
        let fence = |job: &mut GlobalJob, stats: &mut ClusterStats, why: &str| {
            job.fenced += 1;
            stats.fenced += 1;
            let body = Obj::new()
                .str("error", "fenced")
                .str("reason", why)
                .num("epoch", job.epoch)
                .build();
            WireResponse::new(409, body.into_bytes())
        };
        if matches!(job.phase, GlobalPhase::Done(_)) {
            // Deadline-expired jobs keep their honest Inconclusive
            // verdict, but a matching-epoch upload that arrives late
            // still donates its partial statistics to the result body
            // (the job stays counted exactly once — `completed` was
            // incremented at expiry).
            if matches!(job.phase, GlobalPhase::Done(Verdict::Inconclusive))
                && job.completion.is_none()
                && completion.epoch == job.top_epoch()
            {
                job.completion = Some(completion);
                return WireResponse::new(
                    200,
                    Obj::new().str("status", "recorded").build().into_bytes(),
                );
            }
            return fence(job, &mut inner.stats, "job already terminal");
        }
        let hedge_epoch = job.hedge.as_ref().map(|h| h.epoch);
        if completion.epoch != job.epoch && Some(completion.epoch) != hedge_epoch {
            return fence(job, &mut inner.stats, "stale epoch");
        }
        // Duration sample for the hedge threshold: measured from the
        // attempt the completion actually came from.
        let started = if Some(completion.epoch) == hedge_epoch {
            job.hedge.as_ref().map(|h| h.at_ms)
        } else {
            job.dispatched_at_ms
        };
        if let Some(started) = started {
            record_duration(&mut inner.durations, now_ms.saturating_sub(started));
        }
        job.phase = GlobalPhase::Done(completion.verdict);
        job.last_worker = Some(completion.worker.clone());
        job.completion = Some(completion);
        inner.stats.completed += 1;
        self.evict_terminal(inner);
        self.settled.notify_all();
        WireResponse::new(
            200,
            Obj::new().str("status", "recorded").build().into_bytes(),
        )
    }

    /// Evicts the oldest terminal jobs (and their idempotency keys)
    /// once more than `retain_done` are held, so a long-lived
    /// coordinator does not grow without bound.
    fn evict_terminal(&self, inner: &mut CoInner) {
        let done: Vec<u64> = inner
            .jobs
            .values()
            .filter(|j| matches!(j.phase, GlobalPhase::Done(_)))
            .map(|j| j.id)
            .collect();
        if done.len() <= self.config.retain_done {
            return;
        }
        // BTreeMap iteration is id-ascending, so `done` is oldest-first.
        for id in &done[..done.len() - self.config.retain_done] {
            if let Some(job) = inner.jobs.remove(id) {
                if let Some(key) = &job.request.idem {
                    if inner.idem.get(key) == Some(&job.id) {
                        inner.idem.remove(key);
                    }
                }
            }
        }
    }

    /// One coordinator step at `now_ms`: run the failure detector,
    /// migrate jobs off newly dead workers, expire jobs past their
    /// end-to-end deadline, poll request-deadline overruns, hedge
    /// stalled dispatches, and dispatch pending jobs fair-share across
    /// tenants and least-loaded across workers.
    pub fn tick(&self, now_ms: u64) {
        // Phase 1 (locked): heartbeat detector + migration of jobs on
        // newly dead workers + end-to-end deadline expiry.
        {
            let mut inner = self.lock();
            let newly_dead = inner.membership.tick(now_ms);
            for worker in newly_dead {
                self.migrate_from(&mut inner, &worker, now_ms);
            }
            self.expire_deadlines(&mut inner, now_ms);
        }

        // Phase 2: request-deadline detection. Collect overdue
        // dispatches under the lock, poll outside it.
        let polls: Vec<Outbound> = {
            let inner = self.lock();
            inner
                .jobs
                .values()
                .filter_map(|job| match &job.phase {
                    GlobalPhase::Dispatched { worker, at_ms }
                        if now_ms.saturating_sub(*at_ms) >= self.config.request_timeout_ms =>
                    {
                        let peer = inner.membership.get(worker)?.peer.clone();
                        Some(Outbound::Poll {
                            job: job.id,
                            epoch: job.epoch,
                            worker: worker.clone(),
                            peer,
                        })
                    }
                    _ => None,
                })
                .collect()
        };
        for poll in polls {
            let Outbound::Poll {
                job,
                epoch,
                worker,
                peer,
            } = poll
            else {
                continue;
            };
            let request = WireRequest::get(format!("/cluster/poll?job={job}&epoch={epoch}"));
            match self.transport.request(&peer, &request) {
                Ok(response) if response.status == 200 => {
                    if let Ok(completion) = decode_completion(&response.body) {
                        let mut inner = self.lock();
                        inner.membership.record_success(&worker, now_ms);
                        let adopted = self.adopt_completion(&mut inner, completion, now_ms);
                        if adopted.status != 200 && still_dispatched(&inner, job, epoch, &worker) {
                            // The worker answered with a stale attempt's
                            // result; it will never produce the current
                            // epoch, so move the job elsewhere.
                            self.migrate_job(&mut inner, job, now_ms);
                        }
                    }
                }
                Ok(response) if response.status == 202 => {
                    // Reachable and still working: push the deadline
                    // out by re-stamping the dispatch time.
                    let mut inner = self.lock();
                    inner.membership.record_success(&worker, now_ms);
                    if let Some(job) = inner.jobs.get_mut(&job) {
                        if let GlobalPhase::Dispatched { worker: w, at_ms } = &mut job.phase {
                            if *w == worker {
                                *at_ms = now_ms;
                            }
                        }
                    }
                }
                Ok(_) => {
                    // Reachable but the job is gone (the worker
                    // restarted and lost its in-memory state): migrate
                    // this job without condemning the whole worker.
                    let mut inner = self.lock();
                    if still_dispatched(&inner, job, epoch, &worker) {
                        self.migrate_job(&mut inner, job, now_ms);
                    }
                }
                Err(_) => {
                    // Unreachable past the request deadline: feed the
                    // breaker, declare the worker dead now, and migrate
                    // its jobs.
                    let mut inner = self.lock();
                    if inner.membership.record_failure(&worker, now_ms) {
                        inner.stats.breaker_trips += 1;
                    }
                    if inner.membership.declare_dead(&worker) {
                        self.migrate_from(&mut inner, &worker, now_ms);
                    }
                }
            }
        }

        // Phase 2.5: hedged dispatch. A dispatch that has been out
        // longer than the percentile-derived threshold gets a
        // speculative second attempt on another worker, under a fresh
        // epoch; first terminal result wins, the loser is fenced.
        let hedges = {
            let mut inner = self.lock();
            self.select_hedges(&mut inner, now_ms)
        };
        for action in hedges {
            if let Outbound::Dispatch {
                dispatch,
                worker,
                peer,
                ..
            } = action
            {
                self.send_hedge(*dispatch, &worker, &peer, now_ms);
            }
        }

        // Phase 3: dispatch. Select placements fair-share under the
        // lock; fetch snapshots and send dispatches outside it.
        let outbound = {
            let mut inner = self.lock();
            self.select_dispatches(&mut inner, now_ms)
        };
        for action in outbound {
            match action {
                Outbound::Poll { .. } => {}
                Outbound::Dispatch {
                    mut dispatch,
                    worker,
                    peer,
                    fetch_from,
                } => {
                    // Snapshot shipping: when the target is not the
                    // sticky worker, try to pull the newest checkpoint
                    // from wherever the job last ran (even a worker the
                    // detector condemned — zombies often still answer).
                    if let Some(source_peer) = fetch_from {
                        let request =
                            WireRequest::get(format!("/cluster/snapshot?job={}", dispatch.job));
                        if let Ok(response) = self.transport.request(&source_peer, &request) {
                            if response.status == 200 && !response.body.is_empty() {
                                dispatch.request.seed_snapshot = Some(response.body);
                                self.lock().stats.snapshots_shipped += 1;
                            }
                        }
                    }
                    self.send_dispatch(*dispatch, &worker, &peer, now_ms);
                }
            }
        }
    }

    /// Re-queues every job dispatched to `worker` behind a bumped epoch.
    fn migrate_from(&self, inner: &mut CoInner, worker: &str, now_ms: u64) {
        let ids: Vec<u64> = inner
            .jobs
            .values()
            .filter(|job| {
                matches!(&job.phase, GlobalPhase::Dispatched { worker: w, .. } if w == worker)
            })
            .map(|job| job.id)
            .collect();
        for id in ids {
            self.migrate_job(inner, id, now_ms);
        }
    }

    /// Re-queues one dispatched job behind a bumped epoch, or fails it
    /// when its dispatch budget is spent.
    fn migrate_job(&self, inner: &mut CoInner, id: u64, now_ms: u64) {
        let max_attempts = self.config.max_attempts;
        let Some(job) = inner.jobs.get_mut(&id) else {
            return;
        };
        if matches!(job.phase, GlobalPhase::Done(_)) {
            return;
        }
        // Bump past *both* live epochs so the primary and any hedge
        // are fenced when they eventually report.
        job.epoch = job.top_epoch() + 1;
        job.hedge = None;
        job.dispatched_at_ms = None;
        if job.attempts >= max_attempts {
            job.phase = GlobalPhase::Done(Verdict::Failed);
            inner.stats.completed += 1;
            self.evict_terminal(inner);
            self.settled.notify_all();
            return;
        }
        job.phase = GlobalPhase::Pending;
        job.not_before_ms = now_ms + self.config.backoff_base_ms;
        inner.stats.migrations += 1;
    }

    /// Force-expires jobs whose end-to-end deadline has passed: an
    /// honest `Inconclusive` (exit 3) instead of a hang. A *pending*
    /// job expires the moment its deadline does; a *dispatched* job
    /// gets one request-timeout of grace first, because its worker's
    /// clamped time budget should trip right at the deadline and
    /// deliver the same verdict with partial statistics — the backstop
    /// only fires when that completion never arrives.
    fn expire_deadlines(&self, inner: &mut CoInner, now_ms: u64) {
        let grace = self.config.request_timeout_ms;
        let expired: Vec<u64> = inner
            .jobs
            .values()
            .filter(|job| {
                let Some(deadline) = job.deadline_at_ms else {
                    return false;
                };
                match &job.phase {
                    GlobalPhase::Pending => now_ms >= deadline,
                    GlobalPhase::Dispatched { .. } => now_ms >= deadline.saturating_add(grace),
                    GlobalPhase::Done(_) => false,
                }
            })
            .map(|job| job.id)
            .collect();
        for id in expired {
            let job = inner.jobs.get_mut(&id).expect("job exists");
            job.phase = GlobalPhase::Done(Verdict::Inconclusive);
            inner.stats.completed += 1;
            inner.stats.expired += 1;
            self.evict_terminal(inner);
            self.settled.notify_all();
        }
    }

    /// The stall threshold for hedging, derived from recent completed
    /// dispatch durations: twice the p95, clamped between the
    /// configured floor and the request timeout. With too few samples
    /// to call a percentile, half the request timeout. A floor raised
    /// past the request timeout effectively disables hedging — the
    /// request-deadline poll always reconciles first.
    fn hedge_threshold(&self, inner: &CoInner) -> u64 {
        let floor = self.config.hedge_floor_ms;
        let cap = self.config.request_timeout_ms.max(floor);
        if inner.durations.len() < 5 {
            return (self.config.request_timeout_ms / 2).max(floor);
        }
        let mut sorted = inner.durations.clone();
        sorted.sort_unstable();
        let p95 = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)];
        p95.saturating_mul(2).clamp(floor, cap)
    }

    /// Picks stalled dispatches to hedge, marking the hedge under the
    /// lock (so a concurrent tick cannot double-hedge) and returning
    /// the sends to perform outside it. At most one hedge per dispatch;
    /// the hedge runs under `top_epoch + 1` on a different worker.
    fn select_hedges(&self, inner: &mut CoInner, now_ms: u64) -> Vec<Outbound> {
        let threshold = self.hedge_threshold(inner);
        let mut inflight: HashMap<String, usize> = HashMap::new();
        for job in inner.jobs.values() {
            if let GlobalPhase::Dispatched { worker, .. } = &job.phase {
                *inflight.entry(worker.clone()).or_insert(0) += 1;
            }
            if let Some(hedge) = &job.hedge {
                *inflight.entry(hedge.worker.clone()).or_insert(0) += 1;
            }
        }
        let candidates: Vec<(u64, String)> = inner
            .jobs
            .values()
            .filter_map(|job| match (&job.phase, &job.hedge, job.dispatched_at_ms) {
                (GlobalPhase::Dispatched { worker, .. }, None, Some(started))
                    if now_ms.saturating_sub(started) >= threshold
                        && job.deadline_at_ms.is_none_or(|d| now_ms < d) =>
                {
                    Some((job.id, worker.clone()))
                }
                _ => None,
            })
            .collect();
        let mut actions = Vec::new();
        for (id, primary) in candidates {
            let Some(target) = inner.membership.place_weighted(
                &format!("g-{id}-hedge"),
                Some(&primary),
                &inflight,
            ) else {
                continue;
            };
            if target == primary {
                // Only one placeable worker: a hedge there would just
                // double the load that made it slow.
                continue;
            }
            let Some(peer) = inner.membership.get(&target).map(|w| w.peer.clone()) else {
                continue;
            };
            *inflight.entry(target.clone()).or_insert(0) += 1;
            let job = inner.jobs.get_mut(&id).expect("job exists");
            let hedge_epoch = job.top_epoch() + 1;
            job.hedge = Some(HedgeAttempt {
                worker: target.clone(),
                epoch: hedge_epoch,
                at_ms: now_ms,
            });
            inner.stats.hedges += 1;
            inner.stats.dispatches += 1;
            let job = inner.jobs.get(&id).expect("job exists");
            actions.push(Outbound::Dispatch {
                dispatch: Box::new(dispatch_payload(job, hedge_epoch, now_ms)),
                worker: target,
                peer,
                // Hedges start fresh: the primary still owns the
                // newest checkpoint, and pulling it from a straggler
                // would stall the hedge on the same slow worker.
                fetch_from: None,
            });
        }
        actions
    }

    /// Sends one hedge dispatch and reconciles: a failed or shed hedge
    /// is simply cleared (the primary is still running; a later tick
    /// may hedge again), never migrated.
    fn send_hedge(&self, dispatch: Dispatch, worker: &str, peer: &str, now_ms: u64) {
        let job_id = dispatch.job;
        let epoch = dispatch.epoch;
        let body = encode_dispatch(&dispatch);
        let request = WireRequest::post("/cluster/execute".to_string(), body);
        let result = self.transport.request(peer, &request);
        let mut inner = self.lock();
        let accepted = matches!(&result, Ok(response) if response.status < 300);
        match &result {
            Ok(_) => inner.membership.record_success(worker, now_ms),
            Err(error) if !error.request_delivered() => {
                if inner.membership.record_failure(worker, now_ms) {
                    inner.stats.breaker_trips += 1;
                }
            }
            // Ambiguous (timeout/reset after delivery): the hedge may
            // be running; keep it armed and let the fence sort it out.
            Err(_) => return,
        }
        if !accepted {
            if let Some(job) = inner.jobs.get_mut(&job_id) {
                if job.hedge.as_ref().is_some_and(|h| h.epoch == epoch) {
                    job.hedge = None;
                }
            }
        }
    }

    /// Fair-share placement: walk tenants round-robin, placing each
    /// tenant's oldest ready job until workers run out of slots.
    /// Worker choice is weighted by load — heartbeat-reported queue
    /// depth and running attempts plus the coordinator's own in-flight
    /// count — with sticky checkpoint affinity kept as a *preference*:
    /// the checkpoint holder wins unless it is loaded well past the
    /// least-loaded alternative.
    fn select_dispatches(&self, inner: &mut CoInner, now_ms: u64) -> Vec<Outbound> {
        let mut inflight: HashMap<String, usize> = HashMap::new();
        for job in inner.jobs.values() {
            if let GlobalPhase::Dispatched { worker, .. } = &job.phase {
                *inflight.entry(worker.clone()).or_insert(0) += 1;
            }
            if let Some(hedge) = &job.hedge {
                *inflight.entry(hedge.worker.clone()).or_insert(0) += 1;
            }
        }
        let mut tenants: Vec<String> = inner
            .jobs
            .values()
            .filter(|j| j.phase == GlobalPhase::Pending && j.not_before_ms <= now_ms)
            .map(|j| j.tenant.clone())
            .collect();
        tenants.sort();
        tenants.dedup();
        if tenants.is_empty() {
            return Vec::new();
        }
        let start = (inner.rr as usize) % tenants.len();
        inner.rr = inner.rr.wrapping_add(1);
        let mut actions = Vec::new();
        let mut placed: Vec<u64> = Vec::new();
        // One pass per tenant, starting at the rotating cursor; each
        // tenant places its ready jobs oldest-first while slots remain.
        for offset in 0..tenants.len() {
            let tenant = &tenants[(start + offset) % tenants.len()];
            let ready: Vec<u64> = inner
                .jobs
                .values()
                .filter(|j| {
                    j.tenant == *tenant
                        && j.phase == GlobalPhase::Pending
                        && j.not_before_ms <= now_ms
                })
                .map(|j| j.id)
                .collect();
            for id in ready {
                let job = inner.jobs.get(&id).expect("job exists");
                if inner.membership.live().len() < job.required_workers {
                    continue;
                }
                // Sticky affinity as a preference: the worker already
                // holding this job's checkpoint wins unless it is
                // loaded more than one full slot allotment past the
                // least-loaded alternative; a sticky worker that is
                // dead, suspect, or breaker-open is skipped entirely
                // (and avoided in the weighted choice — it just
                // failed).
                let extra = |name: &str| inflight.get(name).copied().unwrap_or(0);
                let sticky = job.last_worker.as_deref();
                let sticky_score =
                    sticky.and_then(|name| inner.membership.weighted_score(name, extra(name)));
                let target = match (sticky, sticky_score) {
                    (Some(name), Some(score)) => {
                        let slack = self.config.max_inflight_per_worker as u64;
                        let best =
                            inner
                                .membership
                                .place_weighted(&format!("g-{id}"), None, &inflight);
                        let best_score = best
                            .as_deref()
                            .and_then(|b| inner.membership.weighted_score(b, extra(b)))
                            .unwrap_or(score);
                        if score <= best_score.saturating_add(slack) {
                            Some(name.to_string())
                        } else {
                            best
                        }
                    }
                    _ => inner
                        .membership
                        .place_weighted(&format!("g-{id}"), sticky, &inflight),
                };
                let Some(worker) = target else {
                    continue;
                };
                let slots = inflight.entry(worker.clone()).or_insert(0);
                if *slots >= self.config.max_inflight_per_worker {
                    continue;
                }
                *slots += 1;
                placed.push(id);
                let peer = inner
                    .membership
                    .get(&worker)
                    .expect("placed worker exists")
                    .peer
                    .clone();
                let job = inner.jobs.get(&id).expect("job exists");
                // Resolve the snapshot source now, before placement
                // overwrites `last_worker` with the new target.
                let fetch_from = job
                    .last_worker
                    .as_deref()
                    .filter(|last| *last != worker)
                    .and_then(|last| inner.membership.get(last).map(|w| w.peer.clone()));
                actions.push(Outbound::Dispatch {
                    dispatch: Box::new(dispatch_payload(job, job.epoch, now_ms)),
                    worker,
                    peer,
                    fetch_from,
                });
            }
        }
        // Mark placements as dispatched *before* releasing the lock so
        // a concurrent tick cannot double-place them; a failed send
        // reverts to Pending.
        for id in &placed {
            let job = inner.jobs.get_mut(id).expect("job exists");
            job.attempts += 1;
            inner.stats.dispatches += 1;
        }
        for action in &actions {
            if let Outbound::Dispatch {
                dispatch, worker, ..
            } = action
            {
                let job = inner.jobs.get_mut(&dispatch.job).expect("job exists");
                job.phase = GlobalPhase::Dispatched {
                    worker: worker.clone(),
                    at_ms: now_ms,
                };
                job.last_worker = Some(worker.clone());
                job.dispatched_at_ms = Some(now_ms);
                job.hedge = None;
            }
        }
        actions
    }

    fn send_dispatch(&self, dispatch: Dispatch, worker: &str, peer: &str, now_ms: u64) {
        let job_id = dispatch.job;
        let epoch = dispatch.epoch;
        let body = encode_dispatch(&dispatch);
        let request = WireRequest::post("/cluster/execute".to_string(), body);
        let result = self.transport.request(peer, &request);
        let mut inner = self.lock();
        // Breaker accounting is independent of whether the dispatch is
        // still the live one: it judges the *worker*, not the job.
        match &result {
            Ok(_) => inner.membership.record_success(worker, now_ms),
            Err(error) if !error.request_delivered() => {
                if inner.membership.record_failure(worker, now_ms) {
                    inner.stats.breaker_trips += 1;
                }
            }
            Err(_) => {}
        }
        let Some(job) = inner.jobs.get_mut(&job_id) else {
            return;
        };
        // The job may have completed or migrated while we were off the
        // lock; only reconcile if this dispatch is still the live one.
        let still_ours = job.epoch == epoch
            && matches!(&job.phase, GlobalPhase::Dispatched { worker: w, .. } if w == worker);
        if !still_ours {
            return;
        }
        match result {
            Ok(response) if response.status < 300 => {}
            Ok(response) if response.status == 409 => {
                // The worker has a newer epoch for this job than we
                // thought — leave it dispatched; the poll path
                // reconciles.
                let _ = response;
            }
            Ok(response) if response.status == 503 => {
                // Shed: the worker never started the job, so refund the
                // attempt, back off by its hint, and retry placement.
                job.phase = GlobalPhase::Pending;
                job.attempts = job.attempts.saturating_sub(1);
                let hint = response
                    .retry_after
                    .map(|s| s * 1000)
                    .unwrap_or(self.config.backoff_base_ms);
                job.not_before_ms = now_ms + hint;
            }
            Ok(_) => {
                // Rejected (4xx/5xx): likely deterministic, so the
                // attempt stays consumed — a persistent rejection burns
                // through the budget instead of retrying forever.
                if job.attempts >= self.config.max_attempts {
                    job.phase = GlobalPhase::Done(Verdict::Failed);
                    inner.stats.completed += 1;
                    self.evict_terminal(&mut inner);
                    self.settled.notify_all();
                } else {
                    job.phase = GlobalPhase::Pending;
                    job.not_before_ms = now_ms + self.config.backoff_base_ms;
                }
            }
            Err(error) => {
                if error.request_delivered() {
                    // Ambiguous: the worker may be running it. Leave it
                    // dispatched; the request-deadline poll reconciles
                    // (adopts the completion or migrates).
                } else {
                    // Provably undelivered: safe to retry elsewhere.
                    job.phase = GlobalPhase::Pending;
                    job.attempts = job.attempts.saturating_sub(1);
                    job.not_before_ms = now_ms + self.config.backoff_base_ms;
                    drop(inner);
                    let mut inner = self.lock();
                    if inner.membership.declare_dead(worker) {
                        self.migrate_from(&mut inner, worker, now_ms);
                    }
                }
            }
        }
    }

    /// Persists every non-terminal job to `cluster.pnpq` so a restarted
    /// coordinator resumes exactly where this one stopped. Dispatched
    /// jobs are persisted too — their epoch is bumped on restore, so a
    /// completion from the pre-restart dispatch is fenced.
    pub fn drain(&self) {
        let inner = self.lock();
        let open: Vec<&GlobalJob> = inner
            .jobs
            .values()
            .filter(|j| !matches!(j.phase, GlobalPhase::Done(_)))
            .collect();
        let path = self.config.state_dir.join("cluster.pnpq");
        if open.is_empty() {
            let _ = self.config.vfs.remove(&path);
            return;
        }
        let bytes = encode_cluster_queue(inner.next_id, &open);
        let _ = self.config.vfs.create_dir_all(&self.config.state_dir);
        if commit_replace(self.config.vfs.as_ref(), &path, &bytes).is_err() {
            eprintln!(
                "pnp-serve: failed to persist cluster queue to {}",
                path.display()
            );
        }
    }
}

fn encode_cluster_queue(next_id: u64, jobs: &[&GlobalJob]) -> Vec<u8> {
    let mut w = Writer::new(CLUSTER_QUEUE_MAGIC);
    w.u64(next_id);
    w.u64(jobs.len() as u64);
    for job in jobs {
        w.u64(job.epoch);
        w.u32(job.attempts);
        w.str(&job.tenant);
        w.u64(job.required_workers as u64);
        // The deadline is persisted as the *absolute* coordinator
        // timestamp: a restart does not reset the envelope.
        w.opt_u64(job.deadline_at_ms);
        match &job.request.idem {
            Some(key) => {
                w.u8(1);
                w.str(key);
            }
            None => w.u8(0),
        }
        let mut request = job.request.clone();
        request.seed_snapshot = None;
        w.bytes(&encode_queue(&[PersistedJob {
            id: job.id,
            attempts: job.attempts,
            request,
        }]));
    }
    w.finish()
}

fn decode_cluster_queue(bytes: &[u8]) -> Result<(u64, Vec<GlobalJob>), String> {
    let mut r = Reader::open(bytes, CLUSTER_QUEUE_MAGIC, "cluster queue")?;
    let next_id = r.u64()?;
    let count = r.usize()?;
    if count > 100_000 {
        return Err(format!("implausible job count {count}"));
    }
    let mut jobs = Vec::with_capacity(count);
    for _ in 0..count {
        let epoch = r.u64()?;
        let attempts = r.u32()?;
        let tenant = r.str()?;
        let required_workers = r.usize()?;
        let deadline_at_ms = r.opt_u64()?;
        let idem = match r.u8()? {
            0 => None,
            1 => Some(r.str()?),
            other => return Err(format!("bad idem flag {other}")),
        };
        let inner_bytes = r.blob()?;
        let mut decoded = decode_queue(&inner_bytes)?;
        let persisted = match (decoded.pop(), decoded.is_empty()) {
            (Some(job), true) => job,
            _ => return Err("cluster queue entry must carry exactly one job".into()),
        };
        let mut request = persisted.request;
        request.idem = idem;
        jobs.push(GlobalJob {
            id: persisted.id,
            tenant,
            request,
            // Bump past the persisted epoch: any attempt dispatched
            // before the restart reports against a stale epoch.
            epoch: epoch + 1,
            attempts,
            phase: GlobalPhase::Pending,
            last_worker: None,
            not_before_ms: 0,
            required_workers,
            completion: None,
            fenced: 0,
            deadline_at_ms,
            dispatched_at_ms: None,
            hedge: None,
        });
    }
    r.done()?;
    Ok((next_id, jobs))
}

/// Builds the wire dispatch for one attempt of `job` under `epoch`,
/// re-deriving the remaining end-to-end window at `now_ms` and
/// clamping it into the kernel's time budget and the per-attempt
/// watchdog. Because the window is recomputed against the *original*
/// absolute deadline at every hop, a migrated or hedged attempt always
/// gets a smaller budget than its predecessor — the envelope only
/// shrinks. An already-expired window still dispatches with a minimal
/// budget so the worker reports an honest `Inconclusive` with partial
/// stats instead of the job hanging.
fn dispatch_payload(job: &GlobalJob, epoch: u64, now_ms: u64) -> Dispatch {
    let mut request = job.request.clone();
    if let Some(deadline) = job.deadline_at_ms {
        let remaining = Duration::from_millis(deadline.saturating_sub(now_ms));
        request.config.config.clamp_time(remaining);
        // The watchdog gets a hair of grace past the kernel budget so
        // the cooperative time trip (honest partial stats) wins the
        // race against the watchdog's cancel-and-retry.
        let watchdog = remaining.max(Duration::from_millis(1)) + Duration::from_millis(100);
        request.config.deadline = Some(match request.config.deadline {
            Some(existing) => existing.min(watchdog),
            None => watchdog,
        });
    }
    Dispatch {
        job: job.id,
        epoch,
        attempts: job.attempts,
        deadline_at_ms: job.deadline_at_ms,
        request,
    }
}

/// Appends one dispatch→adoption duration sample, keeping the ring
/// bounded (the hedge threshold only needs a recent window).
fn record_duration(durations: &mut Vec<u64>, sample_ms: u64) {
    const KEEP: usize = 256;
    if durations.len() >= KEEP {
        durations.remove(0);
    }
    durations.push(sample_ms);
}

/// Whether `job` is still dispatched to `worker` under `epoch` — the
/// guard every poll-outcome handler must pass before acting, because a
/// poll collected at the top of `tick` can go stale while earlier polls
/// in the same loop migrate jobs or condemn workers.
fn still_dispatched(inner: &CoInner, job: u64, epoch: u64, worker: &str) -> bool {
    inner.jobs.get(&job).is_some_and(|j| {
        j.epoch == epoch
            && matches!(&j.phase, GlobalPhase::Dispatched { worker: w, .. } if w == worker)
    })
}

fn parse_global(id: &str) -> Option<u64> {
    id.strip_prefix("g-")?.parse().ok()
}

fn not_found() -> WireResponse {
    WireResponse::new(
        404,
        Obj::new().str("error", "not_found").build().into_bytes(),
    )
}

fn bad_request(message: &str) -> WireResponse {
    WireResponse::new(400, Obj::new().str("error", message).build().into_bytes())
}

fn accepted(id: u64) -> WireResponse {
    let body = Obj::new()
        .str("id", &format!("g-{id}"))
        .str("status_url", &format!("/jobs/g-{id}"))
        .str("result_url", &format!("/jobs/g-{id}/result"))
        .build();
    WireResponse::new(202, body.into_bytes())
}

fn shed_response(reason: &str, retry_after: Duration, depth: usize) -> WireResponse {
    let body = Obj::new()
        .str("error", "overloaded")
        .str("reason", reason)
        .bool("retryable", true)
        .num("retry_after_ms", retry_after.as_millis() as u64)
        .num("queue_depth", depth as u64)
        .build();
    let mut response = WireResponse::new(503, body.into_bytes());
    response.retry_after = Some(retry_after.as_secs().max(1));
    response
}

/// The worker-side cluster adapter: executes dispatches on the local
/// [`Supervisor`], answers snapshot and poll requests, and pushes
/// completions back to the coordinator.
pub struct WorkerGateway {
    /// This worker's stable name.
    pub name: String,
    supervisor: Arc<Supervisor>,
    settled_retain: usize,
    inner: Mutex<GatewayInner>,
}

#[derive(Default)]
struct GatewayInner {
    /// Global job → the epoch we run it under and its local id.
    /// Settled entries stay so a duplicated dispatch of a finished
    /// epoch answers idempotently; [`settle`] evicts the oldest beyond
    /// [`ClusterConfig::settled_retain`] (a re-run of an evicted job is
    /// fenced by the coordinator's epoch check anyway).
    jobs: HashMap<u64, GatewayJob>,
}

/// Marks `job` settled and evicts the oldest settled entries beyond
/// `retain`, keeping a long-lived worker's map bounded.
fn settle(inner: &mut GatewayInner, job: u64, retain: usize) {
    if let Some(entry) = inner.jobs.get_mut(&job) {
        entry.settled = true;
    }
    let mut settled: Vec<u64> = inner
        .jobs
        .iter()
        .filter(|(_, entry)| entry.settled)
        .map(|(&job, _)| job)
        .collect();
    if settled.len() <= retain {
        return;
    }
    settled.sort_unstable();
    for id in &settled[..settled.len() - retain] {
        inner.jobs.remove(id);
    }
}

struct GatewayJob {
    epoch: u64,
    local: JobId,
    /// Set once the completion was acknowledged (200) or fenced (409)
    /// by the coordinator.
    settled: bool,
}

/// What pushing pending completions accomplished (test observability).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushReport {
    /// Completions acknowledged by the coordinator.
    pub acknowledged: u64,
    /// Completions the coordinator fenced (stale epoch / terminal job)
    /// — discarded locally, never retried.
    pub fenced: u64,
    /// Completions still unacknowledged (push them again later).
    pub pending: u64,
}

impl WorkerGateway {
    /// A gateway over the local supervisor, with the default
    /// settled-entry retention ([`ClusterConfig::settled_retain`]).
    pub fn new(name: &str, supervisor: Arc<Supervisor>) -> WorkerGateway {
        WorkerGateway {
            name: name.to_string(),
            supervisor,
            settled_retain: ClusterConfig::default().settled_retain,
            inner: Mutex::new(GatewayInner::default()),
        }
    }

    /// Overrides how many settled entries the gateway retains before
    /// evicting the oldest (`pnp-serve --retain-done N`).
    pub fn with_settled_retain(mut self, retain: usize) -> WorkerGateway {
        self.settled_retain = retain;
        self
    }

    fn lock(&self) -> MutexGuard<'_, GatewayInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Serves one `/cluster/*` request from the coordinator.
    pub fn handle(&self, request: &WireRequest) -> WireResponse {
        let path = request.path();
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["cluster", "ping"]) => {
                WireResponse::new(200, Obj::new().str("status", "ok").build().into_bytes())
            }
            ("POST", ["cluster", "execute"]) => self.execute_response(request),
            ("GET", ["cluster", "snapshot"]) => self.snapshot_response(request),
            ("GET", ["cluster", "poll"]) => self.poll_response(request),
            ("POST", ["cluster", "cancel"]) => self.cancel_response(request),
            _ => not_found(),
        }
    }

    fn execute_response(&self, request: &WireRequest) -> WireResponse {
        let mut dispatch = match decode_dispatch(&request.body) {
            Ok(dispatch) => dispatch,
            Err(reason) => return bad_request(&reason),
        };
        // Re-derive the remaining end-to-end window against this
        // worker's clock at acceptance: whatever the dispatch spent in
        // flight is gone from the budget, so the envelope only ever
        // shrinks. An already-expired window still runs with a minimal
        // time budget — an immediate, honest Inconclusive with partial
        // stats rather than a silent drop.
        if let Some(deadline) = dispatch.deadline_at_ms {
            let remaining = Duration::from_millis(deadline.saturating_sub(wall_ms()));
            dispatch.request.config.config.clamp_time(remaining);
        }
        let mut inner = self.lock();
        if let Some(entry) = inner.jobs.get(&dispatch.job) {
            if dispatch.epoch < entry.epoch {
                // A delayed dispatch from before a migration cycle we
                // already superseded: fence it.
                let body = Obj::new()
                    .str("error", "fenced")
                    .str("reason", "stale dispatch epoch")
                    .num("epoch", entry.epoch)
                    .build();
                return WireResponse::new(409, body.into_bytes());
            }
            if dispatch.epoch == entry.epoch {
                // Idempotent duplicate (e.g. a SimNet-duplicated
                // delivery): the job is already running or done here.
                return execute_accepted(dispatch.job, entry.local);
            }
            // Newer epoch: the coordinator migrated the job away and
            // back. Cancel the old local attempt and start fresh.
            let stale_local = entry.local;
            drop(inner);
            let _ = self.supervisor.cancel(stale_local);
            inner = self.lock();
        }
        match self.supervisor.submit(dispatch.request.clone()) {
            Ok(local) => {
                inner.jobs.insert(
                    dispatch.job,
                    GatewayJob {
                        epoch: dispatch.epoch,
                        local,
                        settled: false,
                    },
                );
                execute_accepted(dispatch.job, local)
            }
            Err(shed) => {
                let mut response = shed_response(shed.reason, shed.retry_after, shed.queue_depth);
                response.status = 503;
                response
            }
        }
    }

    fn snapshot_response(&self, request: &WireRequest) -> WireResponse {
        let Some(job) = request.query("job").and_then(|j| j.parse::<u64>().ok()) else {
            return bad_request("snapshot needs job=N");
        };
        let local = {
            let inner = self.lock();
            inner.jobs.get(&job).map(|entry| entry.local)
        };
        let Some(local) = local else {
            return not_found();
        };
        match self.supervisor.export_checkpoint(local) {
            Some((_generation, payload)) => WireResponse::new(200, payload),
            None => not_found(),
        }
    }

    fn poll_response(&self, request: &WireRequest) -> WireResponse {
        let Some(job) = request.query("job").and_then(|j| j.parse::<u64>().ok()) else {
            return bad_request("poll needs job=N");
        };
        let entry = {
            let inner = self.lock();
            inner.jobs.get(&job).map(|e| (e.epoch, e.local))
        };
        let Some((epoch, local)) = entry else {
            return not_found();
        };
        match self.completion_for(job, epoch, local) {
            Some(completion) => WireResponse::new(200, encode_completion(&completion)),
            None => WireResponse::new(
                202,
                Obj::new().str("status", "running").build().into_bytes(),
            ),
        }
    }

    fn cancel_response(&self, request: &WireRequest) -> WireResponse {
        let Some(job) = request.query("job").and_then(|j| j.parse::<u64>().ok()) else {
            return bad_request("cancel needs job=N");
        };
        let local = {
            let inner = self.lock();
            inner.jobs.get(&job).map(|entry| entry.local)
        };
        match local {
            Some(local) => {
                let _ = self.supervisor.cancel(local);
                WireResponse::new(
                    200,
                    Obj::new().str("status", "cancelling").build().into_bytes(),
                )
            }
            None => not_found(),
        }
    }

    /// The completion for a finished local job, or `None` while it is
    /// still in flight.
    fn completion_for(&self, job: u64, epoch: u64, local: JobId) -> Option<Completion> {
        let verdict = self.supervisor.verdict(local)??;
        Some(Completion {
            job,
            epoch,
            worker: self.name.clone(),
            verdict,
            attempts: self.supervisor.attempts(local).unwrap_or(0),
            error: self.supervisor.error(local),
            results: self.supervisor.results(local),
        })
    }

    /// Pushes every finished-but-unsettled job's completion to the
    /// coordinator at `peer` over `transport`. A `409` means the
    /// coordinator fenced the upload (the job migrated past us) — the
    /// result is discarded locally, exactly as the exactly-once
    /// argument requires.
    pub fn push_completions(&self, transport: &dyn Transport, peer: &str) -> PushReport {
        let candidates: Vec<(u64, u64, JobId)> = {
            let inner = self.lock();
            inner
                .jobs
                .iter()
                .filter(|(_, entry)| !entry.settled)
                .map(|(&job, entry)| (job, entry.epoch, entry.local))
                .collect()
        };
        let mut report = PushReport::default();
        for (job, epoch, local) in candidates {
            let Some(completion) = self.completion_for(job, epoch, local) else {
                continue;
            };
            let request = WireRequest::post(
                "/cluster/complete".to_string(),
                encode_completion(&completion),
            );
            match transport.request(peer, &request) {
                Ok(response) if response.status == 200 => {
                    report.acknowledged += 1;
                    settle(&mut self.lock(), job, self.settled_retain);
                }
                Ok(response) if response.status == 409 => {
                    report.fenced += 1;
                    settle(&mut self.lock(), job, self.settled_retain);
                }
                Ok(_) | Err(_) => {
                    // Unreachable or shedding: keep it pending and push
                    // again on the next pump.
                    report.pending += 1;
                }
            }
        }
        report
    }

    /// Registers with the coordinator at `peer`, announcing this
    /// worker's own address as `self_peer`.
    ///
    /// # Errors
    ///
    /// Returns the transport error when the coordinator is unreachable.
    pub fn register(
        &self,
        transport: &dyn Transport,
        peer: &str,
        self_peer: &str,
    ) -> Result<(), NetError> {
        let target = format!(
            "/cluster/register?name={}&peer={}",
            pnp_net::percent_encode(&self.name),
            pnp_net::percent_encode(self_peer)
        );
        transport
            .request(peer, &WireRequest::post(target, Vec::new()))
            .map(|_| ())
    }

    /// Sends one heartbeat. Returns `Ok(false)` when the coordinator no
    /// longer knows this worker (re-register).
    ///
    /// # Errors
    ///
    /// Returns the transport error when the coordinator is unreachable.
    pub fn heartbeat(&self, transport: &dyn Transport, peer: &str) -> Result<bool, NetError> {
        let load = self.supervisor.load_snapshot();
        let target = format!(
            "/cluster/heartbeat?name={}&queue={}&running={}&mem={}&spill={}",
            pnp_net::percent_encode(&self.name),
            load.queue_depth,
            load.running,
            load.memory_bytes,
            load.spill_bytes,
        );
        let response = transport.request(peer, &WireRequest::post(target, Vec::new()))?;
        Ok(response.status == 200)
    }
}

fn execute_accepted(job: u64, local: JobId) -> WireResponse {
    let body = Obj::new()
        .str("job", &format!("g-{job}"))
        .str("local", &local.to_string())
        .build();
    WireResponse::new(202, body.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_ids_parse() {
        assert_eq!(parse_global("g-12"), Some(12));
        assert_eq!(parse_global("j-12"), None);
        assert_eq!(parse_global("g-"), None);
    }

    #[test]
    fn wall_clock_is_sane() {
        // After 2020, before 2100.
        let now = wall_ms();
        assert!(now > 1_577_836_800_000);
        assert!(now < 4_102_444_800_000);
    }
}
