//! Deterministic network-chaos harness for cluster mode: the network
//! analogue of [`crate::chaos`] (which attacks storage).
//!
//! A real [`crate::cluster::Coordinator`] runs against simulated
//! workers over a seeded [`pnp_net::SimNet`], entirely single-threaded
//! on virtual time: each virtual step ticks the coordinator, then lets
//! every worker pump its pending work. Faults — worker crashes,
//! asymmetric partitions, a full coordinator restart with queue
//! restore — fire at fixed virtual times per schedule, while the
//! seeded transport plan sprinkles drops, duplicated deliveries, and
//! resets underneath. The same seed replays the same run bit for bit.
//!
//! Every schedule checks the cluster's two load-bearing promises:
//!
//! 1. **Exactly once**: every submitted job reaches a terminal verdict
//!    recorded exactly once; late results from superseded attempt
//!    epochs are fenced (`409`) and provably discarded.
//! 2. **Byte-identical results**: the adopted completion's
//!    [`crate::chaos::results_fingerprint`] equals an uninterrupted
//!    single-node run of the same specification, crashes, partitions,
//!    and migrations notwithstanding.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pnp_kernel::{load_latest_snapshot, SearchConfig, SimFs, Snapshot, Vfs, VfsHandle};
use pnp_lang::{compile, VerifyOptions};
use pnp_net::{ClientError, NetPlan, SimNet, SubmitClient, Transport, WireRequest, WireResponse};

use crate::chaos::{results_fingerprint, CHAOS_SPEC};
use crate::cluster::{ClusterConfig, Coordinator};
use crate::job::Verdict;
use crate::json::Obj;
use crate::membership::{BreakerConfig, DetectorConfig};
use crate::transport::{decode_dispatch, encode_completion, Completion, Dispatch};

/// A second, smaller specification so the matrix mixes job shapes.
pub const SMALL_SPEC: &str = r#"
system {
    global handoff = 0;

    component left {
        var steps = 0;
        state run, idle;
        end idle;
        from run if steps < 5 do steps = steps + 1 goto run;
        from run if steps >= 5 do handoff = handoff + 1 goto idle;
    }
    component right {
        var steps = 0;
        state run, idle;
        end idle;
        from run if steps < 5 do steps = steps + 1 goto run;
        from run if steps >= 5 do handoff = handoff + 1 goto idle;
    }

    property bounded: invariant handoff <= 2;
}
"#;

/// Virtual milliseconds per harness step.
pub(crate) const STEP_MS: u64 = 100;
/// `run_pending` calls a job occupies before its full verification runs
/// — the window in which crashes and partitions catch it "mid-job".
const WORK_TICKS: u32 = 4;
/// Harness step ceiling (`MAX_STEPS * STEP_MS` virtual ms) before a
/// schedule is declared non-convergent.
const MAX_STEPS: u64 = 600;

/// The fault schedules of the cluster chaos matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSchedule {
    /// A worker crashes (memory wiped, checkpoints durable) with jobs
    /// mid-run, then restarts; its jobs must migrate or resume without
    /// double-completion.
    WorkerCrashMidJob,
    /// The uplink from a worker to the coordinator is cut exactly while
    /// results upload; the job migrates behind a bumped epoch and the
    /// healed worker's late upload must be fenced.
    PartitionDuringResult,
    /// The coordinator drains (persisting its queue) and restarts
    /// mid-flight; restored jobs re-dispatch behind bumped epochs and
    /// pre-restart results are fenced.
    CoordinatorRestart,
    /// One worker grinds an order of magnitude slower than the other:
    /// its dispatches stall past the hedge threshold, the coordinator
    /// speculatively re-runs them elsewhere, and the straggler's late
    /// results are fenced when they finally arrive.
    Straggler,
    /// Submissions burst past the coordinator's admission capacity:
    /// excess jobs shed with `Retry-After` hints the client honors, and
    /// a tight end-to-end deadline expires mid-burst as an honest
    /// `Inconclusive` with partial statistics.
    OverloadBurst,
    /// A worker flaps — dies, rejoins, dies again — fast enough that
    /// the silence detector alone would keep trusting it; the
    /// per-worker circuit breaker must trip and take it out of
    /// placement until it holds still.
    FlappingWorker,
}

impl NetSchedule {
    /// All schedules, matrix order.
    pub const ALL: [NetSchedule; 6] = [
        NetSchedule::WorkerCrashMidJob,
        NetSchedule::PartitionDuringResult,
        NetSchedule::CoordinatorRestart,
        NetSchedule::Straggler,
        NetSchedule::OverloadBurst,
        NetSchedule::FlappingWorker,
    ];

    /// The stable CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            NetSchedule::WorkerCrashMidJob => "worker_crash_mid_job",
            NetSchedule::PartitionDuringResult => "partition_during_result",
            NetSchedule::CoordinatorRestart => "coordinator_restart",
            NetSchedule::Straggler => "straggler",
            NetSchedule::OverloadBurst => "overload_burst",
            NetSchedule::FlappingWorker => "flapping_worker",
        }
    }

    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<NetSchedule, String> {
        NetSchedule::ALL
            .into_iter()
            .find(|s| s.as_str() == name)
            .ok_or_else(|| {
                format!(
                    "unknown schedule '{name}' (want one of: {})",
                    NetSchedule::ALL.map(|s| s.as_str()).join(", ")
                )
            })
    }
}

impl std::fmt::Display for NetSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One converged schedule run's summary.
#[derive(Debug, Clone)]
pub struct NetChaosOutcome {
    /// Which schedule ran.
    pub schedule: NetSchedule,
    /// The transport/fault seed.
    pub seed: u64,
    /// Jobs submitted and completed.
    pub jobs: usize,
    /// Virtual steps until every job converged.
    pub steps: u64,
    /// Jobs migrated between workers.
    pub migrations: u64,
    /// Stale uploads fenced by the coordinator.
    pub fenced: u64,
    /// Migrations that shipped a checkpoint snapshot.
    pub snapshots_shipped: u64,
    /// Stale results the *workers* observed being discarded (each saw a
    /// `409` and dropped its result).
    pub worker_discards: u64,
    /// Speculative second attempts the coordinator launched.
    pub hedges: u64,
    /// Jobs whose end-to-end deadline expired into `Inconclusive`.
    pub expired: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Submissions shed with a `Retry-After` hint.
    pub sheds: u64,
}

/// One simulated worker: accepts dispatches, "works" on each job for
/// [`WORK_TICKS`] virtual steps (flushing a real checkpoint generation
/// to its durable [`SimFs`] first), then runs the full verification and
/// pushes the completion. A crash wipes its memory but not its
/// filesystem, exactly like a real daemon restart.
pub struct SimWorker {
    /// The worker's SimNet peer name.
    pub name: String,
    net: Arc<SimNet>,
    coordinator: String,
    /// The shared virtual clock, for end-to-end deadline checks.
    clock: Arc<AtomicU64>,
    /// Pumps a job occupies before its full verification runs
    /// (default [`WORK_TICKS`]; the straggler schedule inflates it).
    work_ticks: AtomicU32,
    /// Durable across crashes.
    fs: Arc<SimFs>,
    state: Arc<Mutex<WorkerState>>,
}

#[derive(Default)]
struct WorkerState {
    registered: bool,
    /// Pump counter; heartbeats go out every [`HEARTBEAT_EVERY`] pumps.
    pumps: u64,
    jobs: HashMap<u64, SimJob>,
    /// Results the coordinator fenced; retained as proof of discard.
    discarded: u64,
}

/// Pumps between heartbeats (500 virtual ms at [`STEP_MS`]).
const HEARTBEAT_EVERY: u64 = 5;

/// What one pump decided to do with one job.
enum Pump {
    /// First pump: flush a checkpoint generation mid-"run".
    Checkpoint,
    /// Work pumps exhausted: run the full verification.
    Finish,
    /// End-to-end deadline passed: stop with partial statistics.
    Expire,
}

struct SimJob {
    epoch: u64,
    dispatch: Dispatch,
    /// Work pumps this job started with (the worker's tick count at
    /// accept time — the first pump flushes a checkpoint).
    total: u32,
    remaining: u32,
    completion: Option<Completion>,
    settled: bool,
}

impl SimWorker {
    /// Creates the worker and registers its request handler on `net`.
    /// `clock` is the harness's shared virtual clock, read for
    /// end-to-end deadline expiry.
    pub fn new(
        net: &Arc<SimNet>,
        name: &str,
        coordinator: &str,
        seed: u64,
        clock: &Arc<AtomicU64>,
    ) -> Arc<SimWorker> {
        let worker = Arc::new(SimWorker {
            name: name.to_string(),
            net: Arc::clone(net),
            coordinator: coordinator.to_string(),
            clock: Arc::clone(clock),
            work_ticks: AtomicU32::new(WORK_TICKS),
            fs: Arc::new(SimFs::new(seed)),
            state: Arc::new(Mutex::new(WorkerState::default())),
        });
        let _ = worker.fs.as_ref().create_dir_all(&PathBuf::from("/state"));
        let handler = {
            let worker = Arc::clone(&worker);
            Arc::new(move |request: &WireRequest| worker.serve(request))
        };
        net.register(name, handler);
        worker
    }

    /// Makes this worker grind: every accepted job takes `ticks` pumps
    /// instead of the default [`WORK_TICKS`]. Already-accepted jobs
    /// keep their pace.
    pub fn set_work_ticks(&self, ticks: u32) {
        self.work_ticks.store(ticks.max(1), Ordering::Relaxed);
    }

    /// Crashes the process: unreachable, memory gone, checkpoints kept.
    pub fn crash(&self) {
        self.net.crash(&self.name);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.jobs.clear();
        state.registered = false;
    }

    /// Boots the process back up (it re-registers on its next pump).
    pub fn restart(&self) {
        self.net.restart(&self.name);
    }

    /// The worker's durable simulated disk — the generated-schedule
    /// harness ([`crate::chaosgen`]) aims exact storage injections at it
    /// and reboots it when an injected crash kills the "machine".
    pub(crate) fn sim_fs(&self) -> Arc<SimFs> {
        Arc::clone(&self.fs)
    }

    /// How many of this worker's results the coordinator fenced.
    pub fn discarded(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .discarded
    }

    fn checkpoint_base(&self, job: u64) -> PathBuf {
        PathBuf::from(format!("/state/job-{job}.pnpsnap"))
    }

    fn serve(&self, request: &WireRequest) -> WireResponse {
        let path = request.path();
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["cluster", "ping"]) => ok_json("ok"),
            ("POST", ["cluster", "execute"]) => self.accept(request),
            ("GET", ["cluster", "snapshot"]) => self.snapshot(request),
            ("GET", ["cluster", "poll"]) => self.poll(request),
            ("POST", ["cluster", "cancel"]) => ok_json("cancelling"),
            _ => WireResponse::new(404, b"{}".to_vec()),
        }
    }

    fn accept(&self, request: &WireRequest) -> WireResponse {
        let dispatch = match decode_dispatch(&request.body) {
            Ok(dispatch) => dispatch,
            Err(reason) => {
                return WireResponse::new(
                    400,
                    Obj::new().str("error", &reason).build().into_bytes(),
                )
            }
        };
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = state.jobs.get(&dispatch.job) {
            if dispatch.epoch < existing.epoch {
                return WireResponse::new(
                    409,
                    Obj::new().str("error", "fenced").build().into_bytes(),
                );
            }
            if dispatch.epoch == existing.epoch {
                // Duplicated delivery: already accepted.
                return ok_json("accepted");
            }
        }
        let job = dispatch.job;
        let epoch = dispatch.epoch;
        let total = self.work_ticks.load(Ordering::Relaxed);
        state.jobs.insert(
            job,
            SimJob {
                epoch,
                dispatch,
                total,
                remaining: total,
                completion: None,
                settled: false,
            },
        );
        ok_json("accepted")
    }

    fn snapshot(&self, request: &WireRequest) -> WireResponse {
        let Some(job) = request.query("job").and_then(|j| j.parse::<u64>().ok()) else {
            return WireResponse::new(400, b"{}".to_vec());
        };
        let vfs: VfsHandle = self.fs.clone();
        match load_latest_snapshot(&vfs, self.checkpoint_base(job)) {
            Ok(Some((_generation, snapshot))) => WireResponse::new(200, snapshot.encode()),
            _ => WireResponse::new(404, b"{}".to_vec()),
        }
    }

    fn poll(&self, request: &WireRequest) -> WireResponse {
        let Some(job) = request.query("job").and_then(|j| j.parse::<u64>().ok()) else {
            return WireResponse::new(400, b"{}".to_vec());
        };
        let epoch = request.query("epoch").and_then(|e| e.parse::<u64>().ok());
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match state.jobs.get(&job) {
            // An attempt from another epoch is not the attempt the
            // coordinator is asking about: that attempt is gone.
            Some(entry) if epoch.is_some_and(|e| e != entry.epoch) => {
                WireResponse::new(404, b"{}".to_vec())
            }
            Some(entry) => match &entry.completion {
                Some(completion) => WireResponse::new(200, encode_completion(completion)),
                None => WireResponse::new(
                    202,
                    Obj::new().str("status", "running").build().into_bytes(),
                ),
            },
            None => WireResponse::new(404, b"{}".to_vec()),
        }
    }

    /// One pump of the worker's main loop: (re-)register, heartbeat,
    /// advance jobs, push finished results. No-op while crashed.
    pub fn run_pending(&self) {
        if self.net.is_down(&self.name) {
            return;
        }
        let endpoint = self.net.endpoint(&self.name);
        let (registered, beat) = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let beat = state.pumps.is_multiple_of(HEARTBEAT_EVERY);
            state.pumps += 1;
            (state.registered, beat)
        };
        if !registered {
            let target = format!("/cluster/register?name={}&peer={}", self.name, self.name);
            if endpoint
                .request(&self.coordinator, &WireRequest::post(target, Vec::new()))
                .is_ok()
            {
                let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                state.registered = true;
            }
        } else if beat {
            // Heartbeats carry load telemetry, like a real worker
            // daemon's: the coordinator's weighted placement feed.
            let (queue, running) = {
                let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                let open = state
                    .jobs
                    .values()
                    .filter(|j| j.completion.is_none())
                    .count() as u64;
                (open, open.min(1))
            };
            let target = format!(
                "/cluster/heartbeat?name={}&queue={queue}&running={running}&mem=0&spill=0",
                self.name
            );
            if let Ok(response) =
                endpoint.request(&self.coordinator, &WireRequest::post(target, Vec::new()))
            {
                if response.status == 404 {
                    // The coordinator forgot us (restart or declared
                    // dead): re-register next pump.
                    let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                    state.registered = false;
                }
            }
        }

        // Advance at most one job per pump (a two-thread worker daemon
        // is approximated well enough for placement purposes).
        let next: Vec<u64> = {
            let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let mut ids: Vec<u64> = state
                .jobs
                .iter()
                .filter(|(_, j)| j.completion.is_none())
                .map(|(&id, _)| id)
                .collect();
            ids.sort_unstable();
            ids
        };
        let now = self.clock.load(Ordering::Relaxed);
        for id in next {
            let work = {
                let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                let Some(job) = state.jobs.get_mut(&id) else {
                    continue;
                };
                // An expired end-to-end deadline preempts the work: a
                // real worker's clamped kernel time budget trips here,
                // yielding an honest Inconclusive with partial stats.
                if job.dispatch.deadline_at_ms.is_some_and(|d| now >= d) {
                    Some((job.dispatch.clone(), Pump::Expire))
                } else if job.remaining == job.total {
                    job.remaining -= 1;
                    Some((job.dispatch.clone(), Pump::Checkpoint))
                } else if job.remaining > 0 {
                    job.remaining -= 1;
                    None
                } else {
                    Some((job.dispatch.clone(), Pump::Finish))
                }
            };
            match work {
                Some((dispatch, Pump::Checkpoint)) => self.flush_checkpoint(&dispatch),
                Some((dispatch, Pump::Finish)) => self.finish(&dispatch),
                Some((dispatch, Pump::Expire)) => self.expire(&dispatch),
                None => {}
            }
        }

        // Push unsettled completions; a 409 is the coordinator fencing
        // a stale result — record the discard and stop retrying.
        let pending: Vec<(u64, Completion)> = {
            let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            state
                .jobs
                .iter()
                .filter(|(_, j)| !j.settled)
                .filter_map(|(&id, j)| j.completion.clone().map(|c| (id, c)))
                .collect()
        };
        for (id, completion) in pending {
            let request = WireRequest::post(
                "/cluster/complete".to_string(),
                encode_completion(&completion),
            );
            if let Ok(response) = endpoint.request(&self.coordinator, &request) {
                let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(job) = state.jobs.get_mut(&id) {
                    match response.status {
                        200 => job.settled = true,
                        409 => {
                            job.settled = true;
                            state.discarded += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// The "mid-job" pass: a budget-bounded verification whose trip
    /// flushes a genuine checkpoint generation to the durable SimFs —
    /// the snapshot a migration ships or a sticky retry resumes.
    fn flush_checkpoint(&self, dispatch: &Dispatch) {
        let Ok(spec) = compile(&dispatch.request.source) else {
            return;
        };
        let mut bounded = dispatch.request.config.config;
        bounded.max_states = 200;
        bounded.threads = 1;
        let vfs: VfsHandle = self.fs.clone();
        let options = VerifyOptions {
            config: bounded,
            checkpoint: Some((self.checkpoint_base(dispatch.job), 0)),
            vfs: Some(vfs),
            ..VerifyOptions::default()
        };
        let _ = spec.verify_all_with_options(&options);
    }

    /// Deadline expiry: what a real worker's clamped time budget does —
    /// a bounded pass whose budget trips mid-search, reported as an
    /// `Inconclusive` completion that still carries the partial
    /// statistics. Deterministic, because the bound is a state count on
    /// virtual time, not a wall-clock race.
    fn expire(&self, dispatch: &Dispatch) {
        let Ok(spec) = compile(&dispatch.request.source) else {
            return;
        };
        let mut bounded = dispatch.request.config.config;
        bounded.max_states = 200;
        bounded.threads = 1;
        let options = VerifyOptions {
            config: bounded,
            ..VerifyOptions::default()
        };
        let Ok(results) = spec.verify_all_with_options(&options) else {
            return;
        };
        let completion = Completion {
            job: dispatch.job,
            epoch: dispatch.epoch,
            worker: self.name.clone(),
            verdict: Verdict::Inconclusive,
            attempts: dispatch.attempts + 1,
            error: None,
            results: Some(results),
        };
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(job) = state.jobs.get_mut(&dispatch.job) {
            if job.epoch == dispatch.epoch && job.completion.is_none() {
                job.completion = Some(completion);
            }
        }
    }

    /// The full verification: resume from the local checkpoint if one
    /// survived, else from the snapshot the coordinator shipped, else
    /// from scratch. Deterministic, so every path converges to the same
    /// fingerprint.
    fn finish(&self, dispatch: &Dispatch) {
        let Ok(spec) = compile(&dispatch.request.source) else {
            return;
        };
        let vfs: VfsHandle = self.fs.clone();
        let resume = load_latest_snapshot(&vfs, self.checkpoint_base(dispatch.job))
            .ok()
            .flatten()
            .map(|(_, snapshot)| snapshot)
            .or_else(|| {
                let payload = dispatch.request.seed_snapshot.as_deref()?;
                Snapshot::decode(payload).ok()
            })
            .filter(|s| s.matches_program(spec.system().program()));
        let mut config = dispatch.request.config.config;
        config.threads = 1;
        let options = VerifyOptions {
            config,
            resume,
            ..VerifyOptions::default()
        };
        let Ok(results) = spec.verify_all_with_options(&options) else {
            return;
        };
        let violated = results.iter().any(|r| !r.holds && !r.inconclusive);
        let completion = Completion {
            job: dispatch.job,
            epoch: dispatch.epoch,
            worker: self.name.clone(),
            verdict: if violated {
                crate::job::Verdict::Violated
            } else {
                crate::job::Verdict::Passed
            },
            attempts: dispatch.attempts + 1,
            error: None,
            results: Some(results),
        };
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(job) = state.jobs.get_mut(&dispatch.job) {
            if job.epoch == dispatch.epoch {
                job.completion = Some(completion);
            }
        }
    }
}

fn ok_json(status: &str) -> WireResponse {
    WireResponse::new(202, Obj::new().str("status", status).build().into_bytes())
}

pub(crate) fn cluster_config(vfs: VfsHandle) -> ClusterConfig {
    ClusterConfig {
        detector: DetectorConfig {
            heartbeat_ms: STEP_MS,
            suspect_after_ms: 1000,
            dead_after_ms: 2000,
        },
        max_attempts: 6,
        request_timeout_ms: 1500,
        backoff_base_ms: 200,
        state_dir: PathBuf::from("/coord"),
        vfs,
        ..ClusterConfig::default()
    }
}

/// The legacy schedules' config: hedging would speculatively rescue a
/// crashed or partitioned worker's jobs *before* the failure detector
/// fires, and these schedules exist to isolate the migration machinery
/// — so park the hedge threshold out of reach.
pub(crate) fn migration_cluster_config(vfs: VfsHandle) -> ClusterConfig {
    ClusterConfig {
        hedge_floor_ms: 3_600_000,
        ..cluster_config(vfs)
    }
}

pub(crate) fn make_coordinator(
    net: &Arc<SimNet>,
    config: ClusterConfig,
    now: &Arc<AtomicU64>,
) -> Arc<Coordinator> {
    let transport = Arc::new(net.endpoint("coord"));
    let coordinator = Arc::new(Coordinator::new(config, transport));
    let handler = {
        let coordinator = Arc::clone(&coordinator);
        let now = Arc::clone(now);
        Arc::new(move |request: &WireRequest| {
            coordinator.handle(request, now.load(Ordering::Relaxed))
        })
    };
    net.register("coord", handler);
    coordinator
}

/// Runs one seeded schedule and checks the exactly-once and
/// byte-identical invariants.
///
/// # Errors
///
/// Returns a description of the first violated invariant — a lost or
/// double-counted job, a fingerprint that differs from the single-node
/// baseline, a missing fence, or non-convergence — followed by a
/// one-line repro command.
pub fn run_net_schedule(schedule: NetSchedule, seed: u64) -> Result<NetChaosOutcome, String> {
    run_net_schedule_inner(schedule, seed).map_err(|e| {
        format!(
            "{e}\n  repro: {}",
            crate::chaosgen::matrix_repro(schedule.as_str(), seed)
        )
    })
}

fn run_net_schedule_inner(schedule: NetSchedule, seed: u64) -> Result<NetChaosOutcome, String> {
    if matches!(
        schedule,
        NetSchedule::Straggler | NetSchedule::OverloadBurst | NetSchedule::FlappingWorker
    ) {
        return run_overload_schedule(schedule, seed);
    }
    // Single-node baselines, one per submitted job.
    let specs: [(&str, &str); 3] = [(CHAOS_SPEC, "a"), (SMALL_SPEC, "b"), (CHAOS_SPEC, "a")];
    let mut baselines = Vec::new();
    for (source, _) in &specs {
        let spec = compile(source).map_err(|e| format!("spec does not compile: {e}"))?;
        let options = VerifyOptions {
            config: SearchConfig {
                threads: 1,
                ..SearchConfig::default()
            },
            ..VerifyOptions::default()
        };
        let results = spec
            .verify_all_with_options(&options)
            .map_err(|e| format!("baseline run failed: {e}"))?;
        baselines.push(results_fingerprint(&results));
    }

    let net = SimNet::new(seed);
    let now = Arc::new(AtomicU64::new(0));
    let coordinator_fs: Arc<SimFs> = Arc::new(SimFs::new(seed ^ 0x636f_6f72_645f_6673));
    let coordinator_vfs: VfsHandle = coordinator_fs.clone();
    let _ = coordinator_vfs.create_dir_all(&PathBuf::from("/coord"));
    let mut coordinator = make_coordinator(
        &net,
        migration_cluster_config(coordinator_vfs.clone()),
        &now,
    );

    let w1 = SimWorker::new(&net, "w1", "coord", seed ^ 1, &now);
    let w2 = SimWorker::new(&net, "w2", "coord", seed ^ 2, &now);
    w1.run_pending();
    w2.run_pending();
    coordinator.tick(0);

    // A light background fault plan so every seed exercises a different
    // interleaving of drops, duplicates, and resets.
    net.set_plan(NetPlan {
        drop_request_per_mille: 30,
        drop_response_per_mille: 30,
        duplicate_per_mille: 60,
        reset_per_mille: 20,
    });

    // Submit through the real client with idempotency keys, so even a
    // faulted submission admits exactly one job.
    let mut ids = Vec::new();
    for (index, (source, tenant)) in specs.iter().enumerate() {
        let mut client = SubmitClient::new(net.endpoint("client"));
        client.retry_backoff = std::time::Duration::ZERO;
        client.max_retries = 8;
        client.idem_key = Some(format!("netchaos-{seed}-{index}"));
        let outcome = client
            .submit("coord", source, &format!("tenant={tenant}"))
            .map_err(|e| format!("submit {index} failed: {e}"))?;
        ids.push(
            outcome
                .id
                .strip_prefix("g-")
                .and_then(|n| n.parse::<u64>().ok())
                .ok_or_else(|| format!("unexpected job id {}", outcome.id))?,
        );
    }
    if ids != [1, 2, 3] {
        return Err(format!("expected jobs g-1..g-3, got {ids:?}"));
    }

    let mut steps = 0u64;
    let mut crash_target: Option<(Arc<SimWorker>, u64)> = None;
    let mut restarted = false;
    let mut partitioned_at: Option<u64> = None;
    let mut healed = false;
    loop {
        steps += 1;
        if steps > MAX_STEPS {
            return Err(format!(
                "{schedule} seed {seed}: no convergence after {MAX_STEPS} steps"
            ));
        }
        let t = steps * STEP_MS;
        now.store(t, Ordering::Relaxed);

        match schedule {
            NetSchedule::WorkerCrashMidJob => {
                if crash_target.is_none() && t >= 300 {
                    // Crash whichever worker holds g-1 mid-run; its
                    // checkpoint generations survive on its SimFs, the
                    // job's in-memory state does not.
                    if let Some(holder) = coordinator.worker_of(1) {
                        let target = if holder == "w2" {
                            Arc::clone(&w2)
                        } else {
                            Arc::clone(&w1)
                        };
                        target.crash();
                        crash_target = Some((target, t));
                    }
                }
                if let Some((target, crashed_at)) = &crash_target {
                    // Restart before the failure detector gives up on
                    // the worker: the coordinator's request-deadline
                    // poll then finds a daemon that *lost* the job
                    // (404) and must migrate it — sticky back to the
                    // restarted worker, which resumes from its durable
                    // checkpoint.
                    if !restarted && t >= crashed_at + 900 {
                        target.restart();
                        restarted = true;
                    }
                }
            }
            NetSchedule::PartitionDuringResult => {
                if partitioned_at.is_none() && t >= 300 {
                    // Partition g-1's worker off entirely while its
                    // result uploads: pushes, heartbeats, and the
                    // coordinator's deadline polls all fail until the
                    // heal.
                    if let Some(holder) = coordinator.worker_of(1) {
                        net.cut(&holder, "coord");
                        net.cut("coord", &holder);
                        partitioned_at = Some(t);
                    }
                }
                if partitioned_at.is_some() && !healed && coordinator.stats().migrations > 0 {
                    // The deadline poll just condemned the partitioned
                    // worker and bumped the job's epoch. Heal *before*
                    // the re-dispatch goes out: the dead-but-reachable
                    // worker now serves the snapshot fetch (shipping
                    // its checkpoint to the new worker) and its late
                    // result upload meets the epoch fence.
                    net.heal_all();
                    healed = true;
                }
            }
            NetSchedule::CoordinatorRestart => {
                if t == 300 {
                    // Drain persists every open job to cluster.pnpq on
                    // the coordinator's durable SimFs; the replacement
                    // restores them behind bumped epochs, so every
                    // pre-restart attempt reports into the fence.
                    coordinator.drain();
                    coordinator = make_coordinator(
                        &net,
                        migration_cluster_config(coordinator_vfs.clone()),
                        &now,
                    );
                    if coordinator.stats().restored == 0 {
                        return Err(format!("{schedule} seed {seed}: restart restored no jobs"));
                    }
                }
            }
            // Routed to run_overload_schedule above.
            NetSchedule::Straggler | NetSchedule::OverloadBurst | NetSchedule::FlappingWorker => {}
        }

        coordinator.tick(t);
        w1.run_pending();
        w2.run_pending();

        if coordinator.all_done() {
            break;
        }
    }
    net.set_plan(NetPlan::default());

    // Invariant 1: exactly-once completion per job.
    let stats = coordinator.stats();
    for (&id, baseline) in ids.iter().zip(&baselines) {
        let completion = coordinator
            .completion(id)
            .ok_or_else(|| format!("{schedule} seed {seed}: g-{id} has no completion"))?;
        let results = completion
            .results
            .as_deref()
            .ok_or_else(|| format!("{schedule} seed {seed}: g-{id} completed without results"))?;
        // Invariant 2: byte-identical to the single-node run.
        let fp = results_fingerprint(results);
        if fp != *baseline {
            return Err(format!(
                "{schedule} seed {seed}: g-{id} fingerprint {fp:#018x} differs from baseline \
                 {baseline:#018x}"
            ));
        }
    }
    if stats.completed != ids.len() as u64 {
        return Err(format!(
            "{schedule} seed {seed}: {} completions recorded for {} jobs",
            stats.completed,
            ids.len()
        ));
    }

    let worker_discards = w1.discarded() + w2.discarded();
    // Invariant 3: schedule-specific observability. The partition and
    // restart schedules force a stale result into existence, so its
    // fenced discard must be provable; the crash schedule must actually
    // migrate or resume work.
    match schedule {
        NetSchedule::WorkerCrashMidJob => {
            if stats.migrations == 0 {
                return Err(format!("{schedule} seed {seed}: crash caused no migration"));
            }
        }
        NetSchedule::PartitionDuringResult | NetSchedule::CoordinatorRestart => {
            if stats.fenced == 0 || worker_discards == 0 {
                return Err(format!(
                    "{schedule} seed {seed}: expected a fenced stale result \
                     (fenced={}, worker discards={worker_discards})",
                    stats.fenced
                ));
            }
            if schedule == NetSchedule::PartitionDuringResult && stats.snapshots_shipped == 0 {
                return Err(format!(
                    "{schedule} seed {seed}: migration shipped no checkpoint snapshot"
                ));
            }
        }
        NetSchedule::Straggler | NetSchedule::OverloadBurst | NetSchedule::FlappingWorker => {}
    }

    Ok(NetChaosOutcome {
        schedule,
        seed,
        jobs: ids.len(),
        steps,
        migrations: stats.migrations,
        fenced: stats.fenced,
        snapshots_shipped: stats.snapshots_shipped,
        worker_discards,
        hedges: stats.hedges,
        expired: stats.expired,
        breaker_trips: stats.breaker_trips,
        sheds: stats.shed,
    })
}

/// One planned submission of an overload-schedule run.
struct Submission {
    source: &'static str,
    tenant: &'static str,
    /// End-to-end budget sent as `job_deadline_ms`; such a job is
    /// expected to expire `Inconclusive`, so it has no baseline.
    deadline_ms: Option<u64>,
    /// Single-node fingerprint the adopted result must match.
    baseline: Option<u64>,
    idem: String,
    /// Coordinator job id, once admitted.
    id: Option<u64>,
    /// Earliest virtual time to (re)try the submission — moved forward
    /// by the daemon's `Retry-After` hint on a shed.
    retry_at: u64,
}

pub(crate) fn baseline_fingerprint(source: &str) -> Result<u64, String> {
    let spec = compile(source).map_err(|e| format!("spec does not compile: {e}"))?;
    let options = VerifyOptions {
        config: SearchConfig {
            threads: 1,
            ..SearchConfig::default()
        },
        ..VerifyOptions::default()
    };
    let results = spec
        .verify_all_with_options(&options)
        .map_err(|e| format!("baseline run failed: {e}"))?;
    Ok(results_fingerprint(&results))
}

/// The straggler / overload-burst / flapping-worker schedules: same
/// invariants as the legacy schedules, but the clients submit *during*
/// the run (so sheds and `Retry-After` hints are exercised for real)
/// and the fault clock drives load pathologies instead of partitions.
fn run_overload_schedule(schedule: NetSchedule, seed: u64) -> Result<NetChaosOutcome, String> {
    let fp_chaos = baseline_fingerprint(CHAOS_SPEC)?;
    let fp_small = baseline_fingerprint(SMALL_SPEC)?;
    let plan = |source: &'static str, tenant: &'static str, deadline_ms: Option<u64>| {
        let baseline = match deadline_ms {
            // A deadline job's partial results legitimately differ
            // from the uninterrupted baseline.
            Some(_) => None,
            None if source == CHAOS_SPEC => Some(fp_chaos),
            None => Some(fp_small),
        };
        (source, tenant, deadline_ms, baseline)
    };
    let planned: Vec<(&'static str, &'static str, Option<u64>, Option<u64>)> = match schedule {
        NetSchedule::Straggler => vec![
            plan(CHAOS_SPEC, "a", None),
            plan(SMALL_SPEC, "b", None),
            plan(CHAOS_SPEC, "a", None),
        ],
        NetSchedule::OverloadBurst => vec![
            // The deadline job goes first so it is admitted (and its
            // budget starts) before the burst fills the two slots.
            plan(CHAOS_SPEC, "a", Some(350)),
            plan(SMALL_SPEC, "b", None),
            plan(SMALL_SPEC, "a", None),
            plan(CHAOS_SPEC, "b", None),
            plan(SMALL_SPEC, "b", None),
        ],
        NetSchedule::FlappingWorker => vec![
            plan(CHAOS_SPEC, "a", None),
            plan(SMALL_SPEC, "b", None),
            plan(SMALL_SPEC, "a", None),
            plan(CHAOS_SPEC, "b", None),
            plan(SMALL_SPEC, "a", None),
            plan(SMALL_SPEC, "b", None),
        ],
        _ => unreachable!("only the overload schedules route here"),
    };
    let mut submissions: Vec<Submission> = planned
        .into_iter()
        .enumerate()
        .map(
            |(index, (source, tenant, deadline_ms, baseline))| Submission {
                source,
                tenant,
                deadline_ms,
                baseline,
                idem: format!("netchaos-{seed}-{index}"),
                id: None,
                retry_at: 0,
            },
        )
        .collect();

    let net = SimNet::new(seed);
    let now = Arc::new(AtomicU64::new(0));
    let coordinator_fs: Arc<SimFs> = Arc::new(SimFs::new(seed ^ 0x636f_6f72_645f_6673));
    let coordinator_vfs: VfsHandle = coordinator_fs.clone();
    let _ = coordinator_vfs.create_dir_all(&PathBuf::from("/coord"));
    let mut config = cluster_config(coordinator_vfs.clone());
    match schedule {
        // Two admission slots turn a five-job burst into real sheds.
        NetSchedule::OverloadBurst => config.capacity = 2,
        // A tight breaker so two refused dispatches in one tick trip it.
        NetSchedule::FlappingWorker => {
            config.breaker = BreakerConfig {
                failures: 2,
                window_ms: 10_000,
                cooldown_ms: 2_000,
            };
        }
        _ => {}
    }
    let coordinator = make_coordinator(&net, config, &now);
    let w1 = SimWorker::new(&net, "w1", "coord", seed ^ 1, &now);
    let w2 = SimWorker::new(&net, "w2", "coord", seed ^ 2, &now);
    if schedule == NetSchedule::Straggler {
        // An order of magnitude slower than WORK_TICKS: w2's dispatches
        // sit far past the hedge threshold.
        w2.set_work_ticks(60);
    }
    w1.run_pending();
    w2.run_pending();
    coordinator.tick(0);
    net.set_plan(match schedule {
        // The straggler's fault model is slowness, not loss: keep
        // delivery reliable so the hedge race is deterministic, but let
        // duplicated deliveries keep probing idempotency.
        NetSchedule::Straggler => NetPlan {
            drop_request_per_mille: 0,
            drop_response_per_mille: 0,
            duplicate_per_mille: 60,
            reset_per_mille: 0,
        },
        _ => NetPlan {
            drop_request_per_mille: 30,
            drop_response_per_mille: 30,
            duplicate_per_mille: 60,
            reset_per_mille: 20,
        },
    });

    let mut steps = 0u64;
    loop {
        steps += 1;
        if steps > MAX_STEPS {
            return Err(format!(
                "{schedule} seed {seed}: no convergence after {MAX_STEPS} steps"
            ));
        }
        let t = steps * STEP_MS;
        now.store(t, Ordering::Relaxed);

        if schedule == NetSchedule::FlappingWorker {
            // Die, rejoin, die again — each rejoin must find the
            // breaker's failure history intact, not laundered.
            match t {
                100 | 1800 => w2.crash(),
                1000 | 2600 => w2.restart(),
                _ => {}
            }
        }

        // Clients (re)try their submissions, honoring shed hints.
        for submission in &mut submissions {
            if submission.id.is_some() || t < submission.retry_at {
                continue;
            }
            let mut client = SubmitClient::new(net.endpoint("client"));
            client.retry_backoff = std::time::Duration::ZERO;
            client.max_retries = 8;
            client.idem_key = Some(submission.idem.clone());
            let mut query = format!("tenant={}", submission.tenant);
            if let Some(ms) = submission.deadline_ms {
                query.push_str(&format!("&job_deadline_ms={ms}"));
            }
            match client.submit("coord", submission.source, &query) {
                Ok(outcome) => {
                    submission.id = Some(
                        outcome
                            .id
                            .strip_prefix("g-")
                            .and_then(|n| n.parse::<u64>().ok())
                            .ok_or_else(|| format!("unexpected job id {}", outcome.id))?,
                    );
                }
                Err(ClientError::Retryable { retry_after_ms, .. }) => {
                    // Shed (or transient network trouble): come back at
                    // the hinted time, next step at the earliest.
                    submission.retry_at = t + retry_after_ms.unwrap_or(STEP_MS).max(STEP_MS);
                }
                Err(fatal) => {
                    return Err(format!("{schedule} seed {seed}: submit failed: {fatal}"))
                }
            }
        }

        coordinator.tick(t);
        w1.run_pending();
        w2.run_pending();

        if submissions.iter().all(|s| s.id.is_some()) && coordinator.all_done() {
            break;
        }
    }
    net.set_plan(NetPlan::default());

    if schedule == NetSchedule::Straggler {
        // Keep the clock moving until the straggler finally finishes
        // and pushes its long-superseded result into the fence.
        let mut extra = 0u64;
        while w1.discarded() + w2.discarded() == 0 {
            extra += 1;
            if extra > 400 {
                return Err(format!(
                    "{schedule} seed {seed}: straggler's late result never surfaced"
                ));
            }
            steps += 1;
            let t = steps * STEP_MS;
            now.store(t, Ordering::Relaxed);
            coordinator.tick(t);
            w1.run_pending();
            w2.run_pending();
        }
    }

    // Invariant 1 and 2: exactly-once completion, byte-identical to the
    // single-node baseline (deadline jobs excepted: their contract is
    // an honest Inconclusive with partial statistics instead).
    let stats = coordinator.stats();
    for submission in &submissions {
        let id = submission
            .id
            .ok_or_else(|| format!("{schedule} seed {seed}: a submission was never admitted"))?;
        let completion = coordinator.completion(id);
        if let Some(baseline) = submission.baseline {
            let completion = completion
                .ok_or_else(|| format!("{schedule} seed {seed}: g-{id} has no completion"))?;
            let results = completion.results.as_deref().ok_or_else(|| {
                format!("{schedule} seed {seed}: g-{id} completed without results")
            })?;
            let fp = results_fingerprint(results);
            if fp != baseline {
                return Err(format!(
                    "{schedule} seed {seed}: g-{id} fingerprint {fp:#018x} differs from \
                     baseline {baseline:#018x}"
                ));
            }
        } else {
            match completion {
                Some(completion) => {
                    if completion.verdict != Verdict::Inconclusive {
                        return Err(format!(
                            "{schedule} seed {seed}: deadline job g-{id} ended {:?}, \
                             want Inconclusive",
                            completion.verdict
                        ));
                    }
                    let Some(results) = completion.results.as_deref() else {
                        return Err(format!(
                            "{schedule} seed {seed}: deadline job g-{id} carries no \
                             partial statistics"
                        ));
                    };
                    if !results.iter().any(|r| r.inconclusive) {
                        return Err(format!(
                            "{schedule} seed {seed}: deadline job g-{id} results claim \
                             a conclusive verdict"
                        ));
                    }
                }
                // The coordinator's backstop expired it before any
                // worker attempt could donate partial statistics.
                None if stats.expired >= 1 => {}
                None => {
                    return Err(format!(
                        "{schedule} seed {seed}: deadline job g-{id} vanished without \
                         an expiry"
                    ));
                }
            }
        }
    }
    if stats.completed != submissions.len() as u64 {
        return Err(format!(
            "{schedule} seed {seed}: {} completions recorded for {} jobs",
            stats.completed,
            submissions.len()
        ));
    }

    // Invariant 3: the pathology each schedule manufactures must be
    // provably observed, not silently absorbed.
    let worker_discards = w1.discarded() + w2.discarded();
    match schedule {
        NetSchedule::Straggler => {
            if stats.hedges == 0 {
                return Err(format!("{schedule} seed {seed}: no hedge was launched"));
            }
            if stats.fenced == 0 || worker_discards == 0 {
                return Err(format!(
                    "{schedule} seed {seed}: the straggler's late result was not fenced \
                     (fenced={}, worker discards={worker_discards})",
                    stats.fenced
                ));
            }
        }
        NetSchedule::OverloadBurst => {
            if stats.shed == 0 {
                return Err(format!("{schedule} seed {seed}: the burst was never shed"));
            }
        }
        NetSchedule::FlappingWorker => {
            if stats.breaker_trips == 0 {
                return Err(format!(
                    "{schedule} seed {seed}: the flapping worker never tripped its breaker"
                ));
            }
        }
        _ => unreachable!("only the overload schedules route here"),
    }

    Ok(NetChaosOutcome {
        schedule,
        seed,
        jobs: submissions.len(),
        steps,
        migrations: stats.migrations,
        fenced: stats.fenced,
        snapshots_shipped: stats.snapshots_shipped,
        worker_discards,
        hedges: stats.hedges,
        expired: stats.expired,
        breaker_trips: stats.breaker_trips,
        sheds: stats.shed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_names_roundtrip() {
        for schedule in NetSchedule::ALL {
            assert_eq!(NetSchedule::parse(schedule.as_str()).unwrap(), schedule);
        }
        assert!(NetSchedule::parse("rm_rf").is_err());
    }

    #[test]
    fn worker_crash_schedule_converges() {
        let outcome = run_net_schedule(NetSchedule::WorkerCrashMidJob, 7).unwrap();
        assert_eq!(outcome.jobs, 3);
        assert!(outcome.migrations >= 1);
    }

    #[test]
    fn partition_schedule_fences_the_stale_result() {
        let outcome = run_net_schedule(NetSchedule::PartitionDuringResult, 7).unwrap();
        assert!(outcome.fenced >= 1);
        assert!(outcome.worker_discards >= 1);
    }

    #[test]
    fn coordinator_restart_schedule_restores_and_fences() {
        let outcome = run_net_schedule(NetSchedule::CoordinatorRestart, 7).unwrap();
        assert!(outcome.fenced >= 1);
    }

    #[test]
    fn same_seed_replays_identically() {
        let a = run_net_schedule(NetSchedule::WorkerCrashMidJob, 11).unwrap();
        let b = run_net_schedule(NetSchedule::WorkerCrashMidJob, 11).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.fenced, b.fenced);
    }

    #[test]
    fn straggler_schedule_hedges_and_fences_the_late_result() {
        let outcome = run_net_schedule(NetSchedule::Straggler, 7).unwrap();
        assert_eq!(outcome.jobs, 3);
        assert!(outcome.hedges >= 1);
        assert!(outcome.fenced >= 1);
        assert!(outcome.worker_discards >= 1);
    }

    #[test]
    fn overload_burst_schedule_sheds_and_expires_the_deadline_job() {
        let outcome = run_net_schedule(NetSchedule::OverloadBurst, 7).unwrap();
        assert_eq!(outcome.jobs, 5);
        assert!(outcome.sheds >= 1);
    }

    #[test]
    fn flapping_worker_schedule_trips_the_breaker() {
        let outcome = run_net_schedule(NetSchedule::FlappingWorker, 7).unwrap();
        assert_eq!(outcome.jobs, 6);
        assert!(outcome.breaker_trips >= 1);
    }

    #[test]
    fn overload_schedules_replay_identically() {
        let a = run_net_schedule(NetSchedule::Straggler, 13).unwrap();
        let b = run_net_schedule(NetSchedule::Straggler, 13).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.hedges, b.hedges);
        assert_eq!(a.fenced, b.fenced);
    }
}
