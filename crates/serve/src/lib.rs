//! `pnp-serve`: a supervised verification service for `.pnp`
//! specifications.
//!
//! The daemon accepts verification jobs over a from-scratch HTTP/1.1
//! layer ([`http`]), runs them on supervised worker threads
//! ([`supervisor`]), and keeps every failure mode inside the envelope
//! the paper's robustness story promises: overload is shed with a retry
//! hint, panics and watchdog kills become checkpoint-backed retries,
//! wedged workers are abandoned and replaced, and SIGTERM drains
//! gracefully with the queue persisted for the next start.
//!
//! Endpoints (one request per connection, `Connection: close`):
//!
//! | Method | Path | Meaning |
//! |---|---|---|
//! | `GET` | `/health` | liveness + counters |
//! | `POST` | `/jobs` | submit a `.pnp` body → `202` with the job id |
//! | `GET` | `/jobs/{id}` | phase + attempts; `?wait=ms` long-polls until settled |
//! | `GET` | `/jobs/{id}/result` | `200` full result when done, `202` otherwise |
//! | `POST` | `/jobs/{id}/cancel` | cooperative cancellation |
//!
//! Submissions take query parameters `budget` (`states=N,time=MS,…`),
//! `threads`, `visited` (`exact|compact|bitstate[:MB]|disk`),
//! `spill_at` (memory budget in MB past which the search spills to
//! disk), `deadline_ms` (per-attempt watchdog), `job_deadline_ms`
//! (end-to-end budget — expiry yields an honest INCONCLUSIVE),
//! `max_attempts`, and `chaos` (fault injection for the soak tests).
#![warn(missing_docs)]

pub mod chaos;
pub mod chaosgen;
pub mod cluster;
pub mod http;
pub mod job;
pub mod json;
pub mod membership;
pub mod netchaos;
pub mod queue;
pub mod supervisor;
pub mod transport;

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pnp_kernel::TerminationFlag;

use cluster::{Coordinator, WorkerGateway};
use http::{read_request, respond, respond_json, Limits, Request};
use job::{JobConfig, JobId, JobRequest};
use json::Obj;
use supervisor::Supervisor;

/// One daemon process's roles: every node runs the single-node job API
/// over its supervisor; cluster nodes additionally mount the
/// `/cluster/*` endpoints for their coordinator or worker side.
pub struct Node {
    /// The local job supervisor (always present — a coordinator uses it
    /// only for health, a worker for everything).
    pub supervisor: Arc<Supervisor>,
    /// Present when this node coordinates a cluster.
    pub coordinator: Option<Arc<Coordinator>>,
    /// Present when this node serves cluster work dispatched by a
    /// coordinator.
    pub gateway: Option<Arc<WorkerGateway>>,
}

impl Node {
    /// A plain single-node daemon.
    pub fn single(supervisor: Arc<Supervisor>) -> Node {
        Node {
            supervisor,
            coordinator: None,
            gateway: None,
        }
    }
}

/// Accepts connections until `term` is raised, then drains the
/// supervisor and returns. Each request is handled on a short-lived
/// thread; request reading is bounded by [`Limits`], whose
/// `max_connections` also caps concurrent handler threads (excess
/// connections are shed with a pressure-derived `Retry-After`).
///
/// # Errors
///
/// Returns the error when the listener cannot be polled.
pub fn serve(
    listener: TcpListener,
    supervisor: Arc<Supervisor>,
    term: TerminationFlag,
) -> std::io::Result<()> {
    serve_node(listener, Arc::new(Node::single(supervisor)), term)
}

/// [`serve`] for a node that may also carry cluster roles.
///
/// # Errors
///
/// Returns the error when the listener cannot be polled.
pub fn serve_node(
    listener: TcpListener,
    node: Arc<Node>,
    term: TerminationFlag,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let limits = Limits::default();
    let live = Arc::new(AtomicUsize::new(0));
    loop {
        if term.is_raised() {
            node.supervisor.drain();
            if let Some(coordinator) = &node.coordinator {
                coordinator.drain();
            }
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                if live.load(Ordering::Relaxed) >= limits.max_connections {
                    // All handler slots are busy, which correlates with
                    // queue pressure — reuse the queue's scaled hint
                    // rather than a flat "1" so a hot daemon spreads its
                    // retry storm.
                    let retry_after = node.supervisor.retry_after_hint();
                    let mut stream = stream;
                    let _ = respond_json(
                        &mut stream,
                        503,
                        "Service Unavailable",
                        &[("Retry-After", retry_after.as_secs().max(1).to_string())],
                        &Obj::new()
                            .str("error", "overloaded")
                            .str("reason", "connections")
                            .bool("retryable", true)
                            .num("retry_after_ms", retry_after.as_millis() as u64)
                            .build(),
                    );
                    continue;
                }
                live.fetch_add(1, Ordering::Relaxed);
                let live = Arc::clone(&live);
                let node = Arc::clone(&node);
                std::thread::spawn(move || {
                    let mut stream = stream;
                    handle_connection(&mut stream, &node);
                    live.fetch_sub(1, Ordering::Relaxed);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(stream: &mut TcpStream, node: &Node) {
    match read_request(stream, &Limits::default()) {
        Ok(request) => route(stream, node, &request),
        Err(error) => {
            if let Some((status, reason, message)) = error.status() {
                let _ = respond_json(
                    stream,
                    status,
                    reason,
                    &[],
                    &Obj::new().str("error", &message).build(),
                );
            }
        }
    }
}

fn route(stream: &mut TcpStream, node: &Node, request: &Request) {
    let supervisor = &*node.supervisor;
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    if segments.first() == Some(&"cluster") {
        return cluster_route(stream, node, request);
    }
    if let Some(coordinator) = &node.coordinator {
        // A coordinator fronts the whole cluster: the plain job API
        // shards across workers instead of touching the local queue.
        return coordinator_route(stream, coordinator, request);
    }
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => {
            let _ = respond_json(stream, 200, "OK", &[], &supervisor.health_json());
        }
        ("POST", ["jobs"]) => submit(stream, supervisor, request),
        ("GET", ["jobs", id]) => match JobId::parse(id) {
            Some(id) => {
                // `wait=ms` long-polls: park the request until the job
                // settles or the (capped) window elapses, then answer
                // with the usual status body either way.
                if let Some(wait_ms) = request
                    .query("wait")
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|ms| *ms > 0)
                {
                    supervisor.wait_done(id, Duration::from_millis(wait_ms.min(60_000)));
                }
                match supervisor.status_json(id) {
                    Some(json) => {
                        let _ = respond_json(stream, 200, "OK", &[], &json);
                    }
                    None => not_found(stream),
                }
            }
            None => not_found(stream),
        },
        ("GET", ["jobs", id, "result"]) => {
            match JobId::parse(id).and_then(|id| supervisor.result_json(id)) {
                Some((json, true)) => {
                    let _ = respond_json(stream, 200, "OK", &[], &json);
                }
                Some((json, false)) => {
                    let _ = respond_json(stream, 202, "Accepted", &[], &json);
                }
                None => not_found(stream),
            }
        }
        ("POST", ["jobs", id, "cancel"]) => {
            match JobId::parse(id).map(|id| (id, supervisor.cancel(id))) {
                Some((id, Some(cancelled))) => {
                    let _ = respond_json(
                        stream,
                        200,
                        "OK",
                        &[],
                        &Obj::new()
                            .str("id", &id.to_string())
                            .bool("cancelled", cancelled)
                            .build(),
                    );
                }
                _ => not_found(stream),
            }
        }
        _ => not_found(stream),
    }
}

/// Converts an HTTP-layer request into the transport-agnostic wire form
/// the cluster handlers (which also run over [`pnp_net::SimNet`]) take.
fn to_wire(request: &Request) -> pnp_net::WireRequest {
    let mut target = request.path.clone();
    let mut sep = '?';
    for (key, value) in &request.query {
        target.push(sep);
        sep = '&';
        target.push_str(&pnp_net::percent_encode(key));
        target.push('=');
        target.push_str(&pnp_net::percent_encode(value));
    }
    pnp_net::WireRequest {
        method: request.method.clone(),
        target,
        body: request.body.clone(),
    }
}

fn respond_wire(stream: &mut TcpStream, response: &pnp_net::WireResponse) {
    let reason = match response.status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Status",
    };
    let headers: Vec<(&str, String)> = response
        .retry_after
        .map(|secs| ("Retry-After", secs.to_string()))
        .into_iter()
        .collect();
    // The body must go out verbatim: `/cluster/snapshot` and a 200
    // `/cluster/poll` carry binary payloads that a lossy UTF-8 round
    // trip would corrupt.
    let content_type = if response.body.first() == Some(&b'{') {
        "application/json"
    } else {
        "application/octet-stream"
    };
    let _ = respond(
        stream,
        response.status,
        reason,
        content_type,
        &headers,
        &response.body,
    );
}

fn cluster_route(stream: &mut TcpStream, node: &Node, request: &Request) {
    let wire = to_wire(request);
    let response = if let Some(coordinator) = &node.coordinator {
        coordinator.handle(&wire, cluster::wall_ms())
    } else if let Some(gateway) = &node.gateway {
        gateway.handle(&wire)
    } else {
        return not_found(stream);
    };
    respond_wire(stream, &response);
}

fn coordinator_route(stream: &mut TcpStream, coordinator: &Coordinator, request: &Request) {
    let response = coordinator.handle(&to_wire(request), cluster::wall_ms());
    respond_wire(stream, &response);
}

fn not_found(stream: &mut TcpStream) {
    let _ = respond_json(
        stream,
        404,
        "Not Found",
        &[],
        &Obj::new().str("error", "not_found").build(),
    );
}

/// Parses the submission query parameters into a [`JobConfig`] resolved
/// against `base`.
///
/// # Errors
///
/// Returns the first parameter error, verbatim, for a `400` answer.
pub fn parse_job_config(
    request: &Request,
    base: pnp_kernel::SearchConfig,
) -> Result<JobConfig, String> {
    job::resolve_job_config(&|key| request.query(key).map(str::to_string), base)
}

fn submit(stream: &mut TcpStream, supervisor: &Supervisor, request: &Request) {
    let bad_request = |stream: &mut TcpStream, message: &str| {
        let _ = respond_json(
            stream,
            400,
            "Bad Request",
            &[],
            &Obj::new().str("error", message).build(),
        );
    };
    let source = match String::from_utf8(request.body.clone()) {
        Ok(source) if !source.trim().is_empty() => source,
        Ok(_) => return bad_request(stream, "empty body: POST the .pnp source"),
        Err(_) => return bad_request(stream, "body is not UTF-8"),
    };
    let mut config = match parse_job_config(request, supervisor.default_search()) {
        Ok(config) => config,
        Err(message) => return bad_request(stream, &message),
    };
    if let Some(budget) = config.job_deadline {
        // Single-node end-to-end deadline: clamp the kernel time budget
        // so expiry surfaces as an honest INCONCLUSIVE with partial
        // stats, and cap the watchdog just past it as a backstop.
        config.config.clamp_time(budget);
        let watchdog = budget + Duration::from_millis(100);
        config.deadline = Some(config.deadline.map_or(watchdog, |d| d.min(watchdog)));
    }
    let mut job_request = JobRequest::new(source, config);
    job_request.idem = request.query("idem").map(str::to_string);
    match supervisor.submit(job_request) {
        Ok(id) => {
            let _ = respond_json(
                stream,
                202,
                "Accepted",
                &[],
                &Obj::new()
                    .str("id", &id.to_string())
                    .str("status_url", &format!("/jobs/{id}"))
                    .str("result_url", &format!("/jobs/{id}/result"))
                    .build(),
            );
        }
        Err(shed) => {
            let secs = shed.retry_after.as_secs().max(1);
            let _ = respond_json(
                stream,
                503,
                "Service Unavailable",
                &[("Retry-After", secs.to_string())],
                &Obj::new()
                    .str("error", "overloaded")
                    .str("reason", shed.reason)
                    .bool("retryable", true)
                    .num("retry_after_ms", shed.retry_after.as_millis() as u64)
                    .num("queue_depth", shed.queue_depth as u64)
                    .build(),
            );
        }
    }
}
