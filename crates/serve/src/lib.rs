//! `pnp-serve`: a supervised verification service for `.pnp`
//! specifications.
//!
//! The daemon accepts verification jobs over a from-scratch HTTP/1.1
//! layer ([`http`]), runs them on supervised worker threads
//! ([`supervisor`]), and keeps every failure mode inside the envelope
//! the paper's robustness story promises: overload is shed with a retry
//! hint, panics and watchdog kills become checkpoint-backed retries,
//! wedged workers are abandoned and replaced, and SIGTERM drains
//! gracefully with the queue persisted for the next start.
//!
//! Endpoints (one request per connection, `Connection: close`):
//!
//! | Method | Path | Meaning |
//! |---|---|---|
//! | `GET` | `/health` | liveness + counters |
//! | `POST` | `/jobs` | submit a `.pnp` body → `202` with the job id |
//! | `GET` | `/jobs/{id}` | phase + attempts |
//! | `GET` | `/jobs/{id}/result` | `200` full result when done, `202` otherwise |
//! | `POST` | `/jobs/{id}/cancel` | cooperative cancellation |
//!
//! Submissions take query parameters `budget` (`states=N,time=MS,…`),
//! `threads`, `visited` (`exact|compact|bitstate[:MB]`), `deadline_ms`,
//! `max_attempts`, and `chaos` (fault injection for the soak tests).
#![warn(missing_docs)]

pub mod chaos;
pub mod http;
pub mod job;
pub mod json;
pub mod queue;
pub mod supervisor;

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pnp_kernel::TerminationFlag;

use http::{read_request, respond_json, Limits, Request};
use job::{parse_budget_spec, parse_visited_spec, Chaos, JobConfig, JobId, JobRequest};
use json::Obj;
use supervisor::Supervisor;

/// Concurrent connection cap; connections past it are answered `503`
/// immediately (the handler threads are short-lived — verification runs
/// on the supervisor's workers, never on a connection thread).
const MAX_CONNECTIONS: usize = 32;

/// Accepts connections until `term` is raised, then drains the
/// supervisor and returns. Each request is handled on a short-lived
/// thread; request reading is bounded by [`Limits`].
///
/// # Errors
///
/// Returns the error when the listener cannot be polled.
pub fn serve(
    listener: TcpListener,
    supervisor: Arc<Supervisor>,
    term: TerminationFlag,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let live = Arc::new(AtomicUsize::new(0));
    loop {
        if term.is_raised() {
            supervisor.drain();
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                if live.load(Ordering::Relaxed) >= MAX_CONNECTIONS {
                    let mut stream = stream;
                    let _ = respond_json(
                        &mut stream,
                        503,
                        "Service Unavailable",
                        &[("Retry-After", "1".to_string())],
                        &Obj::new()
                            .str("error", "overloaded")
                            .str("reason", "connections")
                            .bool("retryable", true)
                            .build(),
                    );
                    continue;
                }
                live.fetch_add(1, Ordering::Relaxed);
                let live = Arc::clone(&live);
                let supervisor = Arc::clone(&supervisor);
                std::thread::spawn(move || {
                    let mut stream = stream;
                    handle_connection(&mut stream, &supervisor);
                    live.fetch_sub(1, Ordering::Relaxed);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(stream: &mut TcpStream, supervisor: &Supervisor) {
    match read_request(stream, &Limits::default()) {
        Ok(request) => route(stream, supervisor, &request),
        Err(error) => {
            if let Some((status, reason, message)) = error.status() {
                let _ = respond_json(
                    stream,
                    status,
                    reason,
                    &[],
                    &Obj::new().str("error", &message).build(),
                );
            }
        }
    }
}

fn route(stream: &mut TcpStream, supervisor: &Supervisor, request: &Request) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => {
            let _ = respond_json(stream, 200, "OK", &[], &supervisor.health_json());
        }
        ("POST", ["jobs"]) => submit(stream, supervisor, request),
        ("GET", ["jobs", id]) => match JobId::parse(id).and_then(|id| supervisor.status_json(id)) {
            Some(json) => {
                let _ = respond_json(stream, 200, "OK", &[], &json);
            }
            None => not_found(stream),
        },
        ("GET", ["jobs", id, "result"]) => {
            match JobId::parse(id).and_then(|id| supervisor.result_json(id)) {
                Some((json, true)) => {
                    let _ = respond_json(stream, 200, "OK", &[], &json);
                }
                Some((json, false)) => {
                    let _ = respond_json(stream, 202, "Accepted", &[], &json);
                }
                None => not_found(stream),
            }
        }
        ("POST", ["jobs", id, "cancel"]) => {
            match JobId::parse(id).map(|id| (id, supervisor.cancel(id))) {
                Some((id, Some(cancelled))) => {
                    let _ = respond_json(
                        stream,
                        200,
                        "OK",
                        &[],
                        &Obj::new()
                            .str("id", &id.to_string())
                            .bool("cancelled", cancelled)
                            .build(),
                    );
                }
                _ => not_found(stream),
            }
        }
        _ => not_found(stream),
    }
}

fn not_found(stream: &mut TcpStream) {
    let _ = respond_json(
        stream,
        404,
        "Not Found",
        &[],
        &Obj::new().str("error", "not_found").build(),
    );
}

/// Parses the submission query parameters into a [`JobConfig`] resolved
/// against `base`.
///
/// # Errors
///
/// Returns the first parameter error, verbatim, for a `400` answer.
pub fn parse_job_config(
    request: &Request,
    base: pnp_kernel::SearchConfig,
) -> Result<JobConfig, String> {
    let mut config = base;
    if let Some(spec) = request.query("budget") {
        config = parse_budget_spec(spec, config)?;
    }
    if let Some(threads) = request.query("threads") {
        config.threads = threads
            .parse::<usize>()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("threads '{threads}': want a positive integer"))?;
    }
    if let Some(spec) = request.query("visited") {
        config.visited = parse_visited_spec(spec)?;
    }
    let deadline = request
        .query("deadline_ms")
        .map(|v| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| format!("deadline_ms '{v}': want milliseconds"))
        })
        .transpose()?;
    let max_attempts = request
        .query("max_attempts")
        .map(|v| {
            v.parse::<u32>()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| format!("max_attempts '{v}': want a positive integer"))
        })
        .transpose()?;
    let chaos = request.query("chaos").map(Chaos::parse).transpose()?;
    Ok(JobConfig {
        config,
        deadline,
        max_attempts,
        chaos,
    })
}

fn submit(stream: &mut TcpStream, supervisor: &Supervisor, request: &Request) {
    let bad_request = |stream: &mut TcpStream, message: &str| {
        let _ = respond_json(
            stream,
            400,
            "Bad Request",
            &[],
            &Obj::new().str("error", message).build(),
        );
    };
    let source = match String::from_utf8(request.body.clone()) {
        Ok(source) if !source.trim().is_empty() => source,
        Ok(_) => return bad_request(stream, "empty body: POST the .pnp source"),
        Err(_) => return bad_request(stream, "body is not UTF-8"),
    };
    let config = match parse_job_config(request, supervisor.default_search()) {
        Ok(config) => config,
        Err(message) => return bad_request(stream, &message),
    };
    match supervisor.submit(JobRequest { source, config }) {
        Ok(id) => {
            let _ = respond_json(
                stream,
                202,
                "Accepted",
                &[],
                &Obj::new()
                    .str("id", &id.to_string())
                    .str("status_url", &format!("/jobs/{id}"))
                    .str("result_url", &format!("/jobs/{id}/result"))
                    .build(),
            );
        }
        Err(shed) => {
            let secs = shed.retry_after.as_secs().max(1);
            let _ = respond_json(
                stream,
                503,
                "Service Unavailable",
                &[("Retry-After", secs.to_string())],
                &Obj::new()
                    .str("error", "overloaded")
                    .str("reason", shed.reason)
                    .bool("retryable", true)
                    .num("retry_after_ms", shed.retry_after.as_millis() as u64)
                    .num("queue_depth", shed.queue_depth as u64)
                    .build(),
            );
        }
    }
}
