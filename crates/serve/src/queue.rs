//! Admission control and queue persistence.
//!
//! Admission is watermark-based: a submission is *shed* — rejected with
//! a structured, retryable answer — once the queue holds
//! [`QueuePolicy::capacity`] jobs or [`QueuePolicy::max_queued_bytes`]
//! of queued source text. Shedding is the daemon's first line of
//! defence: it degrades under overload by telling clients to come back
//! (`Retry-After`) instead of growing without bound and being OOM-killed
//! mid-search.
//!
//! Persistence uses the snapshot serializer's recipe (magic + version +
//! FNV/mix64 checksum, little-endian, own code): on a graceful drain the
//! undone jobs are written to `queue.pnpq` in the state directory, and
//! restored — with their attempt counts, so retry ceilings survive
//! restarts — when the daemon comes back. A corrupt or truncated queue
//! file is detected by the checksum and reported cleanly; the daemon
//! then starts empty rather than crashing or replaying garbage.

use std::time::Duration;

use pnp_kernel::{fnv64, SearchConfig, VisitedKind};

use crate::job::{Chaos, JobConfig, JobRequest};

const MAGIC: &[u8; 8] = b"PNPQUEU1";

/// Admission watermarks and the shed hint.
#[derive(Debug, Clone, Copy)]
pub struct QueuePolicy {
    /// Maximum queued (not yet running) jobs.
    pub capacity: usize,
    /// Maximum total bytes of queued specification source.
    pub max_queued_bytes: usize,
    /// The `Retry-After` hint attached to shed responses.
    pub retry_after: Duration,
}

impl Default for QueuePolicy {
    fn default() -> QueuePolicy {
        QueuePolicy {
            capacity: 64,
            max_queued_bytes: 8 << 20,
            retry_after: Duration::from_secs(2),
        }
    }
}

impl QueuePolicy {
    /// The `Retry-After` hint for the current queue pressure: the base
    /// hint scaled linearly up to 3x as the queue fills (`depth == 0` →
    /// base, `depth == capacity` → 3x base). Every shed path — queue
    /// watermarks, the connection cap, tenant quotas — derives its hint
    /// here so a loaded daemon pushes clients back harder than an idle
    /// one.
    pub fn retry_after_for(&self, depth: usize) -> Duration {
        let capacity = self.capacity.max(1);
        let scaled = self
            .retry_after
            .saturating_mul(2)
            .mul_f64((depth.min(capacity) as f64) / capacity as f64);
        self.retry_after + scaled
    }
}

/// Why a submission was shed, plus the retry hint for the client.
#[derive(Debug, Clone)]
pub struct ShedInfo {
    /// `queue_full`, `queue_bytes`, or `draining`.
    pub reason: &'static str,
    /// Queue depth at the moment of shedding.
    pub queue_depth: usize,
    /// How long the client should wait before retrying.
    pub retry_after: Duration,
}

/// One queued job as persisted across restarts.
#[derive(Debug, Clone)]
pub struct PersistedJob {
    /// The job's numeric id (so `j-N` names stay valid across restarts).
    pub id: u64,
    /// Attempts already made (retry ceilings survive restarts).
    pub attempts: u32,
    /// The submission.
    pub request: JobRequest,
}

pub(crate) struct Writer {
    pub(crate) out: Vec<u8>,
}

impl Writer {
    pub(crate) fn new(magic: &[u8]) -> Writer {
        Writer {
            out: magic.to_vec(),
        }
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.out.extend_from_slice(b);
    }
    pub(crate) fn finish(mut self) -> Vec<u8> {
        let checksum = fnv64(&self.out);
        self.u64(checksum);
        self.out
    }
    pub(crate) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.out.extend_from_slice(s.as_bytes());
    }
}

pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    /// Verifies `magic` and the trailing checksum, returning a reader
    /// positioned after the magic over the checksummed body.
    pub(crate) fn open(bytes: &'a [u8], magic: &[u8], what: &str) -> Result<Reader<'a>, String> {
        if bytes.len() < magic.len() + 8 {
            return Err(format!("{what} is truncated"));
        }
        if &bytes[..magic.len()] != magic {
            return Err(format!("not a {what} (bad magic)"));
        }
        let body = &bytes[..bytes.len() - 8];
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        if fnv64(body) != stored {
            return Err(format!("{what} checksum mismatch"));
        }
        Ok(Reader {
            bytes: body,
            pos: magic.len(),
        })
    }
    pub(crate) fn done(&self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(format!("{} trailing bytes", self.bytes.len() - self.pos));
        }
        Ok(())
    }
    pub(crate) fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.bytes.len() {
            return Err("queue file is truncated".into());
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(format!("bad option flag {other}")),
        }
    }
    pub(crate) fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "count overflows usize".to_string())
    }
    pub(crate) fn str(&mut self) -> Result<String, String> {
        let len = self.usize()?;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| "string is not UTF-8".to_string())
    }
    pub(crate) fn blob(&mut self) -> Result<Vec<u8>, String> {
        let len = self.usize()?;
        Ok(self.take(len)?.to_vec())
    }
}

/// Serializes the undone jobs for the drain path.
pub fn encode_queue(jobs: &[PersistedJob]) -> Vec<u8> {
    let mut w = Writer {
        out: MAGIC.to_vec(),
    };
    w.u64(jobs.len() as u64);
    for job in jobs {
        w.u64(job.id);
        w.u32(job.attempts);
        w.str(&job.request.source);
        let c = &job.request.config;
        w.u64(c.config.max_states as u64);
        w.opt_u64(c.config.max_time.map(|d| d.as_millis() as u64));
        w.opt_u64(c.config.max_depth.map(|d| d as u64));
        w.opt_u64(c.config.max_memory_bytes.map(|m| m as u64));
        w.u8(u8::from(!c.config.partial_order_reduction));
        match c.config.visited {
            VisitedKind::Exact => w.u8(0),
            VisitedKind::Compact => w.u8(1),
            VisitedKind::Bitstate {
                arena_bytes,
                hashes,
            } => {
                w.u8(2);
                w.u64(arena_bytes as u64);
                w.u32(hashes);
            }
            VisitedKind::DiskExact => w.u8(3),
        }
        w.u64(c.config.threads as u64);
        w.opt_u64(c.config.spill_at_bytes.map(|b| b as u64));
        w.opt_u64(c.deadline.map(|d| d.as_millis() as u64));
        w.opt_u64(c.max_attempts.map(u64::from));
        w.str(&c.chaos.map(|ch| ch.render()).unwrap_or_default());
        w.opt_u64(c.job_deadline.map(|d| d.as_millis() as u64));
    }
    let checksum = fnv64(&w.out);
    w.u64(checksum);
    w.out
}

/// Decodes a persisted queue, verifying magic and checksum.
///
/// # Errors
///
/// Returns a description of the first structural problem; never panics
/// on malformed input.
pub fn decode_queue(bytes: &[u8]) -> Result<Vec<PersistedJob>, String> {
    if bytes.len() < MAGIC.len() + 8 {
        return Err("queue file is truncated".into());
    }
    if &bytes[..8] != MAGIC {
        return Err("not a PnP queue file (bad magic)".into());
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv64(body) != stored {
        return Err("queue file checksum mismatch".into());
    }
    let mut r = Reader {
        bytes: body,
        pos: 8,
    };
    let count = r.usize()?;
    let mut jobs = Vec::new();
    for _ in 0..count {
        let id = r.u64()?;
        let attempts = r.u32()?;
        let source = r.str()?;
        let mut config = SearchConfig {
            max_states: r.usize()?,
            ..SearchConfig::default()
        };
        config.max_time = r.opt_u64()?.map(Duration::from_millis);
        config.max_depth = r.opt_u64()?.map(|d| d as usize);
        config.max_memory_bytes = r.opt_u64()?.map(|m| m as usize);
        config.partial_order_reduction = r.u8()? == 0;
        config.visited = match r.u8()? {
            0 => VisitedKind::Exact,
            1 => VisitedKind::Compact,
            2 => VisitedKind::Bitstate {
                arena_bytes: r.usize()?,
                hashes: r.u32()?,
            },
            3 => VisitedKind::DiskExact,
            other => return Err(format!("unknown visited backend tag {other}")),
        };
        config.threads = r.usize()?;
        config.spill_at_bytes = r.opt_u64()?.map(|b| b as usize);
        let deadline = r.opt_u64()?.map(Duration::from_millis);
        let max_attempts = r.opt_u64()?.map(|n| n as u32);
        let chaos_spec = r.str()?;
        let chaos = if chaos_spec.is_empty() {
            None
        } else {
            Some(Chaos::parse(&chaos_spec)?)
        };
        let job_deadline = r.opt_u64()?.map(Duration::from_millis);
        jobs.push(PersistedJob {
            id,
            attempts,
            request: JobRequest::new(
                source,
                JobConfig {
                    config,
                    deadline,
                    job_deadline,
                    max_attempts,
                    chaos,
                },
            ),
        });
    }
    if r.pos != r.bytes.len() {
        return Err(format!("{} trailing bytes", r.bytes.len() - r.pos));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<PersistedJob> {
        vec![
            PersistedJob {
                id: 3,
                attempts: 2,
                request: JobRequest::new(
                    "system { }".into(),
                    JobConfig {
                        config: SearchConfig {
                            max_states: 500,
                            max_time: Some(Duration::from_millis(1234)),
                            threads: 4,
                            visited: VisitedKind::DiskExact,
                            spill_at_bytes: Some(4 << 20),
                            ..SearchConfig::default()
                        },
                        deadline: Some(Duration::from_millis(250)),
                        job_deadline: Some(Duration::from_millis(4000)),
                        max_attempts: Some(5),
                        chaos: Some(Chaos::PanicOnFlush {
                            flush: 2,
                            attempts: 1,
                        }),
                    },
                ),
            },
            PersistedJob {
                id: 9,
                attempts: 0,
                request: JobRequest::new("system { global x = 0; }".into(), JobConfig::default()),
            },
        ]
    }

    #[test]
    fn queue_roundtrips() {
        let jobs = sample();
        let decoded = decode_queue(&encode_queue(&jobs)).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].id, 3);
        assert_eq!(decoded[0].attempts, 2);
        assert_eq!(decoded[0].request.source, "system { }");
        assert_eq!(decoded[0].request.config.config.max_states, 500);
        assert_eq!(
            decoded[0].request.config.config.max_time,
            Some(Duration::from_millis(1234))
        );
        assert_eq!(decoded[0].request.config.config.threads, 4);
        assert_eq!(
            decoded[0].request.config.config.visited,
            VisitedKind::DiskExact
        );
        assert_eq!(
            decoded[0].request.config.config.spill_at_bytes,
            Some(4 << 20)
        );
        assert_eq!(
            decoded[0].request.config.deadline,
            Some(Duration::from_millis(250))
        );
        assert_eq!(
            decoded[0].request.config.job_deadline,
            Some(Duration::from_millis(4000))
        );
        assert_eq!(
            decoded[0].request.config.chaos,
            Some(Chaos::PanicOnFlush {
                flush: 2,
                attempts: 1
            })
        );
        assert_eq!(decoded[1].id, 9);
        assert!(decoded[1].request.config.chaos.is_none());
    }

    #[test]
    fn truncation_and_corruption_are_clean_errors() {
        let bytes = encode_queue(&sample());
        for len in 0..bytes.len() {
            assert!(
                decode_queue(&bytes[..len]).is_err(),
                "truncation to {len} must fail"
            );
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode_queue(&bad).is_err(), "bit flip at {i} undetected");
        }
        assert!(decode_queue(b"not a queue").is_err());
    }

    #[test]
    fn empty_queue_roundtrips() {
        assert!(decode_queue(&encode_queue(&[])).unwrap().is_empty());
    }
}
