//! A from-scratch HTTP/1.1 layer over [`std::net`].
//!
//! The daemon needs exactly enough HTTP to expose submit / status /
//! result / cancel / health to scripts, CI, and the `pnp-check --submit`
//! client: request-line + headers + `Content-Length` bodies in, status +
//! headers + body out, one request per connection (`Connection: close`).
//! No chunked encoding, no keep-alive, no TLS — and, matching the
//! workspace's vendored-shim policy, no dependencies.
//!
//! Robustness rules (the whole point of the daemon) apply here first:
//! every limit degrades into a clean HTTP error instead of unbounded
//! buffering — oversized headers are 431, oversized bodies 413, slow or
//! stalled clients time out with 408, and malformed syntax is 400. A
//! request can never make the reader allocate more than
//! [`Limits::max_head_bytes`] + [`Limits::max_body_bytes`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-connection limits for one request/response exchange.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (default 16 KiB).
    pub max_head_bytes: usize,
    /// Maximum body bytes (default 4 MiB — specs are small).
    pub max_body_bytes: usize,
    /// Per-request read timeout (default 5 s).
    pub read_timeout: Duration,
    /// Per-response write timeout (default 5 s). Without it a reader
    /// that stalls after sending its request — a full TCP window and a
    /// sleeping client — would wedge the connection slot forever, since
    /// response writes would block unboundedly.
    pub write_timeout: Duration,
    /// Concurrent connection cap; connections past it are answered
    /// `503` immediately (default 32). Handler threads are short-lived —
    /// verification runs on the supervisor's workers, never on a
    /// connection thread.
    pub max_connections: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 16 << 10,
            max_body_bytes: 4 << 20,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_connections: 32,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The decoded path, without the query string.
    pub path: String,
    /// Decoded `key=value` query parameters, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when there was none).
    pub body: Vec<u8>,
}

impl Request {
    /// The first query parameter named `key`.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Maps onto an HTTP status via
/// [`HttpError::status`].
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request syntax (400).
    BadRequest(String),
    /// The request head exceeded [`Limits::max_head_bytes`] (431).
    HeadTooLarge,
    /// The body exceeded [`Limits::max_body_bytes`] (413).
    BodyTooLarge,
    /// The client stalled past [`Limits::read_timeout`] (408).
    Timeout,
    /// The connection failed mid-read; nothing can be sent back.
    Io(std::io::Error),
}

impl HttpError {
    /// The `(status, reason, message)` to answer with, or `None` when the
    /// connection is already gone.
    pub fn status(&self) -> Option<(u16, &'static str, String)> {
        match self {
            HttpError::BadRequest(m) => Some((400, "Bad Request", m.clone())),
            HttpError::HeadTooLarge => Some((
                431,
                "Request Header Fields Too Large",
                "header too large".into(),
            )),
            HttpError::BodyTooLarge => Some((413, "Payload Too Large", "body too large".into())),
            HttpError::Timeout => Some((408, "Request Timeout", "read timed out".into())),
            HttpError::Io(_) => None,
        }
    }
}

/// Percent-decodes `%XX` sequences and `+` (as space) in a query
/// component; invalid escapes pass through literally.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

/// Percent-encodes a query component (everything but unreserved chars).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::new();
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// Reads and parses one request from `stream` under `limits`.
///
/// # Errors
///
/// Returns an [`HttpError`] describing the first violated rule; the
/// caller answers with [`HttpError::status`] when the connection is
/// still usable.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(limits.read_timeout))
        .map_err(HttpError::Io)?;
    // Arm the write side now too: every later respond() on this stream
    // inherits the timeout, so a stalled reader cannot hold the slot.
    stream
        .set_write_timeout(Some(limits.write_timeout))
        .map_err(HttpError::Io)?;

    // Read until the blank line ending the head, without overshooting
    // into the body by more than what one read returns.
    let mut buf: Vec<u8> = Vec::new();
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        let mut chunk = [0u8; 2048];
        let n = stream.read(&mut chunk).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                HttpError::Timeout
            } else {
                HttpError::Io(e)
            }
        })?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::BadRequest("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version '{version}'"
        )));
    }

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    for line in lines.filter(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length '{v}'")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::BadRequest(
            "body longer than content-length".into(),
        ));
    }
    while body.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body.len()).min(16 << 10)];
        let n = stream.read(&mut chunk).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                HttpError::Timeout
            } else {
                HttpError::Io(e)
            }
        })?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request {
        method,
        path: percent_decode(path),
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a full response and flushes. `extra_headers` come after the
/// standard ones; the connection is always `close`.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response.
pub fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, String)],
    json: &str,
) -> std::io::Result<()> {
    respond(
        stream,
        status,
        reason,
        "application/json",
        extra_headers,
        json.as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&raw).unwrap();
            c.flush().unwrap();
            c
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let result = read_request(&mut server_side, &Limits::default());
        drop(writer.join().unwrap());
        result
    }

    #[test]
    fn parses_post_with_query_and_body() {
        let req = roundtrip(
            b"POST /jobs?budget=states%3D100&threads=4 HTTP/1.1\r\n\
              Host: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query("budget"), Some("states=100"));
        assert_eq!(req.query("threads"), Some("4"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(matches!(
            roundtrip(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        let huge = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            (4 << 20) + 1
        );
        assert!(matches!(
            roundtrip(huge.as_bytes()),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn percent_roundtrip() {
        let original = "states=100,time=50 ms&x";
        assert_eq!(percent_decode(&percent_encode(original)), original);
    }
}
