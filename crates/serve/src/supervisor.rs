//! The supervisor: a bounded job queue, worker threads running attempts
//! under `catch_unwind`, a watchdog enforcing per-attempt wall-clock
//! deadlines and replacing wedged workers, and a retry policy that
//! resumes failed attempts from their last checkpoint.
//!
//! The design rule throughout is *degrade, never die*: overload sheds
//! submissions with a retry hint instead of growing the queue without
//! bound; a panicking or deadline-tripped attempt becomes a scheduled
//! retry from the last flushed snapshot (so no exploration is repeated);
//! a worker that stops responding to cancellation is abandoned behind an
//! epoch fence and replaced; and a graceful drain parks in-flight jobs —
//! final snapshots flushed by the kernel's cancellation path — then
//! persists the queue so a restart picks up exactly where the daemon
//! left off.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pnp_kernel::{
    commit_replace, real_fs, BudgetKind, CancelToken, FailureClass, GenSink, GenStore, JobOutcome,
    KernelError, SearchConfig, Snapshot, SnapshotError, SnapshotSink, SplitMix64, VfsHandle,
};
use pnp_lang::{compile, PropertyResult, VerifyOptions};

use crate::job::{CancelCause, Chaos, JobError, JobId, JobPhase, JobRecord, JobRequest, Verdict};
use crate::json::{array, Obj};
use crate::queue::{decode_queue, encode_queue, PersistedJob, QueuePolicy, ShedInfo};

/// Service-level policy: worker count, admission watermarks, retry and
/// watchdog parameters, and where state lives.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running verification attempts (default 2).
    pub workers: usize,
    /// Admission watermarks and the shed retry hint.
    pub queue: QueuePolicy,
    /// Default per-attempt wall-clock deadline, overridable per job
    /// (default 30 s).
    pub default_deadline: Duration,
    /// Default attempt ceiling for transient failures, overridable per
    /// job (default 3).
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt (default 100 ms).
    pub backoff_base: Duration,
    /// Backoff ceiling before jitter (default 5 s).
    pub backoff_cap: Duration,
    /// How long after cancelling an attempt the watchdog waits for the
    /// worker to come back before abandoning and replacing it
    /// (default 2 s).
    pub wedge_grace: Duration,
    /// Checkpoint flush cadence in newly interned states (default 1024;
    /// `0` = final snapshot only).
    pub checkpoint_every: usize,
    /// Default per-job memory budget: when a search's estimated memory
    /// crosses this many bytes the worker spills its visited set and
    /// frontier to disk instead of growing (or OOM-dying). Per-job
    /// `spill_at` submissions override it; `None` disables the default.
    pub spill_at_bytes: Option<usize>,
    /// Where checkpoints, spill scratch, and the persisted queue live.
    pub state_dir: PathBuf,
    /// Seed for retry-backoff jitter.
    pub seed: u64,
    /// Base search configuration submissions are resolved against.
    pub default_search: SearchConfig,
    /// The filesystem all durable state goes through. Defaults to the
    /// real filesystem; chaos tests hand in a [`pnp_kernel::SimFs`] to
    /// inject torn writes, ENOSPC/EIO, and crashes into every durable
    /// path (checkpoints, the persisted queue, quarantine moves).
    pub vfs: VfsHandle,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue: QueuePolicy::default(),
            default_deadline: Duration::from_secs(30),
            max_attempts: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            wedge_grace: Duration::from_secs(2),
            checkpoint_every: 1024,
            spill_at_bytes: None,
            state_dir: PathBuf::from(".pnp-serve"),
            seed: 0x706e_7073_6572_7665,
            default_search: SearchConfig::default(),
            vfs: real_fs(),
        }
    }
}

/// Monotonic service counters, surfaced by `/health`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs that reached a terminal phase.
    pub completed: u64,
    /// Submissions shed by admission control.
    pub shed: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// Panics caught by worker isolation.
    pub panics_caught: u64,
    /// Wedged workers abandoned and replaced.
    pub workers_replaced: u64,
    /// Jobs restored from a persisted queue at startup.
    pub restored: u64,
    /// Corrupt or orphaned durable files moved to `quarantine/` since
    /// boot.
    pub quarantined: u64,
    /// Stale `*.tmp` staging files removed by the startup sweep.
    pub tmp_swept: u64,
}

struct Inner {
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, JobRecord>,
    /// Idempotency keys of admitted jobs: a resubmission with a known
    /// key returns the original id instead of a duplicate admission.
    /// In-memory only — a restart forgets keys, which errs on the side
    /// of admitting (never on dropping a submission).
    idem_index: HashMap<String, JobId>,
    next_id: u64,
    queued_count: usize,
    queued_bytes: usize,
    active_attempts: usize,
    draining: bool,
    shutdown: bool,
    rng: SplitMix64,
    stats: ServeStats,
}

/// A job's last successful checkpoint flush, surfaced by `/health`.
#[derive(Debug, Clone, Copy)]
struct CheckpointMark {
    generation: u64,
    at: Instant,
}

struct Shared {
    inner: Mutex<Inner>,
    work: Condvar,
    done: Condvar,
    config: ServeConfig,
    /// Per-job checkpoint marks, written by worker sinks mid-attempt
    /// (own lock so flushes never contend with the supervisor lock).
    checkpoints: Arc<Mutex<HashMap<u64, CheckpointMark>>>,
}

/// What one popped attempt carries out of the lock.
struct Task {
    id: JobId,
    epoch: u64,
    attempt: u32,
    request: JobRequest,
    cancel: CancelToken,
}

/// The service's default checkpoint sink: commits each flush as a new
/// snapshot generation (`base.a`/`base.b`, see [`GenStore`]) and records
/// the job's last successful flush for `/health` durability reporting.
struct TrackingSink {
    inner: GenSink,
    job: u64,
    checkpoints: Arc<Mutex<HashMap<u64, CheckpointMark>>>,
}

impl SnapshotSink for TrackingSink {
    fn store(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.inner.store(bytes)?;
        if let Some(generation) = self.inner.last_generation() {
            let mut marks = self.checkpoints.lock().unwrap_or_else(|e| e.into_inner());
            marks.insert(
                self.job,
                CheckpointMark {
                    generation,
                    at: Instant::now(),
                },
            );
        }
        Ok(())
    }
}

/// A checkpoint sink that injects the job's configured fault: panic
/// before the n-th flush (the previous flush is already on disk) or
/// sleep per flush so the watchdog deadline trips mid-run.
struct ChaosSink {
    inner: TrackingSink,
    chaos: Chaos,
    flushes: u32,
}

impl SnapshotSink for ChaosSink {
    fn store(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.flushes += 1;
        match self.chaos {
            Chaos::PanicOnFlush { flush, .. } if self.flushes >= flush => {
                panic!("chaos: injected panic before checkpoint flush {flush}")
            }
            Chaos::SlowFlushMs { ms, .. } => std::thread::sleep(Duration::from_millis(ms)),
            _ => {}
        }
        self.inner.store(bytes)
    }
}

/// The verification service: owns the queue, the workers, and the
/// watchdog. Shared behind an [`Arc`]; every method takes `&self`.
pub struct Supervisor {
    shared: Arc<Shared>,
}

impl Supervisor {
    /// Starts the service: creates the state directory, restores a
    /// persisted queue if one survived the last drain, sweeps stale
    /// `*.tmp` staging files and quarantines corrupt or orphaned durable
    /// files, and spawns the worker and watchdog threads.
    ///
    /// # Errors
    ///
    /// Returns the error when the state directory cannot be created. A
    /// corrupt queue file is *not* an error: it is set aside as
    /// `quarantine/queue.pnpq.corrupt` and the service starts empty.
    pub fn start(config: ServeConfig) -> std::io::Result<Supervisor> {
        let vfs = config.vfs.clone();
        vfs.create_dir_all(&config.state_dir)?;
        let mut inner = Inner {
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            idem_index: HashMap::new(),
            next_id: 1,
            queued_count: 0,
            queued_bytes: 0,
            active_attempts: 0,
            draining: false,
            shutdown: false,
            rng: SplitMix64::seed_from_u64(config.seed),
            stats: ServeStats::default(),
        };

        let queue_path = config.state_dir.join("queue.pnpq");
        if let Ok(bytes) = vfs.read(&queue_path) {
            match decode_queue(&bytes) {
                Ok(persisted) => {
                    for job in persisted {
                        let id = JobId(job.id);
                        inner.next_id = inner.next_id.max(job.id + 1);
                        inner.queued_count += 1;
                        inner.queued_bytes += job.request.source.len();
                        inner.stats.restored += 1;
                        inner.stats.submitted += 1;
                        inner.queue.push_back(id);
                        inner
                            .jobs
                            .insert(id, new_record(id, job.request, job.attempts));
                    }
                }
                Err(reason) => {
                    eprintln!("pnp-serve: ignoring persisted queue: {reason}");
                    if quarantine_file(&config, &queue_path, "queue.pnpq.corrupt") {
                        inner.stats.quarantined += 1;
                    }
                }
            }
            let _ = vfs.remove(&queue_path);
        }
        sweep_state_dir(&config, &mut inner);

        let shared = Arc::new(Shared {
            inner: Mutex::new(inner),
            work: Condvar::new(),
            done: Condvar::new(),
            config,
            checkpoints: Arc::new(Mutex::new(HashMap::new())),
        });
        for _ in 0..shared.config.workers.max(1) {
            spawn_worker(Arc::clone(&shared));
        }
        {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || watchdog_loop(&shared));
        }
        Ok(Supervisor { shared })
    }

    /// The number of jobs restored from a persisted queue at startup.
    pub fn restored(&self) -> u64 {
        self.lock().stats.restored
    }

    /// The base search configuration submissions are resolved against.
    pub fn default_search(&self) -> SearchConfig {
        self.shared.config.default_search
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        self.lock().stats
    }

    /// The per-property results of a job's last finished attempt.
    pub fn results(&self, id: JobId) -> Option<Vec<PropertyResult>> {
        self.lock().jobs.get(&id)?.results.clone()
    }

    /// The structured error of a failed job.
    pub fn error(&self, id: JobId) -> Option<JobError> {
        self.lock().jobs.get(&id)?.error.clone()
    }

    /// How many attempts a job has made.
    pub fn attempts(&self, id: JobId) -> Option<u32> {
        Some(self.lock().jobs.get(&id)?.attempts)
    }

    /// A job's terminal verdict: outer `None` for an unknown id, inner
    /// `None` while the job is still in flight.
    pub fn verdict(&self, id: JobId) -> Option<Option<Verdict>> {
        let inner = self.lock();
        let record = inner.jobs.get(&id)?;
        Some(match record.phase {
            JobPhase::Done(verdict) => Some(verdict),
            _ => None,
        })
    }

    /// Admits a job or sheds it with a retry hint.
    ///
    /// # Errors
    ///
    /// Returns [`ShedInfo`] when a watermark is exceeded or the daemon
    /// is draining.
    pub fn submit(&self, request: JobRequest) -> Result<JobId, ShedInfo> {
        let mut inner = self.lock();
        // Idempotent resubmission: a duplicated or retried delivery of a
        // keyed submission returns the original admission, even during a
        // drain (the job is already in).
        if let Some(key) = &request.idem {
            if let Some(&id) = inner.idem_index.get(key) {
                return Ok(id);
            }
        }
        let policy = self.shared.config.queue;
        let shed = |inner: &mut Inner, reason| {
            inner.stats.shed += 1;
            Err(ShedInfo {
                reason,
                queue_depth: inner.queued_count,
                retry_after: policy.retry_after_for(inner.queued_count),
            })
        };
        if inner.draining || inner.shutdown {
            return shed(&mut inner, "draining");
        }
        if inner.queued_count >= policy.capacity {
            return shed(&mut inner, "queue_full");
        }
        if inner.queued_bytes + request.source.len() > policy.max_queued_bytes {
            return shed(&mut inner, "queue_bytes");
        }
        let id = JobId(inner.next_id);
        inner.next_id += 1;
        inner.queued_count += 1;
        inner.queued_bytes += request.source.len();
        inner.stats.submitted += 1;
        inner.queue.push_back(id);
        if let Some(key) = &request.idem {
            inner.idem_index.insert(key.clone(), id);
        }
        inner.jobs.insert(id, new_record(id, request, 0));
        self.shared.work.notify_one();
        Ok(id)
    }

    /// The `Retry-After` a shed answer should carry right now, scaled by
    /// current queue pressure (used by the connection-cap 503 too, where
    /// no [`ShedInfo`] is produced).
    pub fn retry_after_hint(&self) -> Duration {
        let inner = self.lock();
        self.shared.config.queue.retry_after_for(inner.queued_count)
    }

    /// The newest valid checkpoint payload a job has flushed, as
    /// `(generation, snapshot bytes)` — what the cluster coordinator
    /// ships when migrating the job to a worker without local state.
    pub fn export_checkpoint(&self, id: JobId) -> Option<(u64, Vec<u8>)> {
        let base = checkpoint_path(&self.shared.config.state_dir, id);
        let store = GenStore::new(self.shared.config.vfs.clone(), &base);
        let scan = store.scan().ok()?;
        scan.slots
            .iter()
            .max_by_key(|(generation, _)| *generation)
            .map(|(generation, payload)| (*generation, payload.clone()))
    }

    /// The status object for a job, or `None` for an unknown id.
    pub fn status_json(&self, id: JobId) -> Option<String> {
        let inner = self.lock();
        Some(status_obj(inner.jobs.get(&id)?).build())
    }

    /// The result object for a job and whether it is terminal yet.
    /// `None` for an unknown id.
    pub fn result_json(&self, id: JobId) -> Option<(String, bool)> {
        let inner = self.lock();
        let record = inner.jobs.get(&id)?;
        let done = matches!(record.phase, JobPhase::Done(_));
        if !done {
            return Some((status_obj(record).build(), false));
        }
        let mut obj = status_obj(record);
        if let Some(results) = &record.results {
            obj = obj.raw("properties", &array(results.iter().map(property_json)));
        }
        if let Some(error) = &record.error {
            obj = obj.raw(
                "error",
                &Obj::new()
                    .str("kind", error.kind)
                    .str("reason", &error.reason)
                    .num("attempts", error.attempts)
                    .bool("retryable", false)
                    .build(),
            );
        }
        Some((obj.build(), true))
    }

    /// Cancels a job. Returns `None` for an unknown id, `Some(false)`
    /// when the job was already terminal, `Some(true)` when the
    /// cancellation took (immediately for queued jobs, asynchronously
    /// for running ones).
    pub fn cancel(&self, id: JobId) -> Option<bool> {
        let mut inner = self.lock();
        let source_len = {
            let record = inner.jobs.get(&id)?;
            record.request.source.len()
        };
        let record = inner.jobs.get_mut(&id)?;
        match record.phase {
            JobPhase::Done(_) => Some(false),
            JobPhase::Queued | JobPhase::Retrying { .. } => {
                let was_queued = matches!(record.phase, JobPhase::Queued);
                record.phase = JobPhase::Done(Verdict::Cancelled);
                remove_checkpoint(&self.shared, id);
                if was_queued {
                    inner.queued_count -= 1;
                    inner.queued_bytes -= source_len;
                }
                inner.stats.completed += 1;
                self.shared.done.notify_all();
                Some(true)
            }
            JobPhase::Running => {
                if record.cancel_cause.is_none() {
                    record.cancel_cause = Some(CancelCause::User);
                    record.cancelled_at = Some(Instant::now());
                }
                if let Some(token) = &record.cancel {
                    token.cancel();
                }
                Some(true)
            }
        }
    }

    /// The `/health` object, including durability status: per-job last
    /// checkpoint generation and age, plus quarantine/sweep counters.
    pub fn health_json(&self) -> String {
        let (status, counters, memory) = {
            let inner = self.lock();
            let s = inner.stats;
            // Per-job memory pressure from the last finished attempt:
            // the peak estimate across properties plus the out-of-core
            // spill totals. Jobs without results yet are omitted.
            let mut memory: Vec<String> = inner
                .jobs
                .iter()
                .filter_map(|(id, record)| {
                    let results = record.results.as_ref()?;
                    let max = |f: fn(&PropertyResult) -> usize| {
                        results.iter().map(f).max().unwrap_or(0) as u64
                    };
                    let sum = |f: fn(&PropertyResult) -> usize| {
                        results.iter().map(f).sum::<usize>() as u64
                    };
                    Some((
                        id.0,
                        Obj::new()
                            .str("job", &id.to_string())
                            .num("memory_bytes", max(|r| r.memory_bytes))
                            .num("peak_frontier", max(|r| r.peak_frontier))
                            .num("spilled_states", sum(|r| r.spilled_states))
                            .num("spill_bytes", sum(|r| r.spill_bytes))
                            .num("merge_passes", sum(|r| r.merge_passes))
                            .build(),
                    ))
                })
                .collect::<std::collections::BTreeMap<u64, String>>()
                .into_values()
                .collect();
            memory.truncate(64);
            (
                if inner.draining { "draining" } else { "ok" },
                (
                    inner.queued_count as u64,
                    inner.queued_bytes as u64,
                    inner.active_attempts as u64,
                    s,
                ),
                memory,
            )
        };
        let (queue_depth, queued_bytes, running, s) = counters;
        let marks = {
            let marks = self
                .shared
                .checkpoints
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let mut marks: Vec<(u64, CheckpointMark)> =
                marks.iter().map(|(&job, &mark)| (job, mark)).collect();
            marks.sort_by_key(|&(job, _)| job);
            marks
        };
        let now = Instant::now();
        let checkpoints = array(marks.iter().map(|(job, mark)| {
            Obj::new()
                .str("job", &JobId(*job).to_string())
                .num("generation", mark.generation)
                .num(
                    "age_ms",
                    u64::try_from(now.saturating_duration_since(mark.at).as_millis())
                        .unwrap_or(u64::MAX),
                )
                .build()
        }));
        Obj::new()
            .str("status", status)
            .num("queue_depth", queue_depth)
            .num("queued_bytes", queued_bytes)
            .num("running", running)
            .num("workers", self.shared.config.workers as u64)
            .num("submitted", s.submitted)
            .num("completed", s.completed)
            .num("shed", s.shed)
            .num("retries", s.retries)
            .num("panics_caught", s.panics_caught)
            .num("workers_replaced", s.workers_replaced)
            .num("restored", s.restored)
            .num("quarantined", s.quarantined)
            .num("tmp_swept", s.tmp_swept)
            .raw("checkpoints", &checkpoints)
            .raw("memory", &array(memory))
            .build()
    }

    /// The load telemetry a cluster heartbeat carries: queue depth,
    /// running attempts, the peak per-job memory estimate, and total
    /// spill bytes — the coordinator's weighted-dispatch feed.
    pub fn load_snapshot(&self) -> crate::membership::WorkerLoad {
        let inner = self.lock();
        let mut memory_bytes = 0u64;
        let mut spill_bytes = 0u64;
        for record in inner.jobs.values() {
            if let Some(results) = &record.results {
                memory_bytes = memory_bytes
                    .max(results.iter().map(|r| r.memory_bytes).max().unwrap_or(0) as u64);
                spill_bytes += results.iter().map(|r| r.spill_bytes).sum::<usize>() as u64;
            }
        }
        crate::membership::WorkerLoad {
            queue_depth: inner.queued_count as u64,
            running: inner.active_attempts as u64,
            memory_bytes,
            spill_bytes,
        }
    }

    /// Blocks until the job reaches a terminal phase, up to `timeout`.
    pub fn wait_done(&self, id: JobId, timeout: Duration) -> Option<Verdict> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            match inner.jobs.get(&id).map(|r| r.phase) {
                Some(JobPhase::Done(verdict)) => return Some(verdict),
                None => return None,
                _ => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            inner = self
                .shared
                .done
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Gracefully drains the service: stops admitting, cancels in-flight
    /// attempts (their final snapshots flush through the kernel's
    /// cancellation path), parks them back on the queue, persists the
    /// queue to `queue.pnpq`, and stops the workers. Idempotent.
    pub fn drain(&self) {
        let mut inner = self.lock();
        if inner.draining {
            return;
        }
        inner.draining = true;
        for record in inner.jobs.values_mut() {
            if matches!(record.phase, JobPhase::Running) {
                if record.cancel_cause.is_none() {
                    record.cancel_cause = Some(CancelCause::Drain);
                    record.cancelled_at = Some(Instant::now());
                }
                if let Some(token) = &record.cancel {
                    token.cancel();
                }
            }
        }
        self.shared.work.notify_all();

        // Wait for in-flight attempts to park (or be abandoned by the
        // watchdog, which keeps running during the drain).
        let deadline = Instant::now()
            + self.shared.config.default_deadline
            + self.shared.config.wedge_grace * 2;
        while inner.active_attempts > 0 && Instant::now() < deadline {
            inner = self
                .shared
                .done
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }

        let mut persisted: Vec<PersistedJob> = Vec::new();
        let ids: Vec<JobId> = inner.queue.iter().copied().collect();
        for id in ids {
            if let Some(record) = inner.jobs.get(&id) {
                if matches!(record.phase, JobPhase::Queued) {
                    persisted.push(PersistedJob {
                        id: id.0,
                        attempts: record.attempts,
                        request: record.request.clone(),
                    });
                }
            }
        }
        // Retrying jobs restart (without their backoff timer) after the
        // restart; persist them behind the queued ones.
        let mut retrying: Vec<&JobRecord> = inner
            .jobs
            .values()
            .filter(|r| matches!(r.phase, JobPhase::Retrying { .. }))
            .collect();
        retrying.sort_by_key(|r| r.id);
        for record in retrying {
            persisted.push(PersistedJob {
                id: record.id.0,
                attempts: record.attempts,
                request: record.request.clone(),
            });
        }
        let path = self.shared.config.state_dir.join("queue.pnpq");
        let vfs = &self.shared.config.vfs;
        if persisted.is_empty() {
            let _ = vfs.remove(&path);
        } else {
            // Full commit discipline (tmp + fsync + rename + dir fsync):
            // after a power loss the restart sees either the complete
            // queue or no queue at all, never a torn file.
            let bytes = encode_queue(&persisted);
            if commit_replace(vfs.as_ref(), &path, &bytes).is_err() {
                eprintln!("pnp-serve: failed to persist queue to {}", path.display());
            }
        }
        inner.shutdown = true;
        self.shared.work.notify_all();
        self.shared.done.notify_all();
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A worker can only poison this lock by panicking *inside* the
        // supervisor's own bookkeeping (attempt bodies run under
        // catch_unwind); keep serving rather than cascade the panic.
        self.shared.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn new_record(id: JobId, request: JobRequest, attempts: u32) -> JobRecord {
    JobRecord {
        id,
        request,
        phase: JobPhase::Queued,
        attempts,
        epoch: 0,
        cancel: None,
        cancel_cause: None,
        started_at: None,
        cancelled_at: None,
        results: None,
        error: None,
    }
}

fn status_obj(record: &JobRecord) -> Obj {
    let phase = match record.phase {
        JobPhase::Queued => "queued",
        JobPhase::Running => "running",
        JobPhase::Retrying { .. } => "retrying",
        JobPhase::Done(_) => "done",
    };
    let mut obj = Obj::new()
        .str("id", &record.id.to_string())
        .str("phase", phase)
        .num("attempts", record.attempts);
    if let JobPhase::Done(verdict) = record.phase {
        obj = obj
            .str("verdict", verdict.as_str())
            .num("exit_code", verdict.exit_code());
    }
    obj
}

pub(crate) fn property_json(result: &PropertyResult) -> String {
    Obj::new()
        .str("name", &result.name)
        .bool("holds", result.holds)
        .bool("inconclusive", result.inconclusive)
        .bool("approx", result.approx)
        .num("states", result.states as u64)
        .num("steps", result.steps as u64)
        .num("max_depth", result.max_depth as u64)
        .num("memory_bytes", result.memory_bytes as u64)
        .num("peak_frontier", result.peak_frontier as u64)
        .num("spilled_states", result.spilled_states as u64)
        .num("spill_bytes", result.spill_bytes as u64)
        .num("merge_passes", result.merge_passes as u64)
        .str("detail", &result.detail)
        .build()
}

/// The *base* path of a job's checkpoint; the actual files are the
/// generation slots `<base>.a` and `<base>.b` (see [`GenStore`]).
fn checkpoint_path(state_dir: &Path, id: JobId) -> PathBuf {
    state_dir.join(format!("job-{}.pnpsnap", id.0))
}

/// The scratch directory an out-of-core search spills its visited
/// partitions and frontier chunks into. Recreatable at will: wiped when
/// the job finishes and swept when orphaned.
fn spill_dir(state_dir: &Path, id: JobId) -> PathBuf {
    state_dir.join(format!("job-{}.spill", id.0))
}

/// Removes a job's spill scratch directory: the search lays out
/// `<dir>/frontier/` and `<dir>/visited/` subtrees, so removal walks the
/// tree bottom-up. Scratch is recreatable, so errors are swallowed;
/// returns whether anything was removed.
fn remove_spill_dir(shared: &Shared, id: JobId) -> bool {
    remove_tree(&shared.config.vfs, &spill_dir(&shared.config.state_dir, id))
}

/// Best-effort recursive removal of a directory tree on the `Vfs`.
/// Returns whether any entry was removed.
fn remove_tree(vfs: &pnp_kernel::VfsHandle, dir: &Path) -> bool {
    let mut removed = false;
    if let Ok(subdirs) = vfs.list_dirs(dir) {
        for subdir in subdirs {
            removed |= remove_tree(vfs, &subdir);
        }
    }
    if let Ok(files) = vfs.list(dir) {
        for file in files {
            removed |= vfs.remove(&file).is_ok();
        }
    }
    removed | vfs.remove(dir).is_ok()
}

/// Removes a finished job's checkpoint generations (and any legacy
/// single-file snapshot), wipes its spill scratch, and forgets its
/// `/health` checkpoint mark.
fn remove_checkpoint(shared: &Shared, id: JobId) {
    let base = checkpoint_path(&shared.config.state_dir, id);
    GenStore::new(shared.config.vfs.clone(), &base).remove_all();
    let _ = shared.config.vfs.remove(&base);
    remove_spill_dir(shared, id);
    let mut marks = shared.checkpoints.lock().unwrap_or_else(|e| e.into_inner());
    marks.remove(&id.0);
}

/// Moves `path` into the state directory's `quarantine/` subdirectory
/// under `dest_name`, preserving the bytes for post-mortem inspection.
fn quarantine_file(config: &ServeConfig, path: &Path, dest_name: &str) -> bool {
    let quarantine = config.state_dir.join("quarantine");
    if config.vfs.create_dir_all(&quarantine).is_err() {
        return false;
    }
    config.vfs.rename(path, &quarantine.join(dest_name)).is_ok()
}

/// Classifies a state-directory entry name as a job's spill scratch
/// directory (`job-N.spill`). Returns the job id.
fn spill_dir_job(name: &str) -> Option<u64> {
    name.strip_prefix("job-")?
        .strip_suffix(".spill")?
        .parse()
        .ok()
}

/// Classifies a state-directory file name as a checkpoint artifact:
/// `job-N.pnpsnap` (legacy single file) or `job-N.pnpsnap.a`/`.b`
/// (generation slots). Returns the job id and whether it is a slot.
fn checkpoint_file_job(name: &str) -> Option<(u64, bool)> {
    let rest = name.strip_prefix("job-")?;
    if let Some(id) = rest.strip_suffix(".pnpsnap") {
        return id.parse().ok().map(|id| (id, false));
    }
    let id = rest
        .strip_suffix(".pnpsnap.a")
        .or_else(|| rest.strip_suffix(".pnpsnap.b"))?;
    id.parse().ok().map(|id| (id, true))
}

/// The startup sweep over the state directory: removes stale `*.tmp`
/// staging files left by interrupted commits, and quarantines checkpoint
/// files that are corrupt (undecodable) or orphaned (valid, but no
/// restored job will ever resume them).
fn sweep_state_dir(config: &ServeConfig, inner: &mut Inner) {
    // Spill scratch is recreatable, never resumed from: orphaned
    // `job-N.spill` trees are swept rather than quarantined.
    if let Ok(dirs) = config.vfs.list_dirs(&config.state_dir) {
        for dir in dirs {
            let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(job) = spill_dir_job(name) else {
                continue;
            };
            if !inner.jobs.contains_key(&JobId(job)) && remove_tree(&config.vfs, &dir) {
                inner.stats.tmp_swept += 1;
            }
        }
    }
    let Ok(entries) = config.vfs.list(&config.state_dir) else {
        return;
    };
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        if name.ends_with(".tmp") {
            if config.vfs.remove(&path).is_ok() {
                inner.stats.tmp_swept += 1;
            }
            continue;
        }
        let Some((job, is_slot)) = checkpoint_file_job(&name) else {
            continue;
        };
        let decodable = config.vfs.read(&path).is_ok_and(|bytes| {
            if is_slot {
                pnp_kernel::decode_generation(&bytes)
                    .is_ok_and(|(_, payload)| Snapshot::decode(&payload).is_ok())
            } else {
                Snapshot::decode(&bytes).is_ok()
            }
        });
        let orphaned = !inner.jobs.contains_key(&JobId(job));
        if (!decodable || orphaned) && quarantine_file(config, &path, &name) {
            inner.stats.quarantined += 1;
        }
    }
}

fn spawn_worker(shared: Arc<Shared>) {
    std::thread::spawn(move || worker_loop(&shared));
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let Some(task) = next_task(shared) else {
            return;
        };
        let (outcome, results) = run_attempt_caught(shared, &task);
        if !finish_attempt(shared, &task, outcome, results) {
            // The watchdog abandoned this attempt and already spawned a
            // replacement worker; this thread bows out.
            return;
        }
    }
}

/// Blocks until a runnable job is available; `None` on shutdown.
fn next_task(shared: &Arc<Shared>) -> Option<Task> {
    let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if inner.shutdown {
            return None;
        }
        if !inner.draining {
            while let Some(id) = inner.queue.pop_front() {
                // Entries are removed lazily: a job cancelled while
                // queued stays in the deque but left the Queued phase.
                let runnable = inner
                    .jobs
                    .get(&id)
                    .is_some_and(|r| matches!(r.phase, JobPhase::Queued));
                if !runnable {
                    continue;
                }
                inner.queued_count -= 1;
                inner.active_attempts += 1;
                let source_len = inner.jobs[&id].request.source.len();
                inner.queued_bytes -= source_len;
                let record = inner.jobs.get_mut(&id).expect("job exists");
                record.phase = JobPhase::Running;
                record.attempts += 1;
                let token = CancelToken::new();
                record.cancel = Some(token.clone());
                record.cancel_cause = None;
                record.started_at = Some(Instant::now());
                record.cancelled_at = None;
                return Some(Task {
                    id,
                    epoch: record.epoch,
                    attempt: record.attempts,
                    request: record.request.clone(),
                    cancel: token,
                });
            }
        }
        inner = shared
            .work
            .wait_timeout(inner, Duration::from_millis(100))
            .unwrap_or_else(|e| e.into_inner())
            .0;
    }
}

fn run_attempt_caught(
    shared: &Arc<Shared>,
    task: &Task,
) -> (JobOutcome, Option<Vec<PropertyResult>>) {
    match catch_unwind(AssertUnwindSafe(|| run_attempt(shared, task))) {
        Ok(result) => result,
        Err(payload) => {
            let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.stats.panics_caught += 1;
            drop(inner);
            (JobOutcome::classify_panic(&*payload), None)
        }
    }
}

fn run_attempt(shared: &Arc<Shared>, task: &Task) -> (JobOutcome, Option<Vec<PropertyResult>>) {
    let chaos = task
        .request
        .config
        .chaos
        .filter(|c| c.applies_to(task.attempt));
    if let Some(Chaos::WedgeStartMs { ms, .. }) = chaos {
        // A wedged worker by definition ignores its cancel token.
        std::thread::sleep(Duration::from_millis(ms));
    }

    let spec = match compile(&task.request.source) {
        Ok(spec) => spec,
        Err(error) => {
            return (
                JobOutcome::Failed {
                    class: FailureClass::Permanent,
                    reason: error.to_string(),
                },
                None,
            )
        }
    };

    let snap_path = checkpoint_path(&shared.config.state_dir, task.id);
    let resume = load_resume_snapshot(shared, task.id, &spec).or_else(|| {
        // No local checkpoint: fall back to the snapshot the cluster
        // coordinator shipped with a migrated job, if any.
        let payload = task.request.seed_snapshot.as_deref()?;
        Snapshot::decode(payload)
            .ok()
            .filter(|snapshot| snapshot.matches_program(spec.system().program()))
    });
    // Every attempt checkpoints through a TrackingSink (generations +
    // /health marks); the job's configured chaos wraps it when armed.
    let checkpoint_sink: pnp_lang::SinkFactory = {
        let vfs = shared.config.vfs.clone();
        let checkpoints = Arc::clone(&shared.checkpoints);
        let job = task.id.0;
        Arc::new(move |path: &Path| -> Box<dyn SnapshotSink> {
            let tracking = TrackingSink {
                inner: GenSink::new(vfs.clone(), path),
                job,
                checkpoints: Arc::clone(&checkpoints),
            };
            match chaos {
                Some(chaos) => Box::new(ChaosSink {
                    inner: tracking,
                    chaos,
                    flushes: 0,
                }),
                None => Box::new(tracking),
            }
        })
    };
    let mut config = task.request.config.config;
    if config.spill_at_bytes.is_none() {
        // The service-level memory budget backstops every job that did
        // not pick its own: workers degrade to out-of-core search
        // instead of OOM-dying.
        config.spill_at_bytes = shared.config.spill_at_bytes;
    }
    let options = VerifyOptions {
        config,
        cancel: Some(task.cancel.clone()),
        checkpoint: Some((snap_path.clone(), shared.config.checkpoint_every)),
        resume,
        checkpoint_sink: Some(checkpoint_sink),
        vfs: Some(shared.config.vfs.clone()),
        spill_dir: Some(spill_dir(&shared.config.state_dir, task.id)),
    };
    match spec.verify_all_with_options(&options) {
        Ok(results) => {
            let outcome = if results
                .iter()
                .any(|r| r.stop == Some(BudgetKind::Cancelled))
            {
                JobOutcome::Interrupted
            } else if let Some(budget) = results.iter().find_map(|r| r.stop) {
                JobOutcome::OutOfBudget(budget)
            } else {
                JobOutcome::Conclusive
            };
            (outcome, Some(results))
        }
        Err(error) => {
            if matches!(error.0, KernelError::Snapshot { .. }) {
                // A checkpoint that cannot be stored or loaded should not
                // poison every retry: start the next attempt clean.
                remove_checkpoint(shared, task.id);
            }
            (JobOutcome::classify_error(&error.0), None)
        }
    }
}

/// Loads the job's newest valid checkpoint generation for a resumed
/// attempt, rolling back to the older slot when the newer one is
/// damaged (damaged slots are quarantined). A snapshot that belongs to
/// a different program is discarded so the attempt restarts from scratch
/// instead of failing forever.
fn load_resume_snapshot(shared: &Shared, id: JobId, spec: &pnp_lang::ArchSpec) -> Option<Snapshot> {
    let base = checkpoint_path(&shared.config.state_dir, id);
    let store = GenStore::new(shared.config.vfs.clone(), &base);
    let scan = store.scan().ok()?;
    for path in &scan.corrupt {
        let name = path.file_name()?.to_str()?.to_string();
        if quarantine_file(&shared.config, path, &name) {
            let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.stats.quarantined += 1;
        }
    }
    for (_, payload) in &scan.slots {
        if let Ok(snapshot) = Snapshot::decode(payload) {
            if snapshot.matches_program(spec.system().program()) {
                return Some(snapshot);
            }
        }
    }
    if !scan.slots.is_empty() {
        // Valid generations, wrong program: never resumable for this job.
        store.remove_all();
    }
    None
}

/// What `finish_attempt` decides to do with a finished attempt, computed
/// under the lock in one borrow, then applied.
enum Decision {
    Done(Verdict, Option<JobError>),
    Retry(String),
    Park,
    Stale,
}

/// Applies an attempt's outcome to the job record. Returns `false` when
/// the attempt was already abandoned (stale epoch) and the worker thread
/// should exit.
fn finish_attempt(
    shared: &Arc<Shared>,
    task: &Task,
    outcome: JobOutcome,
    results: Option<Vec<PropertyResult>>,
) -> bool {
    let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
    let decision = match inner.jobs.get_mut(&task.id) {
        None => Decision::Stale,
        Some(record) if record.epoch != task.epoch => Decision::Stale,
        Some(record) => {
            record.cancel = None;
            record.started_at = None;
            record.cancelled_at = None;
            let cause = record.cancel_cause.take();
            if let Some(results) = results {
                record.results = Some(results);
            }
            match outcome {
                JobOutcome::Conclusive => {
                    let violated = record
                        .results
                        .as_deref()
                        .unwrap_or_default()
                        .iter()
                        .any(|r| !r.holds && !r.inconclusive);
                    let verdict = if violated {
                        Verdict::Violated
                    } else {
                        Verdict::Passed
                    };
                    Decision::Done(verdict, None)
                }
                JobOutcome::OutOfBudget(_) => Decision::Done(Verdict::Inconclusive, None),
                JobOutcome::Interrupted => match cause {
                    Some(CancelCause::User) => Decision::Done(Verdict::Cancelled, None),
                    Some(CancelCause::Drain) => Decision::Park,
                    Some(CancelCause::Deadline) | None => {
                        Decision::Retry("watchdog deadline exceeded".into())
                    }
                },
                JobOutcome::Failed {
                    class: FailureClass::Transient,
                    reason,
                } => Decision::Retry(reason),
                JobOutcome::Failed {
                    class: FailureClass::Permanent,
                    reason,
                } => Decision::Done(
                    Verdict::Failed,
                    Some(JobError {
                        kind: "permanent",
                        reason,
                        attempts: record.attempts,
                    }),
                ),
            }
        }
    };
    if matches!(decision, Decision::Stale) {
        return false;
    }
    inner.active_attempts -= 1;
    apply_decision(shared, &mut inner, task.id, decision);
    true
}

/// Applies a [`Decision`] to a live (non-stale) job. Callers have
/// already accounted `active_attempts`.
fn apply_decision(shared: &Arc<Shared>, inner: &mut Inner, id: JobId, decision: Decision) {
    match decision {
        Decision::Stale => {}
        Decision::Done(verdict, error) => {
            let record = inner.jobs.get_mut(&id).expect("job exists");
            record.phase = JobPhase::Done(verdict);
            record.error = error;
            remove_checkpoint(shared, id);
            inner.stats.completed += 1;
            shared.done.notify_all();
        }
        Decision::Park => {
            // The drain cancelled this attempt; the kernel flushed a
            // final snapshot on the way out. Give the attempt back (it
            // did not fail) and requeue for persistence or pickup.
            let record = inner.jobs.get_mut(&id).expect("job exists");
            record.attempts = record.attempts.saturating_sub(1);
            record.phase = JobPhase::Queued;
            let bytes = record.request.source.len();
            inner.queue.push_front(id);
            inner.queued_count += 1;
            inner.queued_bytes += bytes;
            shared.done.notify_all();
        }
        Decision::Retry(reason) => {
            let (attempts, ceiling) = {
                let record = inner.jobs.get(&id).expect("job exists");
                let ceiling = record
                    .request
                    .config
                    .max_attempts
                    .unwrap_or(shared.config.max_attempts);
                (record.attempts, ceiling)
            };
            if attempts >= ceiling {
                let record = inner.jobs.get_mut(&id).expect("job exists");
                record.phase = JobPhase::Done(Verdict::Failed);
                record.error = Some(JobError {
                    kind: "transient_exhausted",
                    reason,
                    attempts,
                });
                remove_checkpoint(shared, id);
                inner.stats.completed += 1;
                shared.done.notify_all();
            } else {
                let delay = backoff(&shared.config, attempts, &mut inner.rng);
                let record = inner.jobs.get_mut(&id).expect("job exists");
                record.phase = JobPhase::Retrying {
                    next_attempt_at: Instant::now() + delay,
                };
                inner.stats.retries += 1;
            }
        }
    }
}

/// Exponential backoff with multiplicative jitter in `[0.5, 1.5)`:
/// `base * 2^(attempt-1)`, capped, scaled by a [`SplitMix64`] draw so
/// retry storms decorrelate.
fn backoff(config: &ServeConfig, attempt: u32, rng: &mut SplitMix64) -> Duration {
    let exp = attempt.saturating_sub(1).min(16);
    let scaled = config
        .backoff_base
        .saturating_mul(1u32 << exp)
        .min(config.backoff_cap);
    let jitter = 512 + (rng.next_u64() % 1024) as u128;
    let nanos = scaled.as_nanos().saturating_mul(jitter) / 1024;
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

fn watchdog_loop(shared: &Arc<Shared>) {
    loop {
        std::thread::sleep(Duration::from_millis(20));
        let mut inner = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.shutdown {
            return;
        }
        let now = Instant::now();

        // Phase 1: trip deadlines on overrunning attempts.
        for record in inner.jobs.values_mut() {
            if !matches!(record.phase, JobPhase::Running) || record.cancel_cause.is_some() {
                continue;
            }
            let deadline = record
                .request
                .config
                .deadline
                .unwrap_or(shared.config.default_deadline);
            if record.started_at.is_some_and(|t| now - t > deadline) {
                record.cancel_cause = Some(CancelCause::Deadline);
                record.cancelled_at = Some(now);
                if let Some(token) = &record.cancel {
                    token.cancel();
                }
            }
        }

        // Phase 2: abandon workers that ignored their cancellation past
        // the wedge grace — bump the epoch so the zombie's eventual
        // result is discarded, replace the worker, and retry the job.
        let wedged: Vec<JobId> = inner
            .jobs
            .values()
            .filter(|r| {
                matches!(r.phase, JobPhase::Running)
                    && r.cancelled_at
                        .is_some_and(|t| now - t > shared.config.wedge_grace)
            })
            .map(|r| r.id)
            .collect();
        for id in wedged {
            let draining = inner.draining;
            let cause = {
                let record = inner.jobs.get_mut(&id).expect("job exists");
                record.epoch += 1;
                record.cancel = None;
                record.started_at = None;
                record.cancelled_at = None;
                record.cancel_cause.take()
            };
            inner.active_attempts -= 1;
            inner.stats.workers_replaced += 1;
            let decision = match cause {
                Some(CancelCause::User) => Decision::Done(Verdict::Cancelled, None),
                Some(CancelCause::Drain) => Decision::Park,
                _ => Decision::Retry("worker wedged past deadline".into()),
            };
            apply_decision(shared, &mut inner, id, decision);
            if !draining {
                spawn_worker(Arc::clone(shared));
            }
        }

        // Phase 3: move due retries back onto the queue.
        let due: Vec<JobId> = inner
            .jobs
            .values()
            .filter(|r| match r.phase {
                JobPhase::Retrying { next_attempt_at } => next_attempt_at <= now,
                _ => false,
            })
            .map(|r| r.id)
            .collect();
        for id in due {
            let record = inner.jobs.get_mut(&id).expect("job exists");
            record.phase = JobPhase::Queued;
            let bytes = record.request.source.len();
            inner.queue.push_back(id);
            inner.queued_count += 1;
            inner.queued_bytes += bytes;
            shared.work.notify_one();
        }
    }
}
