//! The cluster wire protocol: binary codecs for job dispatch
//! (coordinator → worker) and completion upload (worker → coordinator),
//! carried as HTTP bodies over any [`pnp_net::Transport`].
//!
//! Both payloads reuse the persisted queue's hardened framing — magic,
//! length-prefixed fields, trailing FNV-64 checksum — so a truncated or
//! bit-flipped body is rejected at decode instead of misread. Dispatch
//! embeds the job exactly as the queue persists it (no lossy re-render
//! through query parameters), plus the fencing epoch and an optional
//! shipped checkpoint snapshot for migrations.

use pnp_lang::PropertyResult;

use crate::job::{JobError, JobRequest, Verdict};
use crate::queue::{decode_queue, encode_queue, PersistedJob, Reader, Writer};

/// Magic prefix of a dispatch body.
pub const DISPATCH_MAGIC: &[u8; 8] = b"PNPDSPT1";
/// Magic prefix of a completion body.
pub const COMPLETION_MAGIC: &[u8; 8] = b"PNPCMPL1";

/// One job dispatch: everything a worker needs to run an attempt of a
/// cluster job.
#[derive(Debug, Clone)]
pub struct Dispatch {
    /// The cluster-global job number (rendered `g-N`).
    pub job: u64,
    /// The coordinator's attempt epoch for this job; completions from
    /// older epochs are fenced.
    pub epoch: u64,
    /// Attempts already consumed on other workers.
    pub attempts: u32,
    /// The job's absolute end-to-end deadline on the coordinator's
    /// clock, in milliseconds (`None` when the client set no deadline).
    /// The worker re-derives the remaining window against its own clock
    /// at acceptance and clamps the kernel's time budget again — the
    /// envelope only ever shrinks across hops.
    pub deadline_at_ms: Option<u64>,
    /// The submission (source + resolved options; `seed_snapshot` set
    /// when the coordinator ships a checkpoint with a migration).
    pub request: JobRequest,
}

/// Encodes a dispatch body.
pub fn encode_dispatch(dispatch: &Dispatch) -> Vec<u8> {
    let mut w = Writer::new(DISPATCH_MAGIC);
    w.u64(dispatch.job);
    w.u64(dispatch.epoch);
    w.opt_u64(dispatch.deadline_at_ms);
    match &dispatch.request.seed_snapshot {
        Some(snapshot) => {
            w.u8(1);
            w.bytes(snapshot);
        }
        None => w.u8(0),
    }
    // The job itself rides as one persisted-queue entry: the exact
    // codec the drain path already trusts, checksum and all.
    let mut request = dispatch.request.clone();
    request.seed_snapshot = None;
    w.bytes(&encode_queue(&[PersistedJob {
        id: dispatch.job,
        attempts: dispatch.attempts,
        request,
    }]));
    w.finish()
}

/// Decodes a dispatch body.
///
/// # Errors
///
/// Returns a description of the first framing, checksum, or field
/// error.
pub fn decode_dispatch(bytes: &[u8]) -> Result<Dispatch, String> {
    let mut r = Reader::open(bytes, DISPATCH_MAGIC, "dispatch body")?;
    let job = r.u64()?;
    let epoch = r.u64()?;
    let deadline_at_ms = r.opt_u64()?;
    let seed_snapshot = match r.u8()? {
        0 => None,
        1 => Some(r.blob()?),
        other => return Err(format!("bad snapshot flag {other}")),
    };
    let inner = r.blob()?;
    r.done()?;
    let mut jobs = decode_queue(&inner)?;
    let persisted = match (jobs.pop(), jobs.is_empty()) {
        (Some(job), true) => job,
        _ => return Err("dispatch body must carry exactly one job".into()),
    };
    if persisted.id != job {
        return Err(format!(
            "dispatch job id mismatch: envelope g-{job}, payload g-{}",
            persisted.id
        ));
    }
    let mut request = persisted.request;
    request.seed_snapshot = seed_snapshot;
    Ok(Dispatch {
        job,
        epoch,
        attempts: persisted.attempts,
        deadline_at_ms,
        request,
    })
}

/// A finished attempt's upload: the verdict and full per-property
/// results, tagged with the epoch the worker ran under so the
/// coordinator can fence stale uploads.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The cluster-global job number.
    pub job: u64,
    /// The epoch the worker was dispatched under.
    pub epoch: u64,
    /// The uploading worker's name.
    pub worker: String,
    /// Terminal verdict.
    pub verdict: Verdict,
    /// Total attempts consumed (across workers).
    pub attempts: u32,
    /// The structured failure, for `Verdict::Failed`.
    pub error: Option<JobError>,
    /// Per-property results (present unless the job failed before
    /// producing any).
    pub results: Option<Vec<PropertyResult>>,
}

fn verdict_code(verdict: Verdict) -> u8 {
    match verdict {
        Verdict::Passed => 0,
        Verdict::Violated => 1,
        Verdict::Inconclusive => 2,
        Verdict::Failed => 3,
        Verdict::Cancelled => 4,
    }
}

fn verdict_from(code: u8) -> Result<Verdict, String> {
    Ok(match code {
        0 => Verdict::Passed,
        1 => Verdict::Violated,
        2 => Verdict::Inconclusive,
        3 => Verdict::Failed,
        4 => Verdict::Cancelled,
        other => return Err(format!("bad verdict code {other}")),
    })
}

fn stop_code(stop: Option<pnp_kernel::BudgetKind>) -> u8 {
    use pnp_kernel::BudgetKind;
    match stop {
        None => 0,
        Some(BudgetKind::States) => 1,
        Some(BudgetKind::Time) => 2,
        Some(BudgetKind::Depth) => 3,
        Some(BudgetKind::Memory) => 4,
        Some(BudgetKind::Cancelled) => 5,
    }
}

fn stop_from(code: u8) -> Result<Option<pnp_kernel::BudgetKind>, String> {
    use pnp_kernel::BudgetKind;
    Ok(match code {
        0 => None,
        1 => Some(BudgetKind::States),
        2 => Some(BudgetKind::Time),
        3 => Some(BudgetKind::Depth),
        4 => Some(BudgetKind::Memory),
        5 => Some(BudgetKind::Cancelled),
        other => return Err(format!("bad stop code {other}")),
    })
}

/// Encodes a completion body.
pub fn encode_completion(completion: &Completion) -> Vec<u8> {
    let mut w = Writer::new(COMPLETION_MAGIC);
    w.u64(completion.job);
    w.u64(completion.epoch);
    w.str(&completion.worker);
    w.u8(verdict_code(completion.verdict));
    w.u32(completion.attempts);
    match &completion.error {
        Some(error) => {
            w.u8(1);
            w.str(error.kind);
            w.str(&error.reason);
            w.u32(error.attempts);
        }
        None => w.u8(0),
    }
    match &completion.results {
        Some(results) => {
            w.u8(1);
            w.u64(results.len() as u64);
            for r in results {
                w.str(&r.name);
                w.u8(u8::from(r.holds));
                w.u8(u8::from(r.inconclusive));
                w.u8(u8::from(r.approx));
                w.str(&r.detail);
                w.u64(r.states as u64);
                w.u64(r.steps as u64);
                w.u64(r.max_depth as u64);
                w.u64(r.memory_bytes as u64);
                w.u64(r.peak_frontier as u64);
                w.u64(r.spilled_states as u64);
                w.u64(r.spill_bytes as u64);
                w.u64(r.merge_passes as u64);
                w.u8(stop_code(r.stop));
            }
        }
        None => w.u8(0),
    }
    w.finish()
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool, String> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(format!("bad bool {other}")),
    }
}

/// Decodes a completion body.
///
/// # Errors
///
/// Returns a description of the first framing, checksum, or field
/// error.
pub fn decode_completion(bytes: &[u8]) -> Result<Completion, String> {
    let mut r = Reader::open(bytes, COMPLETION_MAGIC, "completion body")?;
    let job = r.u64()?;
    let epoch = r.u64()?;
    let worker = r.str()?;
    let verdict = verdict_from(r.u8()?)?;
    let attempts = r.u32()?;
    let error = match r.u8()? {
        0 => None,
        1 => {
            let kind = match r.str()?.as_str() {
                "permanent" => "permanent",
                "transient_exhausted" => "transient_exhausted",
                other => return Err(format!("bad error kind '{other}'")),
            };
            Some(JobError {
                kind,
                reason: r.str()?,
                attempts: r.u32()?,
            })
        }
        other => return Err(format!("bad error flag {other}")),
    };
    let results = match r.u8()? {
        0 => None,
        1 => {
            let count = r.usize()?;
            if count > 65_536 {
                return Err(format!("implausible result count {count}"));
            }
            let mut results = Vec::with_capacity(count);
            for _ in 0..count {
                results.push(PropertyResult {
                    name: r.str()?,
                    holds: read_bool(&mut r)?,
                    inconclusive: read_bool(&mut r)?,
                    approx: read_bool(&mut r)?,
                    detail: r.str()?,
                    states: r.usize()?,
                    steps: r.usize()?,
                    max_depth: r.usize()?,
                    memory_bytes: r.usize()?,
                    peak_frontier: r.usize()?,
                    spilled_states: r.usize()?,
                    spill_bytes: r.usize()?,
                    merge_passes: r.usize()?,
                    stop: stop_from(r.u8()?)?,
                });
            }
            Some(results)
        }
        other => return Err(format!("bad results flag {other}")),
    };
    r.done()?;
    Ok(Completion {
        job,
        epoch,
        worker,
        verdict,
        attempts,
        error,
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobConfig;

    fn sample_dispatch() -> Dispatch {
        let mut request = JobRequest::new("system { global x = 0; }".into(), JobConfig::default());
        request.seed_snapshot = Some(vec![1, 2, 3, 4]);
        Dispatch {
            job: 7,
            epoch: 3,
            attempts: 2,
            deadline_at_ms: Some(90_000),
            request,
        }
    }

    #[test]
    fn dispatch_roundtrips_including_snapshot() {
        let bytes = encode_dispatch(&sample_dispatch());
        let decoded = decode_dispatch(&bytes).unwrap();
        assert_eq!(decoded.job, 7);
        assert_eq!(decoded.epoch, 3);
        assert_eq!(decoded.attempts, 2);
        assert_eq!(decoded.deadline_at_ms, Some(90_000));
        assert_eq!(decoded.request.source, "system { global x = 0; }");
        assert_eq!(decoded.request.seed_snapshot, Some(vec![1, 2, 3, 4]));
    }

    #[test]
    fn dispatch_rejects_corruption() {
        let mut bytes = encode_dispatch(&sample_dispatch());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(decode_dispatch(&bytes).is_err());
        assert!(decode_dispatch(&bytes[..bytes.len() - 3]).is_err());
        assert!(decode_dispatch(b"PNPWRNG1").is_err());
    }

    #[test]
    fn completion_roundtrips_results_and_error() {
        let completion = Completion {
            job: 9,
            epoch: 1,
            worker: "w2".into(),
            verdict: Verdict::Failed,
            attempts: 3,
            error: Some(JobError {
                kind: "transient_exhausted",
                reason: "worker wedged past deadline".into(),
                attempts: 3,
            }),
            results: Some(vec![PropertyResult {
                name: "mutual_exclusion".into(),
                holds: true,
                inconclusive: false,
                approx: false,
                detail: "42 states".into(),
                states: 42,
                steps: 99,
                max_depth: 7,
                memory_bytes: 123_456,
                peak_frontier: 11,
                spilled_states: 40,
                spill_bytes: 2048,
                merge_passes: 1,
                stop: Some(pnp_kernel::BudgetKind::Time),
            }]),
        };
        let decoded = decode_completion(&encode_completion(&completion)).unwrap();
        assert_eq!(decoded.job, 9);
        assert_eq!(decoded.worker, "w2");
        assert_eq!(decoded.verdict, Verdict::Failed);
        assert_eq!(decoded.error.as_ref().unwrap().kind, "transient_exhausted");
        let results = decoded.results.unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "mutual_exclusion");
        assert_eq!(results[0].stop, Some(pnp_kernel::BudgetKind::Time));
    }

    #[test]
    fn completion_rejects_corruption() {
        let completion = Completion {
            job: 1,
            epoch: 0,
            worker: "w1".into(),
            verdict: Verdict::Passed,
            attempts: 1,
            error: None,
            results: None,
        };
        let mut bytes = encode_completion(&completion);
        let last = bytes.len() - 9;
        bytes[last] ^= 0x01;
        assert!(decode_completion(&bytes).is_err());
    }
}
