//! Cluster membership: the coordinator's worker table, heartbeat-driven
//! failure detection, and hash-shard job placement.
//!
//! Workers register themselves and heartbeat on an interval; the
//! failure detector demotes a worker to *suspect* after one missed
//! interval window and to *dead* after a longer silence, and the
//! coordinator can demote a worker immediately when a dispatched
//! request times out past the job's deadline (request-deadline
//! detection — faster than waiting out heartbeats when the network
//! still looks healthy). All timestamps are caller-supplied
//! milliseconds, so the deterministic chaos harness drives the detector
//! on virtual time.

use pnp_kernel::fnv64;

/// A worker's health as seen by the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Heartbeating within the window; eligible for placement.
    Alive,
    /// Missed one heartbeat window; still owns its jobs, but placement
    /// avoids it.
    Suspect,
    /// Silent past the dead window (or demoted by a request deadline);
    /// its jobs migrate.
    Dead,
}

impl WorkerState {
    /// The stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            WorkerState::Alive => "alive",
            WorkerState::Suspect => "suspect",
            WorkerState::Dead => "dead",
        }
    }
}

/// One registered worker.
#[derive(Debug, Clone)]
pub struct Worker {
    /// The worker's self-chosen stable name (`w1`, …).
    pub name: String,
    /// Its transport address (host:port, or a SimNet peer name).
    pub peer: String,
    /// Detector verdict as of the last [`Membership::tick`].
    pub state: WorkerState,
    /// When the last heartbeat (or registration) arrived, in
    /// caller-clock milliseconds.
    pub last_seen_ms: u64,
    /// Registrations observed for this name; bumps when a crashed
    /// worker comes back so the coordinator can tell a restart from a
    /// flaky link.
    pub incarnation: u64,
}

/// Failure-detector windows, in the caller's clock.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Expected heartbeat interval (default 1000 ms).
    pub heartbeat_ms: u64,
    /// Silence after which a worker turns suspect (default 2500 ms).
    pub suspect_after_ms: u64,
    /// Silence after which a worker is declared dead and its jobs
    /// migrate (default 5000 ms).
    pub dead_after_ms: u64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            heartbeat_ms: 1000,
            suspect_after_ms: 2500,
            dead_after_ms: 5000,
        }
    }
}

/// The worker table. Owned by the coordinator, locked by it.
#[derive(Debug, Default)]
pub struct Membership {
    /// Detector windows.
    pub config: DetectorConfig,
    workers: Vec<Worker>,
}

impl Membership {
    /// An empty table with the given detector windows.
    pub fn new(config: DetectorConfig) -> Membership {
        Membership {
            config,
            workers: Vec::new(),
        }
    }

    /// Registers (or re-registers) a worker. Re-registration revives a
    /// dead worker with a bumped incarnation — the signal that any
    /// state it held before the crash is gone unless checkpointed.
    /// Returns the worker's current incarnation.
    pub fn register(&mut self, name: &str, peer: &str, now_ms: u64) -> u64 {
        if let Some(worker) = self.workers.iter_mut().find(|w| w.name == name) {
            worker.peer = peer.to_string();
            worker.last_seen_ms = now_ms;
            if worker.state == WorkerState::Dead {
                worker.incarnation += 1;
            }
            worker.state = WorkerState::Alive;
            return worker.incarnation;
        }
        self.workers.push(Worker {
            name: name.to_string(),
            peer: peer.to_string(),
            state: WorkerState::Alive,
            last_seen_ms: now_ms,
            incarnation: 1,
        });
        self.workers.sort_by(|a, b| a.name.cmp(&b.name));
        1
    }

    /// Records a heartbeat. Returns `false` for an unregistered name
    /// (the worker should re-register).
    pub fn heartbeat(&mut self, name: &str, now_ms: u64) -> bool {
        match self.workers.iter_mut().find(|w| w.name == name) {
            Some(worker) => {
                worker.last_seen_ms = now_ms;
                if worker.state == WorkerState::Suspect {
                    worker.state = WorkerState::Alive;
                }
                // A dead worker does NOT revive on a heartbeat: its
                // jobs already migrated, so it must re-register (and
                // get a fresh incarnation) before taking new work.
                worker.state != WorkerState::Dead
            }
            None => false,
        }
    }

    /// Runs the detector at `now_ms`; returns the names that *became*
    /// dead on this tick (their jobs must migrate).
    pub fn tick(&mut self, now_ms: u64) -> Vec<String> {
        let mut newly_dead = Vec::new();
        for worker in &mut self.workers {
            if worker.state == WorkerState::Dead {
                continue;
            }
            let silent = now_ms.saturating_sub(worker.last_seen_ms);
            if silent >= self.config.dead_after_ms {
                worker.state = WorkerState::Dead;
                newly_dead.push(worker.name.clone());
            } else if silent >= self.config.suspect_after_ms {
                worker.state = WorkerState::Suspect;
            }
        }
        newly_dead
    }

    /// Demotes a worker to dead immediately (request-deadline
    /// detection: a dispatched call timed out). Returns `true` when the
    /// worker was alive or suspect before.
    pub fn declare_dead(&mut self, name: &str) -> bool {
        match self.workers.iter_mut().find(|w| w.name == name) {
            Some(worker) if worker.state != WorkerState::Dead => {
                worker.state = WorkerState::Dead;
                true
            }
            _ => false,
        }
    }

    /// The registered worker with this name.
    pub fn get(&self, name: &str) -> Option<&Worker> {
        self.workers.iter().find(|w| w.name == name)
    }

    /// All workers, name-sorted (for `/cluster/status`).
    pub fn all(&self) -> &[Worker] {
        &self.workers
    }

    /// Names of placeable workers (alive only), name-sorted.
    pub fn live(&self) -> Vec<&str> {
        self.workers
            .iter()
            .filter(|w| w.state == WorkerState::Alive)
            .map(|w| w.name.as_str())
            .collect()
    }

    /// Hash-shard placement: deterministically picks a live worker for
    /// `key`, skipping `avoid` (the worker an attempt just failed on)
    /// when any other live worker exists. `None` when no live worker.
    pub fn place(&self, key: &str, avoid: Option<&str>) -> Option<String> {
        let live = self.live();
        if live.is_empty() {
            return None;
        }
        let candidates: Vec<&str> = match avoid {
            Some(avoid) if live.len() > 1 => live.iter().copied().filter(|n| *n != avoid).collect(),
            _ => live,
        };
        let index = (fnv64(key.as_bytes()) % candidates.len() as u64) as usize;
        Some(candidates[index].to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Membership {
        let mut m = Membership::new(DetectorConfig::default());
        m.register("w1", "peer1", 0);
        m.register("w2", "peer2", 0);
        m.register("w3", "peer3", 0);
        m
    }

    #[test]
    fn detector_walks_alive_suspect_dead() {
        let mut m = table();
        m.heartbeat("w1", 2000);
        m.heartbeat("w2", 2000);
        // w3 silent since 0: suspect at 2500, dead at 5000.
        assert!(m.tick(2600).is_empty());
        assert_eq!(m.get("w3").unwrap().state, WorkerState::Suspect);
        assert_eq!(m.get("w1").unwrap().state, WorkerState::Alive);
        let dead = m.tick(5100);
        assert_eq!(dead, vec!["w3".to_string()]);
        // Dead workers stay dead on later ticks (migrate once).
        assert!(m.tick(6000).is_empty());
    }

    #[test]
    fn dead_workers_need_reregistration_not_heartbeats() {
        let mut m = table();
        m.tick(5100);
        assert_eq!(m.get("w1").unwrap().state, WorkerState::Dead);
        assert!(!m.heartbeat("w1", 5200));
        assert_eq!(m.get("w1").unwrap().state, WorkerState::Dead);
        let incarnation = m.register("w1", "peer1", 5300);
        assert_eq!(incarnation, 2);
        assert_eq!(m.get("w1").unwrap().state, WorkerState::Alive);
    }

    #[test]
    fn placement_is_deterministic_and_avoids_failed_worker() {
        let m = table();
        let first = m.place("g-1", None).unwrap();
        assert_eq!(m.place("g-1", None).unwrap(), first);
        let moved = m.place("g-1", Some(&first)).unwrap();
        assert_ne!(moved, first);
        // With a single live worker, avoid is a preference, not a veto.
        let mut m = m;
        m.declare_dead("w1");
        m.declare_dead("w2");
        assert_eq!(m.place("g-1", Some("w3")).unwrap(), "w3");
    }

    #[test]
    fn request_deadline_detection_demotes_immediately() {
        let mut m = table();
        assert!(m.declare_dead("w2"));
        assert!(!m.declare_dead("w2"));
        assert!(!m.live().contains(&"w2"));
    }
}
