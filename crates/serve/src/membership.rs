//! Cluster membership: the coordinator's worker table, heartbeat-driven
//! failure detection, load-aware job placement, and per-worker circuit
//! breakers.
//!
//! Workers register themselves and heartbeat on an interval; the
//! failure detector demotes a worker to *suspect* after one missed
//! interval window and to *dead* after a longer silence, and the
//! coordinator can demote a worker immediately when a dispatched
//! request times out past the job's deadline (request-deadline
//! detection — faster than waiting out heartbeats when the network
//! still looks healthy). Heartbeats additionally carry the worker's
//! load telemetry (queue depth, running attempts, memory, spill
//! bytes), which [`Membership::place_weighted`] turns into least-loaded
//! placement, and every dispatch/poll outcome feeds a per-worker
//! circuit breaker so a flapping worker — one that heartbeats fine but
//! fails requests — is taken out of rotation without waiting for the
//! silence detector. All timestamps are caller-supplied milliseconds,
//! so the deterministic chaos harness drives the detector on virtual
//! time.

use std::collections::HashMap;

use pnp_kernel::fnv64;

/// A worker's health as seen by the failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Heartbeating within the window; eligible for placement.
    Alive,
    /// Missed one heartbeat window; still owns its jobs, but placement
    /// avoids it.
    Suspect,
    /// Silent past the dead window (or demoted by a request deadline);
    /// its jobs migrate.
    Dead,
}

impl WorkerState {
    /// The stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            WorkerState::Alive => "alive",
            WorkerState::Suspect => "suspect",
            WorkerState::Dead => "dead",
        }
    }
}

/// Load telemetry a worker reports with each heartbeat — the data feed
/// for weighted dispatch and the fleet view on `/health`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerLoad {
    /// Jobs waiting in the worker's admission queue.
    pub queue_depth: u64,
    /// Attempts currently running on the worker's threads.
    pub running: u64,
    /// Estimated peak memory across running jobs, in bytes.
    pub memory_bytes: u64,
    /// Bytes the worker has spilled to out-of-core storage.
    pub spill_bytes: u64,
}

impl WorkerLoad {
    /// The placement score: lower is better. Queued and running
    /// attempts count equally — both occupy the worker before a new
    /// dispatch would start.
    pub fn score(&self) -> u64 {
        self.queue_depth + self.running
    }
}

/// A per-worker circuit breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are counted.
    Closed,
    /// Tripped: excluded from placement until the cooldown elapses.
    Open,
    /// Cooldown elapsed: placeable again as a probe — one success
    /// closes the breaker, one failure reopens it.
    HalfOpen,
}

impl BreakerState {
    /// The stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Circuit-breaker tuning, in the caller's clock.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Dispatch/poll failures within `window_ms` that trip the breaker
    /// (default 3).
    pub failures: u32,
    /// The sliding failure-counting window (default 10 000 ms).
    pub window_ms: u64,
    /// How long an open breaker excludes the worker before a half-open
    /// probe is allowed (default 5000 ms).
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failures: 3,
            window_ms: 10_000,
            cooldown_ms: 5_000,
        }
    }
}

/// One registered worker.
#[derive(Debug, Clone)]
pub struct Worker {
    /// The worker's self-chosen stable name (`w1`, …).
    pub name: String,
    /// Its transport address (host:port, or a SimNet peer name).
    pub peer: String,
    /// Detector verdict as of the last [`Membership::tick`].
    pub state: WorkerState,
    /// When the last heartbeat (or registration) arrived, in
    /// caller-clock milliseconds.
    pub last_seen_ms: u64,
    /// Registrations observed for this name; bumps when a crashed
    /// worker comes back so the coordinator can tell a restart from a
    /// flaky link.
    pub incarnation: u64,
    /// The load the worker last reported with a heartbeat.
    pub load: WorkerLoad,
    /// The circuit breaker guarding dispatches to this worker.
    pub breaker: BreakerState,
    /// Request failures counted inside the current breaker window.
    pub breaker_failures: u32,
    /// When the current breaker window opened.
    pub breaker_window_ms: u64,
    /// When an open breaker may move to half-open.
    pub breaker_until_ms: u64,
}

/// Failure-detector windows, in the caller's clock.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Expected heartbeat interval (default 1000 ms).
    pub heartbeat_ms: u64,
    /// Silence after which a worker turns suspect (default 2500 ms).
    pub suspect_after_ms: u64,
    /// Silence after which a worker is declared dead and its jobs
    /// migrate (default 5000 ms).
    pub dead_after_ms: u64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            heartbeat_ms: 1000,
            suspect_after_ms: 2500,
            dead_after_ms: 5000,
        }
    }
}

/// The worker table. Owned by the coordinator, locked by it.
#[derive(Debug, Default)]
pub struct Membership {
    /// Detector windows.
    pub config: DetectorConfig,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    workers: Vec<Worker>,
}

impl Membership {
    /// An empty table with the given detector windows and default
    /// breaker tuning.
    pub fn new(config: DetectorConfig) -> Membership {
        Membership {
            config,
            breaker: BreakerConfig::default(),
            workers: Vec::new(),
        }
    }

    /// Registers (or re-registers) a worker. Re-registration revives a
    /// dead worker with a bumped incarnation — the signal that any
    /// state it held before the crash is gone unless checkpointed.
    /// Returns the worker's current incarnation.
    pub fn register(&mut self, name: &str, peer: &str, now_ms: u64) -> u64 {
        if let Some(worker) = self.workers.iter_mut().find(|w| w.name == name) {
            worker.peer = peer.to_string();
            worker.last_seen_ms = now_ms;
            if worker.state == WorkerState::Dead {
                worker.incarnation += 1;
                // The breaker deliberately survives re-registration: a
                // flapping worker (die, rejoin, die again) is exactly
                // what it guards against, so each short life inherits
                // the failure history of the last. A genuinely healthy
                // restart closes it the honest way — by serving
                // requests (record_success) or cooling down.
            }
            worker.state = WorkerState::Alive;
            return worker.incarnation;
        }
        self.workers.push(Worker {
            name: name.to_string(),
            peer: peer.to_string(),
            state: WorkerState::Alive,
            last_seen_ms: now_ms,
            incarnation: 1,
            load: WorkerLoad::default(),
            breaker: BreakerState::Closed,
            breaker_failures: 0,
            breaker_window_ms: now_ms,
            breaker_until_ms: 0,
        });
        self.workers.sort_by(|a, b| a.name.cmp(&b.name));
        1
    }

    /// Records a heartbeat, updating the worker's reported load when
    /// the heartbeat carried telemetry. Returns `false` for an
    /// unregistered name (the worker should re-register).
    pub fn heartbeat(&mut self, name: &str, now_ms: u64, load: Option<WorkerLoad>) -> bool {
        match self.workers.iter_mut().find(|w| w.name == name) {
            Some(worker) => {
                worker.last_seen_ms = now_ms;
                if let Some(load) = load {
                    worker.load = load;
                }
                if worker.state == WorkerState::Suspect {
                    worker.state = WorkerState::Alive;
                }
                // A dead worker does NOT revive on a heartbeat: its
                // jobs already migrated, so it must re-register (and
                // get a fresh incarnation) before taking new work.
                worker.state != WorkerState::Dead
            }
            None => false,
        }
    }

    /// Runs the detector at `now_ms`; returns the names that *became*
    /// dead on this tick (their jobs must migrate).
    pub fn tick(&mut self, now_ms: u64) -> Vec<String> {
        let mut newly_dead = Vec::new();
        for worker in &mut self.workers {
            // Open breakers cool down to half-open regardless of the
            // silence detector: a flapping worker heartbeats fine.
            if worker.breaker == BreakerState::Open && now_ms >= worker.breaker_until_ms {
                worker.breaker = BreakerState::HalfOpen;
                worker.breaker_failures = 0;
            }
            if worker.state == WorkerState::Dead {
                continue;
            }
            let silent = now_ms.saturating_sub(worker.last_seen_ms);
            if silent >= self.config.dead_after_ms {
                worker.state = WorkerState::Dead;
                newly_dead.push(worker.name.clone());
            } else if silent >= self.config.suspect_after_ms {
                worker.state = WorkerState::Suspect;
            }
        }
        newly_dead
    }

    /// Records a dispatch/poll failure against `name`'s breaker.
    /// Returns `true` when this failure *trips* the breaker (closed →
    /// open, or a failed half-open probe reopening it) — the caller
    /// counts trips in its stats.
    pub fn record_failure(&mut self, name: &str, now_ms: u64) -> bool {
        let (failures, window_ms, cooldown_ms) = (
            self.breaker.failures,
            self.breaker.window_ms,
            self.breaker.cooldown_ms,
        );
        let Some(worker) = self.workers.iter_mut().find(|w| w.name == name) else {
            return false;
        };
        match worker.breaker {
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                // The probe failed: straight back to open.
                worker.breaker = BreakerState::Open;
                worker.breaker_until_ms = now_ms + cooldown_ms;
                worker.breaker_failures = 0;
                true
            }
            BreakerState::Closed => {
                if now_ms.saturating_sub(worker.breaker_window_ms) > window_ms {
                    worker.breaker_window_ms = now_ms;
                    worker.breaker_failures = 0;
                }
                worker.breaker_failures += 1;
                if worker.breaker_failures >= failures {
                    worker.breaker = BreakerState::Open;
                    worker.breaker_until_ms = now_ms + cooldown_ms;
                    worker.breaker_failures = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful dispatch/poll against `name`'s breaker: a
    /// half-open probe's success closes it, and any success clears the
    /// closed-state failure count.
    pub fn record_success(&mut self, name: &str, now_ms: u64) {
        if let Some(worker) = self.workers.iter_mut().find(|w| w.name == name) {
            if worker.breaker == BreakerState::HalfOpen {
                worker.breaker = BreakerState::Closed;
            }
            if worker.breaker == BreakerState::Closed {
                worker.breaker_failures = 0;
                worker.breaker_window_ms = now_ms;
            }
        }
    }

    /// Demotes a worker to dead immediately (request-deadline
    /// detection: a dispatched call timed out). Returns `true` when the
    /// worker was alive or suspect before.
    pub fn declare_dead(&mut self, name: &str) -> bool {
        match self.workers.iter_mut().find(|w| w.name == name) {
            Some(worker) if worker.state != WorkerState::Dead => {
                worker.state = WorkerState::Dead;
                true
            }
            _ => false,
        }
    }

    /// The registered worker with this name.
    pub fn get(&self, name: &str) -> Option<&Worker> {
        self.workers.iter().find(|w| w.name == name)
    }

    /// All workers, name-sorted (for `/cluster/status`).
    pub fn all(&self) -> &[Worker] {
        &self.workers
    }

    /// Names of placeable workers (alive only), name-sorted.
    pub fn live(&self) -> Vec<&str> {
        self.workers
            .iter()
            .filter(|w| w.state == WorkerState::Alive)
            .map(|w| w.name.as_str())
            .collect()
    }

    /// Names of dispatch-eligible workers: alive *and* their breaker is
    /// not open (half-open workers are placeable — that is the probe).
    pub fn placeable(&self) -> Vec<&Worker> {
        self.workers
            .iter()
            .filter(|w| w.state == WorkerState::Alive && w.breaker != BreakerState::Open)
            .collect()
    }

    /// Hash-shard placement: deterministically picks a live worker for
    /// `key`, skipping `avoid` (the worker an attempt just failed on)
    /// when any other live worker exists. `None` when no live worker.
    pub fn place(&self, key: &str, avoid: Option<&str>) -> Option<String> {
        let live = self.live();
        if live.is_empty() {
            return None;
        }
        let candidates: Vec<&str> = match avoid {
            Some(avoid) if live.len() > 1 => live.iter().copied().filter(|n| *n != avoid).collect(),
            _ => live,
        };
        let index = (fnv64(key.as_bytes()) % candidates.len() as u64) as usize;
        Some(candidates[index].to_string())
    }

    /// Load-aware weighted placement: picks the dispatch-eligible
    /// worker with the lowest total score — the load it reported with
    /// its last heartbeat plus `extra` (the coordinator's own in-flight
    /// count for that worker, which is fresher than any heartbeat).
    /// Ties break by hashing `key` over the tied set, so equally idle
    /// workers still spread jobs deterministically instead of all
    /// receiving the first one. `avoid` is a preference (the worker an
    /// attempt just failed on), honored while any other candidate
    /// exists. `None` when no worker is placeable.
    pub fn place_weighted(
        &self,
        key: &str,
        avoid: Option<&str>,
        extra: &HashMap<String, usize>,
    ) -> Option<String> {
        let eligible = self.placeable();
        if eligible.is_empty() {
            return None;
        }
        let candidates: Vec<&Worker> = match avoid {
            Some(avoid) if eligible.len() > 1 => eligible
                .iter()
                .copied()
                .filter(|w| w.name != avoid)
                .collect(),
            _ => eligible,
        };
        let score = |w: &Worker| w.load.score() + extra.get(&w.name).copied().unwrap_or(0) as u64;
        let best = candidates.iter().map(|w| score(w)).min()?;
        let tied: Vec<&Worker> = candidates
            .into_iter()
            .filter(|w| score(w) == best)
            .collect();
        let index = (fnv64(key.as_bytes()) % tied.len() as u64) as usize;
        Some(tied[index].name.clone())
    }

    /// The score [`place_weighted`](Membership::place_weighted) would
    /// use for `name` with the given extra in-flight count — the
    /// sticky-affinity comparison hook. `None` for a worker that is not
    /// placeable.
    pub fn weighted_score(&self, name: &str, extra: usize) -> Option<u64> {
        self.placeable()
            .into_iter()
            .find(|w| w.name == name)
            .map(|w| w.load.score() + extra as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Membership {
        let mut m = Membership::new(DetectorConfig::default());
        m.register("w1", "peer1", 0);
        m.register("w2", "peer2", 0);
        m.register("w3", "peer3", 0);
        m
    }

    #[test]
    fn detector_walks_alive_suspect_dead() {
        let mut m = table();
        m.heartbeat("w1", 2000, None);
        m.heartbeat("w2", 2000, None);
        // w3 silent since 0: suspect at 2500, dead at 5000.
        assert!(m.tick(2600).is_empty());
        assert_eq!(m.get("w3").unwrap().state, WorkerState::Suspect);
        assert_eq!(m.get("w1").unwrap().state, WorkerState::Alive);
        let dead = m.tick(5100);
        assert_eq!(dead, vec!["w3".to_string()]);
        // Dead workers stay dead on later ticks (migrate once).
        assert!(m.tick(6000).is_empty());
    }

    #[test]
    fn dead_workers_need_reregistration_not_heartbeats() {
        let mut m = table();
        m.tick(5100);
        assert_eq!(m.get("w1").unwrap().state, WorkerState::Dead);
        assert!(!m.heartbeat("w1", 5200, None));
        assert_eq!(m.get("w1").unwrap().state, WorkerState::Dead);
        let incarnation = m.register("w1", "peer1", 5300);
        assert_eq!(incarnation, 2);
        assert_eq!(m.get("w1").unwrap().state, WorkerState::Alive);
    }

    #[test]
    fn placement_is_deterministic_and_avoids_failed_worker() {
        let m = table();
        let first = m.place("g-1", None).unwrap();
        assert_eq!(m.place("g-1", None).unwrap(), first);
        let moved = m.place("g-1", Some(&first)).unwrap();
        assert_ne!(moved, first);
        // With a single live worker, avoid is a preference, not a veto.
        let mut m = m;
        m.declare_dead("w1");
        m.declare_dead("w2");
        assert_eq!(m.place("g-1", Some("w3")).unwrap(), "w3");
    }

    #[test]
    fn request_deadline_detection_demotes_immediately() {
        let mut m = table();
        assert!(m.declare_dead("w2"));
        assert!(!m.declare_dead("w2"));
        assert!(!m.live().contains(&"w2"));
    }

    #[test]
    fn breaker_opens_cools_down_and_probes() {
        let mut m = table();
        assert!(!m.record_failure("w1", 100));
        assert!(!m.record_failure("w1", 200));
        // Third failure inside the window trips the breaker.
        assert!(m.record_failure("w1", 300));
        assert_eq!(m.get("w1").unwrap().breaker, BreakerState::Open);
        assert!(!m.placeable().iter().any(|w| w.name == "w1"));
        // Alive-but-tripped is invisible to the silence detector.
        m.heartbeat("w1", 400, None);
        assert_eq!(m.get("w1").unwrap().state, WorkerState::Alive);
        // Cooldown elapses on tick → half-open, placeable as a probe.
        m.heartbeat("w1", 5400, None);
        m.heartbeat("w2", 5400, None);
        m.heartbeat("w3", 5400, None);
        m.tick(5400);
        assert_eq!(m.get("w1").unwrap().breaker, BreakerState::HalfOpen);
        assert!(m.placeable().iter().any(|w| w.name == "w1"));
        // A failed probe reopens (and counts as a trip)...
        assert!(m.record_failure("w1", 5500));
        assert_eq!(m.get("w1").unwrap().breaker, BreakerState::Open);
        // ...and a successful probe after the next cooldown closes.
        m.heartbeat("w1", 10_600, None);
        m.heartbeat("w2", 10_600, None);
        m.heartbeat("w3", 10_600, None);
        m.tick(10_600);
        m.record_success("w1", 10_700);
        assert_eq!(m.get("w1").unwrap().breaker, BreakerState::Closed);
    }

    #[test]
    fn breaker_survives_reregistration() {
        // A flapping worker must not launder its failure history by
        // dying and rejoining: two failures, a crash-revive cycle, and
        // one more failure inside the window still trip the breaker.
        let mut m = table();
        assert!(!m.record_failure("w1", 100));
        assert!(!m.record_failure("w1", 200));
        m.declare_dead("w1");
        assert_eq!(m.register("w1", "peer1", 300), 2);
        assert!(m.record_failure("w1", 400));
        assert_eq!(m.get("w1").unwrap().breaker, BreakerState::Open);
    }

    #[test]
    fn breaker_window_expires_old_failures() {
        let mut m = table();
        assert!(!m.record_failure("w1", 0));
        assert!(!m.record_failure("w1", 100));
        // Past the 10s window the count restarts, so no trip.
        assert!(!m.record_failure("w1", 20_000));
        assert_eq!(m.get("w1").unwrap().breaker, BreakerState::Closed);
    }

    #[test]
    fn weighted_placement_prefers_least_loaded() {
        let mut m = table();
        m.heartbeat(
            "w1",
            10,
            Some(WorkerLoad {
                queue_depth: 5,
                running: 2,
                ..WorkerLoad::default()
            }),
        );
        m.heartbeat(
            "w2",
            10,
            Some(WorkerLoad {
                queue_depth: 0,
                running: 1,
                ..WorkerLoad::default()
            }),
        );
        m.heartbeat("w3", 10, Some(WorkerLoad::default()));
        let extra = HashMap::new();
        assert_eq!(m.place_weighted("g-1", None, &extra).unwrap(), "w3");
        // Coordinator-tracked in-flight shifts the choice.
        let mut extra = HashMap::new();
        extra.insert("w3".to_string(), 4);
        assert_eq!(m.place_weighted("g-1", None, &extra).unwrap(), "w2");
        // An open breaker excludes even the least-loaded worker.
        m.record_failure("w3", 20);
        m.record_failure("w3", 21);
        m.record_failure("w3", 22);
        let extra = HashMap::new();
        assert_eq!(m.place_weighted("g-1", None, &extra).unwrap(), "w2");
        // Ties spread deterministically by key hash.
        let mut m2 = table();
        m2.heartbeat("w1", 10, Some(WorkerLoad::default()));
        m2.heartbeat("w2", 10, Some(WorkerLoad::default()));
        m2.heartbeat("w3", 10, Some(WorkerLoad::default()));
        let a = m2.place_weighted("g-1", None, &extra).unwrap();
        assert_eq!(m2.place_weighted("g-1", None, &extra).unwrap(), a);
        let spread: std::collections::HashSet<String> = (0..16)
            .map(|i| m2.place_weighted(&format!("g-{i}"), None, &extra).unwrap())
            .collect();
        assert!(spread.len() > 1, "equal-load workers must share keys");
    }
}
