//! The job model: what a client submits, how the supervisor tracks it,
//! and the chaos (fault-injection) hooks the soak tests drive.

use std::time::{Duration, Instant};

use pnp_kernel::{CancelToken, SearchConfig, VisitedKind};
use pnp_lang::PropertyResult;

/// A job's identity; rendered as `j-N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j-{}", self.0)
    }
}

impl JobId {
    /// Parses `j-N`.
    pub fn parse(s: &str) -> Option<JobId> {
        s.strip_prefix("j-")?.parse().ok().map(JobId)
    }
}

/// Injected worker faults, in the spirit of the connector fault library:
/// the soak tests (and CI) use these to prove the supervisor's retry and
/// watchdog paths work, without patching the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chaos {
    /// Panic when the worker is about to store the `flush`-th checkpoint
    /// of an attempt, on attempts `<= attempts`. The previous flush is
    /// already on disk, so the retry resumes from it.
    PanicOnFlush {
        /// Which flush panics (1-based).
        flush: u32,
        /// Panic only on attempt numbers up to this (1-based).
        attempts: u32,
    },
    /// Sleep this long before each checkpoint store, on attempts
    /// `<= attempts`: simulates a crawling worker so the watchdog
    /// deadline trips mid-run while snapshots still land on disk.
    SlowFlushMs {
        /// Sleep per flush, in milliseconds.
        ms: u64,
        /// Slow only attempt numbers up to this (1-based).
        attempts: u32,
    },
    /// Ignore the world for this long at the start of the attempt,
    /// *without* polling the cancel token: simulates a wedged worker the
    /// watchdog must abandon and replace.
    WedgeStartMs {
        /// Wedge duration in milliseconds.
        ms: u64,
        /// Wedge only attempt numbers up to this (1-based).
        attempts: u32,
    },
}

impl Chaos {
    /// Parses the `chaos` query parameter:
    /// `panic_on_flush:FLUSH[:ATTEMPTS]`, `slow_flush_ms:MS[:ATTEMPTS]`,
    /// or `wedge_start_ms:MS[:ATTEMPTS]` (ATTEMPTS defaults to 1).
    pub fn parse(spec: &str) -> Result<Chaos, String> {
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or_default();
        let mut num = |what: &str, default: Option<u64>| -> Result<u64, String> {
            match parts.next() {
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("chaos '{spec}': {what} '{v}' is not a number")),
                None => default.ok_or_else(|| format!("chaos '{spec}': missing {what}")),
            }
        };
        match kind {
            "panic_on_flush" => Ok(Chaos::PanicOnFlush {
                flush: num("flush index", None)? as u32,
                attempts: num("attempt count", Some(1))? as u32,
            }),
            "slow_flush_ms" => Ok(Chaos::SlowFlushMs {
                ms: num("milliseconds", None)?,
                attempts: num("attempt count", Some(1))? as u32,
            }),
            "wedge_start_ms" => Ok(Chaos::WedgeStartMs {
                ms: num("milliseconds", None)?,
                attempts: num("attempt count", Some(1))? as u32,
            }),
            other => Err(format!(
                "chaos '{spec}': unknown kind '{other}' (want panic_on_flush, \
                 slow_flush_ms, or wedge_start_ms)"
            )),
        }
    }

    /// Whether this fault is active on the given 1-based attempt number.
    pub fn applies_to(&self, attempt: u32) -> bool {
        let limit = match self {
            Chaos::PanicOnFlush { attempts, .. }
            | Chaos::SlowFlushMs { attempts, .. }
            | Chaos::WedgeStartMs { attempts, .. } => *attempts,
        };
        attempt <= limit
    }

    /// Renders back to the `chaos` query syntax (for persistence).
    pub fn render(&self) -> String {
        match self {
            Chaos::PanicOnFlush { flush, attempts } => {
                format!("panic_on_flush:{flush}:{attempts}")
            }
            Chaos::SlowFlushMs { ms, attempts } => format!("slow_flush_ms:{ms}:{attempts}"),
            Chaos::WedgeStartMs { ms, attempts } => format!("wedge_start_ms:{ms}:{attempts}"),
        }
    }
}

/// Per-job options, resolved against the service defaults at submit.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobConfig {
    /// Search budgets, visited-set backend, and thread count.
    pub config: SearchConfig,
    /// Per-attempt wall-clock watchdog deadline (`None` → service
    /// default).
    pub deadline: Option<Duration>,
    /// End-to-end deadline for the whole job, counted from admission.
    /// Unlike `deadline` (which restarts per attempt), this budget only
    /// shrinks: every hop — coordinator dispatch, migration, hedged
    /// retry — re-derives the remaining window and clamps the kernel's
    /// `max_time` and the per-attempt watchdog to it. Expiry yields an
    /// honest `Inconclusive` with partial statistics, never a hang.
    pub job_deadline: Option<Duration>,
    /// Attempt ceiling for transient failures (`None` → service
    /// default).
    pub max_attempts: Option<u32>,
    /// Injected worker fault, if any.
    pub chaos: Option<Chaos>,
}

/// Parses `states=N,time=MS,depth=D,mem=BYTES` (any subset) on top of
/// `base` — the same syntax `pnp-check --budget` takes.
pub fn parse_budget_spec(spec: &str, base: SearchConfig) -> Result<SearchConfig, String> {
    let mut config = base;
    for item in spec.split(',').filter(|s| !s.is_empty()) {
        let (key, value) = item
            .split_once('=')
            .ok_or_else(|| format!("budget '{item}': expected KEY=VALUE"))?;
        let n: u64 = value
            .parse()
            .map_err(|_| format!("budget '{item}': '{value}' is not a number"))?;
        match key {
            "states" => config.max_states = n as usize,
            "time" => config.max_time = Some(Duration::from_millis(n)),
            "depth" => config.max_depth = Some(n as usize),
            "mem" => config.max_memory_bytes = Some(n as usize),
            other => {
                return Err(format!(
                    "budget '{spec}': unknown key '{other}' (want states, time, depth, or mem)"
                ))
            }
        }
    }
    Ok(config)
}

/// Parses `exact|compact|bitstate[:MB]|disk` — the same syntax
/// `pnp-check --visited` takes. A `disk:DIR` scratch directory is
/// accepted but ignored: the daemon assigns each job its own spill
/// directory under the state dir.
pub fn parse_visited_spec(spec: &str) -> Result<VisitedKind, String> {
    match spec {
        "exact" => Ok(VisitedKind::Exact),
        "compact" => Ok(VisitedKind::Compact),
        "bitstate" => Ok(VisitedKind::bitstate(VisitedKind::DEFAULT_BITSTATE_ARENA)),
        "disk" => Ok(VisitedKind::DiskExact),
        other if other.starts_with("disk:") => Ok(VisitedKind::DiskExact),
        other => {
            let mb = other
                .strip_prefix("bitstate:")
                .and_then(|mb| mb.parse::<usize>().ok())
                .filter(|mb| *mb > 0)
                .ok_or_else(|| {
                    format!("visited '{spec}': want exact, compact, bitstate[:MB], or disk")
                })?;
            Ok(VisitedKind::bitstate(mb << 20))
        }
    }
}

/// Resolves the standard submission parameters (`budget`, `threads`,
/// `visited`, `spill_at`, `deadline_ms`, `job_deadline_ms`,
/// `max_attempts`, `chaos`) against `base`,
/// reading each through `lookup` — shared by the HTTP layer and the
/// cluster coordinator, which see different request types.
///
/// # Errors
///
/// Returns the first parameter error, verbatim, for a `400` answer.
pub fn resolve_job_config(
    lookup: &dyn Fn(&str) -> Option<String>,
    base: SearchConfig,
) -> Result<JobConfig, String> {
    let mut config = base;
    if let Some(spec) = lookup("budget") {
        config = parse_budget_spec(&spec, config)?;
    }
    if let Some(threads) = lookup("threads") {
        config.threads = threads
            .parse::<usize>()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("threads '{threads}': want a positive integer"))?;
    }
    if let Some(spec) = lookup("visited") {
        config.visited = parse_visited_spec(&spec)?;
    }
    if let Some(mb) = lookup("spill_at") {
        let mb = mb
            .parse::<usize>()
            .map_err(|_| format!("spill_at '{mb}': want a megabyte count"))?;
        config.spill_at_bytes = Some(mb << 20);
    }
    let deadline = lookup("deadline_ms")
        .map(|v| {
            v.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|_| format!("deadline_ms '{v}': want milliseconds"))
        })
        .transpose()?;
    let job_deadline = lookup("job_deadline_ms")
        .map(|v| {
            v.parse::<u64>()
                .ok()
                .filter(|ms| *ms >= 1)
                .map(Duration::from_millis)
                .ok_or_else(|| format!("job_deadline_ms '{v}': want positive milliseconds"))
        })
        .transpose()?;
    let max_attempts = lookup("max_attempts")
        .map(|v| {
            v.parse::<u32>()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| format!("max_attempts '{v}': want a positive integer"))
        })
        .transpose()?;
    let chaos = lookup("chaos").map(|s| Chaos::parse(&s)).transpose()?;
    Ok(JobConfig {
        config,
        deadline,
        job_deadline,
        max_attempts,
        chaos,
    })
}

/// What a client submitted: the specification source plus options.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The `.pnp` source text.
    pub source: String,
    /// Per-job options.
    pub config: JobConfig,
    /// Client idempotency key (`idem=KEY`): resubmissions with the same
    /// key return the original job instead of admitting a duplicate.
    pub idem: Option<String>,
    /// An encoded checkpoint generation shipped by the cluster
    /// coordinator when a job migrates to a worker that has no local
    /// checkpoint. Consumed by the first attempt's resume path; not
    /// persisted by the queue codec (a restarted daemon re-fetches it).
    pub seed_snapshot: Option<Vec<u8>>,
}

impl JobRequest {
    /// A plain request with no idempotency key or seed snapshot.
    pub fn new(source: String, config: JobConfig) -> JobRequest {
        JobRequest {
            source,
            config,
            idem: None,
            seed_snapshot: None,
        }
    }
}

/// Why the supervisor cancelled an attempt's token. Decides what the
/// resulting [`pnp_kernel::JobOutcome::Interrupted`] means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// The watchdog deadline tripped: retry from the flushed snapshot.
    Deadline,
    /// A client asked for cancellation: finish as `cancelled`.
    User,
    /// The daemon is draining: park the job back on the queue and
    /// persist it.
    Drain,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting in the admission queue.
    Queued,
    /// An attempt is running on a worker.
    Running,
    /// A transient failure scheduled a retry; the attempt starts once
    /// the backoff elapses.
    Retrying {
        /// When the next attempt may start.
        next_attempt_at: Instant,
    },
    /// Terminal.
    Done(Verdict),
}

/// A finished job's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every property holds (possibly modulo hashing — see the
    /// per-property results).
    Passed,
    /// At least one property is violated; counterexamples are in the
    /// per-property results.
    Violated,
    /// A client-requested budget tripped; partial statistics reported.
    Inconclusive,
    /// The job failed (permanently, or transiently past the attempt
    /// ceiling); see the structured error.
    Failed,
    /// Cancelled on client request.
    Cancelled,
}

impl Verdict {
    /// The stable wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Passed => "passed",
            Verdict::Violated => "violated",
            Verdict::Inconclusive => "inconclusive",
            Verdict::Failed => "failed",
            Verdict::Cancelled => "cancelled",
        }
    }

    /// The `pnp-check`-compatible exit code a client should map this to:
    /// 0 passed, 1 violated, 2 failed, 3 inconclusive or cancelled.
    pub fn exit_code(&self) -> u8 {
        match self {
            Verdict::Passed => 0,
            Verdict::Violated => 1,
            Verdict::Failed => 2,
            Verdict::Inconclusive | Verdict::Cancelled => 3,
        }
    }
}

/// The supervisor's record of one job.
#[derive(Debug)]
pub struct JobRecord {
    /// The job's identity.
    pub id: JobId,
    /// What was submitted.
    pub request: JobRequest,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Attempts started so far.
    pub attempts: u32,
    /// Monotonically bumped when the supervisor abandons a wedged
    /// attempt; a worker whose epoch is stale discards its outcome.
    pub epoch: u64,
    /// The running attempt's cancellation token.
    pub cancel: Option<CancelToken>,
    /// Why the supervisor cancelled the running attempt, if it did.
    pub cancel_cause: Option<CancelCause>,
    /// When the running attempt started (watchdog bookkeeping).
    pub started_at: Option<Instant>,
    /// When the supervisor cancelled the running attempt (wedge-grace
    /// bookkeeping).
    pub cancelled_at: Option<Instant>,
    /// Per-property results of the last finished attempt (partial ones
    /// included, e.g. for an inconclusive verdict).
    pub results: Option<Vec<PropertyResult>>,
    /// The structured failure reason for `Verdict::Failed`.
    pub error: Option<JobError>,
}

/// A structured job failure.
#[derive(Debug, Clone)]
pub struct JobError {
    /// `permanent`, or `transient_exhausted` when retries ran out.
    pub kind: &'static str,
    /// Human-readable reason (kernel error or panic message).
    pub reason: String,
    /// Attempts made.
    pub attempts: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_roundtrip() {
        assert_eq!(JobId::parse("j-17"), Some(JobId(17)));
        assert_eq!(JobId::parse(&JobId(3).to_string()), Some(JobId(3)));
        assert_eq!(JobId::parse("x-1"), None);
        assert_eq!(JobId::parse("j-"), None);
    }

    #[test]
    fn chaos_specs_roundtrip() {
        for spec in [
            "panic_on_flush:2:1",
            "slow_flush_ms:40:2",
            "wedge_start_ms:500:1",
        ] {
            let parsed = Chaos::parse(spec).unwrap();
            assert_eq!(parsed.render(), spec);
        }
        assert_eq!(
            Chaos::parse("panic_on_flush:3").unwrap(),
            Chaos::PanicOnFlush {
                flush: 3,
                attempts: 1
            }
        );
        assert!(Chaos::parse("panic_on_flush").is_err());
        assert!(Chaos::parse("rm_rf").is_err());
    }

    #[test]
    fn budget_and_visited_specs_parse() {
        let config =
            parse_budget_spec("states=7,time=9,depth=2,mem=1024", SearchConfig::default()).unwrap();
        assert_eq!(config.max_states, 7);
        assert_eq!(config.max_time, Some(Duration::from_millis(9)));
        assert_eq!(config.max_depth, Some(2));
        assert_eq!(config.max_memory_bytes, Some(1024));
        assert!(parse_budget_spec("states", SearchConfig::default()).is_err());
        assert!(parse_budget_spec("frobs=1", SearchConfig::default()).is_err());

        assert_eq!(parse_visited_spec("exact").unwrap(), VisitedKind::Exact);
        assert!(matches!(
            parse_visited_spec("bitstate:8").unwrap(),
            VisitedKind::Bitstate { .. }
        ));
        assert!(parse_visited_spec("bitstate:0").is_err());
        assert_eq!(parse_visited_spec("disk").unwrap(), VisitedKind::DiskExact);
        assert_eq!(
            parse_visited_spec("disk:/tmp/scratch").unwrap(),
            VisitedKind::DiskExact
        );
    }

    #[test]
    fn spill_at_resolves_to_bytes() {
        let lookup = |key: &str| match key {
            "visited" => Some("disk".to_string()),
            "spill_at" => Some("8".to_string()),
            _ => None,
        };
        let resolved = resolve_job_config(&lookup, SearchConfig::default()).unwrap();
        assert_eq!(resolved.config.visited, VisitedKind::DiskExact);
        assert_eq!(resolved.config.spill_at_bytes, Some(8 << 20));

        let bad = |key: &str| (key == "spill_at").then(|| "lots".to_string());
        assert!(resolve_job_config(&bad, SearchConfig::default()).is_err());
    }

    #[test]
    fn verdict_exit_codes_match_pnp_check() {
        assert_eq!(Verdict::Passed.exit_code(), 0);
        assert_eq!(Verdict::Violated.exit_code(), 1);
        assert_eq!(Verdict::Failed.exit_code(), 2);
        assert_eq!(Verdict::Inconclusive.exit_code(), 3);
        assert_eq!(Verdict::Cancelled.exit_code(), 3);
    }
}
