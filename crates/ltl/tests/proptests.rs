//! Property-based tests for the LTL crate.
//!
//! The central property: for random formulas and random ultimately-periodic
//! words, the Büchi automaton produced by [`pnp_ltl::translate`] accepts the
//! word exactly when a direct semantic evaluation of the formula says it
//! holds. This exercises the parser/printer, NNF rewriting, the tableau
//! construction, and degeneralization against an independent oracle.

use std::collections::HashSet;

use pnp_ltl::{parse, translate, Buchi, Ltl};
use proptest::prelude::*;

const PROPS: [&str; 3] = ["p", "q", "r"];

/// A truth assignment for one position: bitmask over PROPS.
type Letter = u8;

fn holds(letter: Letter, name: &str) -> bool {
    let i = PROPS.iter().position(|p| *p == name).unwrap();
    letter & (1 << i) != 0
}

/// Direct semantics of LTL on the lasso `prefix . cycle^omega`, by
/// fixpoint iteration over the unrolled positions.
fn eval_lasso(f: &Ltl, prefix: &[Letter], cycle: &[Letter]) -> bool {
    let total = prefix.len() + cycle.len();
    let letter = |i: usize| -> Letter {
        if i < prefix.len() {
            prefix[i]
        } else {
            cycle[i - prefix.len()]
        }
    };
    let next = |i: usize| -> usize {
        if i + 1 < total {
            i + 1
        } else {
            prefix.len()
        }
    };

    fn values(
        f: &Ltl,
        total: usize,
        letter: &dyn Fn(usize) -> Letter,
        next: &dyn Fn(usize) -> usize,
    ) -> Vec<bool> {
        match f {
            Ltl::True => vec![true; total],
            Ltl::False => vec![false; total],
            Ltl::Prop(name) => (0..total).map(|i| holds(letter(i), name)).collect(),
            Ltl::Not(p) => values(p, total, letter, next).iter().map(|v| !v).collect(),
            Ltl::And(p, q) => {
                let a = values(p, total, letter, next);
                let b = values(q, total, letter, next);
                a.iter().zip(b).map(|(x, y)| *x && y).collect()
            }
            Ltl::Or(p, q) => {
                let a = values(p, total, letter, next);
                let b = values(q, total, letter, next);
                a.iter().zip(b).map(|(x, y)| *x || y).collect()
            }
            Ltl::Implies(p, q) => {
                let a = values(p, total, letter, next);
                let b = values(q, total, letter, next);
                a.iter().zip(b).map(|(x, y)| !*x || y).collect()
            }
            Ltl::Iff(p, q) => {
                let a = values(p, total, letter, next);
                let b = values(q, total, letter, next);
                a.iter().zip(b).map(|(x, y)| *x == y).collect()
            }
            Ltl::Next(p) => {
                let a = values(p, total, letter, next);
                (0..total).map(|i| a[next(i)]).collect()
            }
            Ltl::Until(p, q) => {
                let a = values(p, total, letter, next);
                let b = values(q, total, letter, next);
                // Least fixpoint of v(i) = b(i) || (a(i) && v(next(i))).
                let mut v = vec![false; total];
                for _ in 0..=total {
                    for i in (0..total).rev() {
                        v[i] = b[i] || (a[i] && v[next(i)]);
                    }
                }
                v
            }
            Ltl::Release(p, q) => {
                let a = values(p, total, letter, next);
                let b = values(q, total, letter, next);
                // Greatest fixpoint of v(i) = b(i) && (a(i) || v(next(i))).
                let mut v = vec![true; total];
                for _ in 0..=total {
                    for i in (0..total).rev() {
                        v[i] = b[i] && (a[i] || v[next(i)]);
                    }
                }
                v
            }
            Ltl::WeakUntil(p, q) => {
                // p W q == (p U q) || [] p == q R (p || q)
                let rewritten = Ltl::release(
                    q.as_ref().clone(),
                    Ltl::or(p.as_ref().clone(), q.as_ref().clone()),
                );
                values(&rewritten, total, letter, next)
            }
            Ltl::Eventually(p) => {
                let rewritten = Ltl::until(Ltl::True, p.as_ref().clone());
                values(&rewritten, total, letter, next)
            }
            Ltl::Globally(p) => {
                let rewritten = Ltl::release(Ltl::False, p.as_ref().clone());
                values(&rewritten, total, letter, next)
            }
        }
    }

    values(f, total, &letter, &next)[0]
}

/// Whether the automaton accepts the lasso word (product reachability +
/// cycle detection, as in the unit tests but over bitmask letters).
fn accepts(buchi: &Buchi, prefix: &[Letter], cycle: &[Letter]) -> bool {
    let total = prefix.len() + cycle.len();
    let letter = |i: usize| -> Letter {
        if i < prefix.len() {
            prefix[i]
        } else {
            cycle[i - prefix.len()]
        }
    };
    let next_pos = |i: usize| -> usize {
        if i + 1 < total {
            i + 1
        } else {
            prefix.len()
        }
    };
    let successors = |(b, pos): (usize, usize)| -> Vec<(usize, usize)> {
        let l = letter(pos);
        buchi
            .transitions_from(b)
            .iter()
            .filter(|t| t.enabled(&|p| holds(l, p)))
            .map(|t| (t.target, next_pos(pos)))
            .collect()
    };
    let mut reachable = HashSet::new();
    let mut stack = vec![(buchi.initial(), 0usize)];
    while let Some(node) = stack.pop() {
        if reachable.insert(node) {
            stack.extend(successors(node));
        }
    }
    for &node in &reachable {
        if !buchi.is_accepting(node.0) {
            continue;
        }
        let mut seen = HashSet::new();
        let mut stack = successors(node);
        while let Some(m) = stack.pop() {
            if m == node {
                return true;
            }
            if seen.insert(m) {
                stack.extend(successors(m));
            }
        }
    }
    false
}

/// Random formula strategy (depth-bounded).
fn formula() -> impl Strategy<Value = Ltl> {
    let leaf = prop_oneof![
        Just(Ltl::True),
        Just(Ltl::False),
        proptest::sample::select(PROPS.to_vec()).prop_map(Ltl::prop),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Ltl::not),
            inner.clone().prop_map(Ltl::next),
            inner.clone().prop_map(Ltl::eventually),
            inner.clone().prop_map(Ltl::globally),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::until(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ltl::release(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Ltl::weak_until(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Printing and re-parsing a random formula is the identity.
    #[test]
    fn display_parse_round_trip(f in formula()) {
        let printed = f.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed for `{printed}`: {e}"));
        prop_assert_eq!(f, reparsed);
    }

    /// NNF preserves semantics on random lasso words.
    #[test]
    fn nnf_preserves_semantics(
        f in formula(),
        prefix in proptest::collection::vec(0u8..8, 0..4),
        cycle in proptest::collection::vec(0u8..8, 1..4),
    ) {
        prop_assert_eq!(
            eval_lasso(&f, &prefix, &cycle),
            eval_lasso(&f.nnf(), &prefix, &cycle)
        );
    }

    /// The Büchi automaton accepts exactly the words satisfying the formula.
    #[test]
    fn buchi_matches_direct_semantics(
        f in formula(),
        prefix in proptest::collection::vec(0u8..8, 0..3),
        cycle in proptest::collection::vec(0u8..8, 1..3),
    ) {
        let expected = eval_lasso(&f, &prefix, &cycle);
        let automaton = translate(&f);
        prop_assert_eq!(
            accepts(&automaton, &prefix, &cycle),
            expected,
            "formula {} on {:?}.{:?}^w", f, prefix, cycle
        );
    }

    /// The negation's automaton accepts the complement language (on these
    /// sampled words).
    #[test]
    fn negation_complements_acceptance(
        f in formula(),
        prefix in proptest::collection::vec(0u8..8, 0..3),
        cycle in proptest::collection::vec(0u8..8, 1..3),
    ) {
        let pos = translate(&f);
        let neg = translate(&f.negated());
        prop_assert_ne!(
            accepts(&pos, &prefix, &cycle),
            accepts(&neg, &prefix, &cycle)
        );
    }
}
