//! Linear temporal logic (LTL) for the PnP verifier.
//!
//! This crate provides everything the PnP design-time verifier needs to turn
//! a textual LTL property into an automaton that the model-checking kernel
//! can run against a system:
//!
//! * an [`Ltl`] abstract syntax tree with the usual temporal operators,
//! * a parser ([`parse`]) for a SPIN-like concrete syntax
//!   (`[]`, `<>`, `X`, `U`, `R`, `W`, `!`, `&&`, `||`, `->`, `<->`),
//! * negation-normal-form rewriting ([`Ltl::nnf`]),
//! * an on-the-fly tableau translation to Büchi automata
//!   ([`translate`], after Gerth–Peled–Vardi–Wolper), including
//!   degeneralization of the intermediate generalized automaton.
//!
//! The crate is deliberately free of dependencies so that it can be tested
//! and reused independently of the model-checking kernel.
//!
//! # Example
//!
//! ```
//! use pnp_ltl::{parse, translate};
//!
//! // "every request is eventually acknowledged"
//! let formula = parse("[] (request -> <> ack)")?;
//! // The checker explores the *negation* of the property.
//! let buchi = translate(&formula.negated());
//! assert!(buchi.state_count() > 0);
//! # Ok::<(), pnp_ltl::ParseError>(())
//! ```

#![warn(missing_docs)]
mod ast;
mod buchi;
mod nnf;
mod parse;

pub use ast::Ltl;
pub use buchi::{translate, Buchi, BuchiTransition, Literal};
pub use parse::{parse, ParseError};
