//! Translation of LTL formulas to Büchi automata.
//!
//! The construction follows Gerth, Peled, Vardi, and Wolper's on-the-fly
//! tableau algorithm ("Simple on-the-fly automatic verification of linear
//! temporal logic", PSTV 1995):
//!
//! 1. the formula is rewritten to negation normal form ([`crate::Ltl::nnf`]);
//! 2. tableau nodes are expanded into a *generalized* Büchi automaton whose
//!    acceptance sets correspond to the `U`-subformulas;
//! 3. the generalized automaton is degeneralized with the usual counter
//!    construction into an ordinary Büchi automaton.
//!
//! The resulting automaton is transition-labeled: each transition carries a
//! conjunction of [`Literal`]s over the formula's atomic propositions and is
//! taken while *reading* the label of the state being entered. State `0` is
//! always the unique initial state.

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

use crate::Ltl;

/// A positive or negated atomic proposition, as used in transition labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The proposition name.
    pub prop: Arc<str>,
    /// `true` for `p`, `false` for `! p`.
    pub positive: bool,
}

impl Literal {
    /// Creates a positive literal for `prop`.
    pub fn pos(prop: impl AsRef<str>) -> Literal {
        Literal {
            prop: Arc::from(prop.as_ref()),
            positive: true,
        }
    }

    /// Creates a negative literal for `prop`.
    pub fn neg(prop: impl AsRef<str>) -> Literal {
        Literal {
            prop: Arc::from(prop.as_ref()),
            positive: false,
        }
    }

    /// Evaluates the literal under a truth assignment.
    pub fn holds(&self, assignment: &dyn Fn(&str) -> bool) -> bool {
        assignment(&self.prop) == self.positive
    }
}

/// One transition of a [`Buchi`] automaton.
///
/// The transition may be taken when every literal in `label` holds in the
/// state being read; an empty label is the constant `true`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuchiTransition {
    /// Conjunction of literals guarding the transition.
    pub label: Vec<Literal>,
    /// Target state index.
    pub target: usize,
}

impl BuchiTransition {
    /// Returns `true` if the label holds under the given truth assignment.
    pub fn enabled(&self, assignment: &dyn Fn(&str) -> bool) -> bool {
        self.label.iter().all(|lit| lit.holds(assignment))
    }
}

/// A (nondeterministic) Büchi automaton over truth assignments of named
/// propositions.
///
/// State `0` is the unique initial state. A run is accepting if it visits an
/// accepting state infinitely often. Produced by [`translate`].
#[derive(Debug, Clone)]
pub struct Buchi {
    transitions: Vec<Vec<BuchiTransition>>,
    accepting: Vec<bool>,
}

impl Buchi {
    /// The number of states, including the initial state `0`.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// The index of the initial state (always `0`).
    pub fn initial(&self) -> usize {
        0
    }

    /// The transitions leaving `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn transitions_from(&self, state: usize) -> &[BuchiTransition] {
        &self.transitions[state]
    }

    /// Whether `state` is accepting.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting[state]
    }

    /// The total number of transitions (a size measure for benchmarks).
    pub fn transition_count(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// Removes transitions into states that cannot contribute to any
    /// accepting run (states from which no accepting cycle is reachable),
    /// and deduplicates identical transitions — the standard never-claim
    /// pruning, which shrinks the product the model checker explores.
    ///
    /// States are kept in place (indices stay stable); useless states
    /// simply end up with no incoming or outgoing transitions.
    fn prune(&mut self) {
        let n = self.state_count();
        // 1. States on an accepting cycle: an accepting state that can
        //    reach itself.
        let reachable_from = |start: usize, transitions: &Vec<Vec<BuchiTransition>>| -> Vec<bool> {
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = transitions[start].iter().map(|t| t.target).collect();
            while let Some(v) = stack.pop() {
                if !seen[v] {
                    seen[v] = true;
                    stack.extend(transitions[v].iter().map(|t| t.target));
                }
            }
            seen
        };
        let mut on_accepting_cycle = vec![false; n];
        for (state, flag) in on_accepting_cycle.iter_mut().enumerate() {
            if self.accepting[state] && reachable_from(state, &self.transitions)[state] {
                *flag = true;
            }
        }
        // 2. States that can reach an accepting cycle (backward closure).
        let mut useful = on_accepting_cycle;
        loop {
            let mut changed = false;
            for state in 0..n {
                if useful[state] {
                    continue;
                }
                if self.transitions[state].iter().any(|t| useful[t.target]) {
                    useful[state] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // 3. Drop transitions into useless states; dedup the rest.
        for outgoing in &mut self.transitions {
            outgoing.retain(|t| useful[t.target]);
            outgoing.sort_by(|a, b| (a.target, &a.label).cmp(&(b.target, &b.label)));
            outgoing.dedup();
        }
    }

    /// Renders the automaton in Graphviz dot format, for debugging.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph buchi {\n  rankdir=LR;\n");
        for state in 0..self.state_count() {
            let shape = if self.accepting[state] {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  s{state} [shape={shape}];");
        }
        for (source, outgoing) in self.transitions.iter().enumerate() {
            for t in outgoing {
                let label = if t.label.is_empty() {
                    "true".to_string()
                } else {
                    t.label
                        .iter()
                        .map(|lit| {
                            if lit.positive {
                                lit.prop.to_string()
                            } else {
                                format!("!{}", lit.prop)
                            }
                        })
                        .collect::<Vec<_>>()
                        .join(" & ")
                };
                let _ = writeln!(out, "  s{source} -> s{} [label=\"{label}\"];", t.target);
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Interned representation of core-NNF formulas so tableau nodes can use
/// integer sets.
struct FormulaTable {
    formulas: Vec<Core>,
    index: HashMap<Core, u32>,
}

/// Core NNF formula with children as table indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Core {
    True,
    False,
    Pos(Arc<str>),
    Neg(Arc<str>),
    And(u32, u32),
    Or(u32, u32),
    Next(u32),
    Until(u32, u32),
    Release(u32, u32),
}

impl FormulaTable {
    fn new() -> FormulaTable {
        FormulaTable {
            formulas: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn intern(&mut self, core: Core) -> u32 {
        if let Some(&id) = self.index.get(&core) {
            return id;
        }
        let id = self.formulas.len() as u32;
        self.formulas.push(core.clone());
        self.index.insert(core, id);
        id
    }

    fn intern_ltl(&mut self, f: &Ltl) -> u32 {
        let core = match f {
            Ltl::True => Core::True,
            Ltl::False => Core::False,
            Ltl::Prop(name) => Core::Pos(name.clone()),
            Ltl::Not(inner) => match inner.as_ref() {
                Ltl::Prop(name) => Core::Neg(name.clone()),
                other => unreachable!("non-NNF negation of {other}"),
            },
            Ltl::And(p, q) => Core::And(self.intern_ltl(p), self.intern_ltl(q)),
            Ltl::Or(p, q) => Core::Or(self.intern_ltl(p), self.intern_ltl(q)),
            Ltl::Next(p) => Core::Next(self.intern_ltl(p)),
            Ltl::Until(p, q) => Core::Until(self.intern_ltl(p), self.intern_ltl(q)),
            Ltl::Release(p, q) => Core::Release(self.intern_ltl(p), self.intern_ltl(q)),
            other => unreachable!("non-core operator {other} survived NNF"),
        };
        self.intern(core)
    }

    fn get(&self, id: u32) -> &Core {
        &self.formulas[id as usize]
    }

    /// The id of the contradiction of a literal, if the literal's dual has
    /// been interned (used for early pruning).
    fn negation_of_literal(&mut self, id: u32) -> Option<u32> {
        match self.get(id).clone() {
            Core::Pos(name) => Some(self.intern(Core::Neg(name))),
            Core::Neg(name) => Some(self.intern(Core::Pos(name))),
            _ => None,
        }
    }
}

/// A tableau node in the GPVW construction.
#[derive(Debug, Clone)]
struct Node {
    incoming: BTreeSet<usize>,
    new: BTreeSet<u32>,
    old: BTreeSet<u32>,
    next: BTreeSet<u32>,
}

/// Sentinel "incoming" marker for initial nodes.
const INIT: usize = usize::MAX;

struct Tableau {
    table: FormulaTable,
    /// Completed nodes (old/new exhausted); index = node id.
    nodes: Vec<Node>,
}

impl Tableau {
    fn expand(&mut self, mut node: Node) {
        let Some(&eta) = node.new.iter().next() else {
            // New is exhausted: merge with an existing equivalent node or
            // record a fresh one and expand its successor obligations.
            for existing in self.nodes.iter_mut() {
                if existing.old == node.old && existing.next == node.next {
                    existing.incoming.extend(node.incoming.iter().copied());
                    return;
                }
            }
            let id = self.nodes.len();
            self.nodes.push(node.clone());
            let successor = Node {
                incoming: BTreeSet::from([id]),
                new: node.next.clone(),
                old: BTreeSet::new(),
                next: BTreeSet::new(),
            };
            self.expand(successor);
            return;
        };
        node.new.remove(&eta);
        match self.table.get(eta).clone() {
            Core::False => { /* contradiction: drop this node */ }
            Core::True => {
                node.old.insert(eta);
                self.expand(node);
            }
            Core::Pos(_) | Core::Neg(_) => {
                let negation = self.table.negation_of_literal(eta);
                if negation.is_some_and(|n| node.old.contains(&n)) {
                    return; // contradictory literal set: drop
                }
                node.old.insert(eta);
                self.expand(node);
            }
            Core::And(p, q) => {
                node.old.insert(eta);
                for sub in [p, q] {
                    if !node.old.contains(&sub) {
                        node.new.insert(sub);
                    }
                }
                self.expand(node);
            }
            Core::Or(p, q) => {
                node.old.insert(eta);
                let mut left = node.clone();
                if !left.old.contains(&p) {
                    left.new.insert(p);
                }
                let mut right = node;
                if !right.old.contains(&q) {
                    right.new.insert(q);
                }
                self.expand(left);
                self.expand(right);
            }
            Core::Next(p) => {
                node.old.insert(eta);
                node.next.insert(p);
                self.expand(node);
            }
            Core::Until(p, q) => {
                // p U q  ==  q || (p && X(p U q))
                node.old.insert(eta);
                let mut left = node.clone();
                if !left.old.contains(&p) {
                    left.new.insert(p);
                }
                left.next.insert(eta);
                let mut right = node;
                if !right.old.contains(&q) {
                    right.new.insert(q);
                }
                self.expand(left);
                self.expand(right);
            }
            Core::Release(p, q) => {
                // p R q  ==  (p && q) || (q && X(p R q))
                node.old.insert(eta);
                let mut left = node.clone();
                if !left.old.contains(&q) {
                    left.new.insert(q);
                }
                left.next.insert(eta);
                let mut right = node;
                for sub in [p, q] {
                    if !right.old.contains(&sub) {
                        right.new.insert(sub);
                    }
                }
                self.expand(left);
                self.expand(right);
            }
        }
    }
}

/// Translates an LTL formula into an equivalent Büchi automaton.
///
/// The formula is first rewritten to negation normal form; the automaton
/// accepts exactly the infinite words (sequences of truth assignments over
/// the formula's propositions) that satisfy the formula.
///
/// Note that a model checker verifies `phi` by translating `! phi` (see
/// [`crate::Ltl::negated`]) and searching the product for accepting cycles.
///
/// # Example
///
/// ```
/// use pnp_ltl::{parse, translate};
/// let automaton = translate(&parse("[] <> tick")?);
/// assert!(automaton.state_count() >= 2);
/// # Ok::<(), pnp_ltl::ParseError>(())
/// ```
pub fn translate(formula: &Ltl) -> Buchi {
    let nnf = formula.nnf();
    let mut table = FormulaTable::new();
    let root = table.intern_ltl(&nnf);

    let mut tableau = Tableau {
        table,
        nodes: Vec::new(),
    };
    let initial = Node {
        incoming: BTreeSet::from([INIT]),
        new: BTreeSet::from([root]),
        old: BTreeSet::new(),
        next: BTreeSet::new(),
    };
    tableau.expand(initial);

    // Collect the U-subformulas that define the generalized acceptance sets.
    let until_ids: Vec<u32> = tableau
        .table
        .formulas
        .iter()
        .enumerate()
        .filter_map(|(id, core)| matches!(core, Core::Until(..)).then_some(id as u32))
        .collect();

    // Node labels: the literals in Old.
    let labels: Vec<Vec<Literal>> = tableau
        .nodes
        .iter()
        .map(|node| {
            let mut literals: Vec<Literal> = node
                .old
                .iter()
                .filter_map(|&id| match tableau.table.get(id) {
                    Core::Pos(name) => Some(Literal {
                        prop: name.clone(),
                        positive: true,
                    }),
                    Core::Neg(name) => Some(Literal {
                        prop: name.clone(),
                        positive: false,
                    }),
                    _ => None,
                })
                .collect();
            literals.sort();
            literals
        })
        .collect();

    // Membership of node n in generalized acceptance set j:
    // (p U q) not in Old(n), or q in Old(n).
    let in_acceptance_set = |node: &Node, j: usize| -> bool {
        let until = until_ids[j];
        if !node.old.contains(&until) {
            return true;
        }
        match tableau.table.get(until) {
            Core::Until(_, q) => node.old.contains(q),
            _ => unreachable!(),
        }
    };

    // Degeneralize with the counter construction. BA states are (node,
    // counter) pairs plus a fresh initial state 0; counter k (== number of
    // acceptance sets) marks accepting states and resets to 0.
    let k = until_ids.len();
    let n_nodes = tableau.nodes.len();
    let next_counter = |counter: usize, target_node: usize| -> usize {
        let mut c = if counter == k { 0 } else { counter };
        while c < k && in_acceptance_set(&tableau.nodes[target_node], c) {
            c += 1;
        }
        c
    };

    // Lazily discover reachable (node, counter) pairs.
    let mut state_index: HashMap<(usize, usize), usize> = HashMap::new();
    let mut order: Vec<(usize, usize)> = Vec::new();
    let intern_state = |pair: (usize, usize),
                        order: &mut Vec<(usize, usize)>,
                        state_index: &mut HashMap<(usize, usize), usize>|
     -> usize {
        *state_index.entry(pair).or_insert_with(|| {
            order.push(pair);
            // State 0 is the fresh initial state, so product states start at 1.
            order.len()
        })
    };

    let mut transitions: Vec<Vec<BuchiTransition>> = vec![Vec::new()];
    let mut worklist: Vec<usize> = Vec::new();

    // Initial transitions: into every node whose incoming set contains INIT.
    for (node_id, node) in tableau.nodes.iter().enumerate() {
        if node.incoming.contains(&INIT) {
            let counter = next_counter(0, node_id);
            let target = intern_state((node_id, counter), &mut order, &mut state_index);
            if target == transitions.len() {
                transitions.push(Vec::new());
                worklist.push(target);
            }
            transitions[0].push(BuchiTransition {
                label: labels[node_id].clone(),
                target,
            });
        }
    }

    // Successor transitions: node m follows node n iff n is in m.incoming.
    while let Some(state) = worklist.pop() {
        let (node_id, counter) = order[state - 1];
        #[allow(clippy::needless_range_loop)] // index drives three parallel tables
        for target_node in 0..n_nodes {
            if !tableau.nodes[target_node].incoming.contains(&node_id) {
                continue;
            }
            let target_counter = next_counter(counter, target_node);
            let target = intern_state((target_node, target_counter), &mut order, &mut state_index);
            if target == transitions.len() {
                transitions.push(Vec::new());
                worklist.push(target);
            }
            transitions[state].push(BuchiTransition {
                label: labels[target_node].clone(),
                target,
            });
        }
    }

    let mut accepting = vec![false; transitions.len()];
    for (pair, &state) in &state_index {
        // With no acceptance sets (k == 0) every state is accepting.
        accepting[state] = pair.1 == k;
    }
    if k == 0 {
        accepting[0] = true;
    }

    let mut automaton = Buchi {
        transitions,
        accepting,
    };
    automaton.prune();
    automaton
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use std::collections::HashSet;

    /// A truth assignment over proposition names.
    type Letter = Vec<(&'static str, bool)>;

    fn holds(letter: &Letter, prop: &str) -> bool {
        letter
            .iter()
            .find(|(name, _)| *name == prop)
            .map(|&(_, v)| v)
            .unwrap_or(false)
    }

    /// Checks whether the automaton accepts the ultimately-periodic word
    /// `prefix . cycle^omega` by searching the (automaton x position) product
    /// for a reachable accepting cycle.
    fn accepts(buchi: &Buchi, prefix: &[Letter], cycle: &[Letter]) -> bool {
        assert!(!cycle.is_empty(), "cycle must be nonempty");
        let total = prefix.len() + cycle.len();
        let letter = |pos: usize| -> &Letter {
            if pos < prefix.len() {
                &prefix[pos]
            } else {
                &cycle[pos - prefix.len()]
            }
        };
        let next_pos = |pos: usize| -> usize {
            if pos + 1 < total {
                pos + 1
            } else {
                prefix.len()
            }
        };

        // Product node: (buchi state, index of next letter to read).
        let successors = |(b, pos): (usize, usize)| -> Vec<(usize, usize)> {
            let l = letter(pos);
            buchi
                .transitions_from(b)
                .iter()
                .filter(|t| t.enabled(&|p| holds(l, p)))
                .map(|t| (t.target, next_pos(pos)))
                .collect()
        };

        // Reachable product nodes from (initial, 0).
        let mut reachable = HashSet::new();
        let mut stack = vec![(buchi.initial(), 0usize)];
        while let Some(node) = stack.pop() {
            if reachable.insert(node) {
                stack.extend(successors(node));
            }
        }

        // Accepting product nodes that lie on a cycle (can reach themselves).
        for &node in &reachable {
            if !buchi.is_accepting(node.0) {
                continue;
            }
            let mut seen = HashSet::new();
            let mut stack = successors(node);
            while let Some(m) = stack.pop() {
                if m == node {
                    return true;
                }
                if seen.insert(m) {
                    stack.extend(successors(m));
                }
            }
        }
        false
    }

    fn automaton(text: &str) -> Buchi {
        translate(&parse(text).unwrap())
    }

    const P: &str = "p";
    const Q: &str = "q";

    fn l(pairs: &[(&'static str, bool)]) -> Letter {
        pairs.to_vec()
    }

    #[test]
    fn true_accepts_everything() {
        let b = automaton("true");
        assert!(accepts(&b, &[], &[l(&[])]));
        assert!(accepts(&b, &[l(&[(P, true)])], &[l(&[(P, false)])]));
    }

    #[test]
    fn false_accepts_nothing() {
        let b = automaton("false");
        assert!(!accepts(&b, &[], &[l(&[])]));
        assert!(!accepts(&b, &[l(&[(P, true)])], &[l(&[(P, true)])]));
    }

    #[test]
    fn proposition_checks_first_letter() {
        let b = automaton("p");
        assert!(accepts(&b, &[l(&[(P, true)])], &[l(&[])]));
        assert!(!accepts(&b, &[l(&[(P, false)])], &[l(&[])]));
    }

    #[test]
    fn next_checks_second_letter() {
        let b = automaton("X p");
        assert!(accepts(&b, &[l(&[]), l(&[(P, true)])], &[l(&[])]));
        assert!(!accepts(
            &b,
            &[l(&[(P, true)]), l(&[(P, false)])],
            &[l(&[])]
        ));
    }

    #[test]
    fn globally_requires_p_forever() {
        let b = automaton("[] p");
        assert!(accepts(&b, &[], &[l(&[(P, true)])]));
        assert!(!accepts(&b, &[l(&[(P, true)])], &[l(&[(P, false)])]));
        assert!(!accepts(&b, &[l(&[(P, false)])], &[l(&[(P, true)])]));
    }

    #[test]
    fn eventually_requires_p_once() {
        let b = automaton("<> p");
        assert!(accepts(&b, &[l(&[]), l(&[]), l(&[(P, true)])], &[l(&[])]));
        assert!(accepts(&b, &[], &[l(&[(P, true)]), l(&[])]));
        assert!(!accepts(&b, &[], &[l(&[])]));
    }

    #[test]
    fn until_requires_q_and_p_before() {
        let b = automaton("p U q");
        assert!(accepts(
            &b,
            &[l(&[(P, true)]), l(&[(P, true), (Q, true)])],
            &[l(&[])]
        ));
        // q immediately: p need not hold at all.
        assert!(accepts(&b, &[l(&[(Q, true)])], &[l(&[])]));
        // p forever without q: rejected.
        assert!(!accepts(&b, &[], &[l(&[(P, true)])]));
        // p gap before q: rejected.
        assert!(!accepts(
            &b,
            &[l(&[(P, true)]), l(&[]), l(&[(Q, true)])],
            &[l(&[])]
        ));
    }

    #[test]
    fn release_allows_q_forever() {
        let b = automaton("p R q");
        assert!(accepts(&b, &[], &[l(&[(Q, true)])]));
        // q until p&&q, then free.
        assert!(accepts(
            &b,
            &[l(&[(Q, true)]), l(&[(P, true), (Q, true)])],
            &[l(&[])]
        ));
        // q fails before p: rejected.
        assert!(!accepts(&b, &[l(&[(Q, true)]), l(&[])], &[l(&[(Q, true)])]));
    }

    #[test]
    fn infinitely_often_needs_recurring_p() {
        let b = automaton("[] <> p");
        assert!(accepts(&b, &[], &[l(&[(P, true)]), l(&[])]));
        assert!(accepts(&b, &[l(&[])], &[l(&[(P, true)])]));
        assert!(!accepts(&b, &[l(&[(P, true)])], &[l(&[])]));
    }

    #[test]
    fn eventually_always_needs_stable_p() {
        let b = automaton("<> [] p");
        assert!(accepts(&b, &[l(&[])], &[l(&[(P, true)])]));
        assert!(!accepts(&b, &[], &[l(&[(P, true)]), l(&[])]));
    }

    #[test]
    fn response_property() {
        let b = automaton("[] (p -> <> q)");
        // Every p followed by q eventually.
        assert!(accepts(&b, &[], &[l(&[(P, true)]), l(&[(Q, true)])]));
        // No p at all: vacuously true.
        assert!(accepts(&b, &[], &[l(&[])]));
        // p once, q never: rejected.
        assert!(!accepts(&b, &[l(&[(P, true)])], &[l(&[])]));
    }

    #[test]
    fn negated_response_finds_unanswered_request() {
        let b = automaton("!([] (p -> <> q))");
        assert!(accepts(&b, &[l(&[(P, true)])], &[l(&[])]));
        assert!(!accepts(&b, &[], &[l(&[(P, true)]), l(&[(Q, true)])]));
    }

    #[test]
    fn conflicting_literals_are_pruned() {
        let b = automaton("p && !p");
        assert!(!accepts(&b, &[l(&[(P, true)])], &[l(&[])]));
        assert!(!accepts(&b, &[l(&[(P, false)])], &[l(&[])]));
    }

    #[test]
    fn weak_until_allows_p_forever() {
        let b = automaton("p W q");
        assert!(accepts(&b, &[], &[l(&[(P, true)])]));
        assert!(accepts(&b, &[l(&[(Q, true)])], &[l(&[])]));
        assert!(!accepts(&b, &[l(&[])], &[l(&[])]));
    }

    #[test]
    fn dot_output_mentions_all_states() {
        let b = automaton("[] <> p");
        let dot = b.to_dot();
        for state in 0..b.state_count() {
            assert!(dot.contains(&format!("s{state} [")));
        }
    }

    #[test]
    fn pruning_removes_dead_transitions() {
        // `false` admits no run at all: every transition is pruned.
        assert_eq!(automaton("false").transition_count(), 0);
        // A contradiction likewise.
        assert_eq!(automaton("p && !p").transition_count(), 0);
        // `[] p` keeps exactly the p self-loop structure (no useless junk).
        let b = automaton("[] p");
        for state in 0..b.state_count() {
            for t in b.transitions_from(state) {
                assert!(!t.label.is_empty(), "[] p has no unconstrained moves");
            }
        }
    }

    #[test]
    fn automaton_sizes_are_reasonable() {
        // GPVW should produce small automata for these staples.
        assert!(automaton("[] p").state_count() <= 4);
        assert!(automaton("<> p").state_count() <= 5);
        assert!(automaton("p U q").state_count() <= 6);
        assert!(automaton("[] (p -> <> q)").state_count() <= 10);
    }
}
