//! Negation normal form rewriting.
//!
//! The tableau construction in [`crate::buchi`] operates on a core fragment
//! of LTL: `true`, `false`, literals, `&&`, `||`, `X`, `U`, and `R`, with
//! negation applied only to atomic propositions. [`Ltl::nnf`] rewrites an
//! arbitrary formula into that fragment using the standard dualities:
//!
//! ```text
//! !(p && q)  =  !p || !q          !(p U q)  =  !p R !q
//! !(p || q)  =  !p && !q          !(p R q)  =  !p U !q
//! !X p       =  X !p              !<> p     =  [] !p
//! p -> q     =  !p || q           p W q     =  q R (p || q)
//! p <-> q    =  (p && q) || (!p && !q)
//! <> p       =  true U p          [] p      =  false R p
//! ```

use crate::Ltl;

impl Ltl {
    /// Rewrites the formula into negation normal form.
    ///
    /// The result contains only `true`, `false`, propositions, negated
    /// propositions, `&&`, `||`, `X`, `U`, and `R`, and is logically
    /// equivalent to `self`.
    ///
    /// ```
    /// use pnp_ltl::parse;
    /// let f = parse("!(p U q)").unwrap();
    /// assert_eq!(f.nnf().to_string(), "! p R ! q");
    /// ```
    pub fn nnf(&self) -> Ltl {
        self.to_nnf(false)
    }

    fn to_nnf(&self, negate: bool) -> Ltl {
        match self {
            Ltl::True => {
                if negate {
                    Ltl::False
                } else {
                    Ltl::True
                }
            }
            Ltl::False => {
                if negate {
                    Ltl::True
                } else {
                    Ltl::False
                }
            }
            Ltl::Prop(name) => {
                let p = Ltl::Prop(name.clone());
                if negate {
                    Ltl::not(p)
                } else {
                    p
                }
            }
            Ltl::Not(p) => p.to_nnf(!negate),
            Ltl::And(p, q) => {
                if negate {
                    Ltl::or(p.to_nnf(true), q.to_nnf(true))
                } else {
                    Ltl::and(p.to_nnf(false), q.to_nnf(false))
                }
            }
            Ltl::Or(p, q) => {
                if negate {
                    Ltl::and(p.to_nnf(true), q.to_nnf(true))
                } else {
                    Ltl::or(p.to_nnf(false), q.to_nnf(false))
                }
            }
            Ltl::Implies(p, q) => {
                // p -> q  ==  !p || q
                if negate {
                    // !(p -> q)  ==  p && !q
                    Ltl::and(p.to_nnf(false), q.to_nnf(true))
                } else {
                    Ltl::or(p.to_nnf(true), q.to_nnf(false))
                }
            }
            Ltl::Iff(p, q) => {
                // p <-> q  ==  (p && q) || (!p && !q)
                // !(p <-> q) ==  (p && !q) || (!p && q)
                if negate {
                    Ltl::or(
                        Ltl::and(p.to_nnf(false), q.to_nnf(true)),
                        Ltl::and(p.to_nnf(true), q.to_nnf(false)),
                    )
                } else {
                    Ltl::or(
                        Ltl::and(p.to_nnf(false), q.to_nnf(false)),
                        Ltl::and(p.to_nnf(true), q.to_nnf(true)),
                    )
                }
            }
            Ltl::Next(p) => Ltl::next(p.to_nnf(negate)),
            Ltl::Until(p, q) => {
                if negate {
                    Ltl::release(p.to_nnf(true), q.to_nnf(true))
                } else {
                    Ltl::until(p.to_nnf(false), q.to_nnf(false))
                }
            }
            Ltl::Release(p, q) => {
                if negate {
                    Ltl::until(p.to_nnf(true), q.to_nnf(true))
                } else {
                    Ltl::release(p.to_nnf(false), q.to_nnf(false))
                }
            }
            Ltl::WeakUntil(p, q) => {
                // p W q  ==  q R (p || q)
                let rewritten = Ltl::release(
                    q.as_ref().clone(),
                    Ltl::or(p.as_ref().clone(), q.as_ref().clone()),
                );
                rewritten.to_nnf(negate)
            }
            Ltl::Eventually(p) => {
                if negate {
                    // !<> p == [] !p == false R !p
                    Ltl::release(Ltl::False, p.to_nnf(true))
                } else {
                    Ltl::until(Ltl::True, p.to_nnf(false))
                }
            }
            Ltl::Globally(p) => {
                if negate {
                    // ![] p == <> !p == true U !p
                    Ltl::until(Ltl::True, p.to_nnf(true))
                } else {
                    Ltl::release(Ltl::False, p.to_nnf(false))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;
    use crate::Ltl;

    fn nnf_of(text: &str) -> String {
        parse(text).unwrap().nnf().to_string()
    }

    /// Asserts the result is in the NNF core fragment.
    fn assert_core(f: &Ltl) {
        match f {
            Ltl::True | Ltl::False | Ltl::Prop(_) => {}
            Ltl::Not(inner) => {
                assert!(
                    matches!(inner.as_ref(), Ltl::Prop(_)),
                    "negation of non-proposition in NNF: {f}"
                );
            }
            Ltl::And(p, q) | Ltl::Or(p, q) | Ltl::Until(p, q) | Ltl::Release(p, q) => {
                assert_core(p);
                assert_core(q);
            }
            Ltl::Next(p) => assert_core(p),
            other => panic!("non-core operator survived NNF: {other}"),
        }
    }

    #[test]
    fn negated_until_becomes_release() {
        assert_eq!(nnf_of("!(p U q)"), "! p R ! q");
    }

    #[test]
    fn negated_release_becomes_until() {
        assert_eq!(nnf_of("!(p R q)"), "! p U ! q");
    }

    #[test]
    fn globally_becomes_false_release() {
        assert_eq!(nnf_of("[] p"), "false R p");
    }

    #[test]
    fn eventually_becomes_true_until() {
        assert_eq!(nnf_of("<> p"), "true U p");
    }

    #[test]
    fn negated_globally_becomes_eventually_not() {
        assert_eq!(nnf_of("![] p"), "true U ! p");
    }

    #[test]
    fn implication_is_rewritten() {
        assert_eq!(nnf_of("p -> q"), "! p || q");
        assert_eq!(nnf_of("!(p -> q)"), "p && ! q");
    }

    #[test]
    fn double_negation_cancels() {
        assert_eq!(nnf_of("!!p"), "p");
        assert_eq!(nnf_of("!!!p"), "! p");
    }

    #[test]
    fn next_commutes_with_negation() {
        assert_eq!(nnf_of("!X p"), "X (! p)");
    }

    #[test]
    fn weak_until_rewrites_to_release() {
        assert_eq!(nnf_of("p W q"), "q R (p || q)");
    }

    #[test]
    fn constants_flip_under_negation() {
        assert_eq!(nnf_of("!true"), "false");
        assert_eq!(nnf_of("!false"), "true");
    }

    #[test]
    fn nnf_output_is_in_core_fragment() {
        for text in [
            "[] (req -> <> ack)",
            "!( (a <-> b) W (c -> d) )",
            "!( [] <> p -> <> [] q )",
            "((a U b) R !(c && d)) <-> X e",
        ] {
            let f = parse(text).unwrap().nnf();
            assert_core(&f);
        }
    }
}
