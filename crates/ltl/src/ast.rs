//! Abstract syntax tree for linear temporal logic formulas.

use std::fmt;
use std::sync::Arc;

/// A linear temporal logic formula.
///
/// Atomic propositions are identified by name; the model-checking kernel
/// resolves names to state predicates when a property is checked. Formulas
/// are immutable and cheaply cloneable (subterms are reference-counted).
///
/// # Example
///
/// ```
/// use pnp_ltl::Ltl;
///
/// let safety = Ltl::globally(Ltl::prop("mutex").implies(Ltl::not(Ltl::prop("crash"))));
/// assert_eq!(safety.to_string(), "[] (mutex -> ! crash)");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Ltl {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// An atomic proposition, referenced by name.
    Prop(Arc<str>),
    /// Logical negation.
    Not(Arc<Ltl>),
    /// Logical conjunction.
    And(Arc<Ltl>, Arc<Ltl>),
    /// Logical disjunction.
    Or(Arc<Ltl>, Arc<Ltl>),
    /// Implication (sugar; rewritten away by [`Ltl::nnf`]).
    Implies(Arc<Ltl>, Arc<Ltl>),
    /// Bi-implication (sugar; rewritten away by [`Ltl::nnf`]).
    Iff(Arc<Ltl>, Arc<Ltl>),
    /// The *next* operator `X p`.
    Next(Arc<Ltl>),
    /// The *until* operator `p U q`.
    Until(Arc<Ltl>, Arc<Ltl>),
    /// The *release* operator `p R q` (dual of until).
    Release(Arc<Ltl>, Arc<Ltl>),
    /// The *weak until* operator `p W q` (sugar; rewritten by [`Ltl::nnf`]).
    WeakUntil(Arc<Ltl>, Arc<Ltl>),
    /// The *eventually* operator `<> p` (sugar for `true U p`).
    Eventually(Arc<Ltl>),
    /// The *always* operator `[] p` (sugar for `false R p`).
    Globally(Arc<Ltl>),
}

impl Ltl {
    /// Creates an atomic proposition with the given name.
    pub fn prop(name: impl AsRef<str>) -> Ltl {
        Ltl::Prop(Arc::from(name.as_ref()))
    }

    /// Creates the negation `! p` (also available as the `!` operator).
    #[allow(clippy::should_implement_trait)] // `std::ops::Not` is implemented too
    pub fn not(p: Ltl) -> Ltl {
        Ltl::Not(Arc::new(p))
    }

    /// Creates the conjunction `p && q`.
    pub fn and(p: Ltl, q: Ltl) -> Ltl {
        Ltl::And(Arc::new(p), Arc::new(q))
    }

    /// Creates the disjunction `p || q`.
    pub fn or(p: Ltl, q: Ltl) -> Ltl {
        Ltl::Or(Arc::new(p), Arc::new(q))
    }

    /// Creates the implication `self -> q`.
    pub fn implies(self, q: Ltl) -> Ltl {
        Ltl::Implies(Arc::new(self), Arc::new(q))
    }

    /// Creates the bi-implication `self <-> q`.
    pub fn iff(self, q: Ltl) -> Ltl {
        Ltl::Iff(Arc::new(self), Arc::new(q))
    }

    /// Creates `X p`: `p` holds in the next state.
    pub fn next(p: Ltl) -> Ltl {
        Ltl::Next(Arc::new(p))
    }

    /// Creates `p U q`: `q` eventually holds and `p` holds until then.
    pub fn until(p: Ltl, q: Ltl) -> Ltl {
        Ltl::Until(Arc::new(p), Arc::new(q))
    }

    /// Creates `p R q`: `q` holds up to and including the first state where
    /// `p` holds (or forever, if `p` never holds).
    pub fn release(p: Ltl, q: Ltl) -> Ltl {
        Ltl::Release(Arc::new(p), Arc::new(q))
    }

    /// Creates `p W q`: like `p U q` but `q` is not required to ever hold.
    pub fn weak_until(p: Ltl, q: Ltl) -> Ltl {
        Ltl::WeakUntil(Arc::new(p), Arc::new(q))
    }

    /// Creates `<> p`: `p` eventually holds.
    pub fn eventually(p: Ltl) -> Ltl {
        Ltl::Eventually(Arc::new(p))
    }

    /// Creates `[] p`: `p` holds in every state.
    pub fn globally(p: Ltl) -> Ltl {
        Ltl::Globally(Arc::new(p))
    }

    /// Returns the negation of this formula.
    ///
    /// Model checking verifies a property `phi` by searching for an accepting
    /// run of the automaton for `! phi`, so this is typically the first step
    /// of a verification query.
    pub fn negated(&self) -> Ltl {
        Ltl::Not(Arc::new(self.clone()))
    }

    /// Collects the names of all atomic propositions in the formula, in
    /// first-occurrence order and without duplicates.
    ///
    /// ```
    /// use pnp_ltl::parse;
    /// let f = parse("[] (p -> <> (q && p))").unwrap();
    /// assert_eq!(f.propositions(), ["p", "q"]);
    /// ```
    pub fn propositions(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_props(&mut out);
        out
    }

    fn collect_props(&self, out: &mut Vec<String>) {
        match self {
            Ltl::True | Ltl::False => {}
            Ltl::Prop(name) => {
                if !out.iter().any(|n| n.as_str() == name.as_ref()) {
                    out.push(name.to_string());
                }
            }
            Ltl::Not(p) | Ltl::Next(p) | Ltl::Eventually(p) | Ltl::Globally(p) => {
                p.collect_props(out)
            }
            Ltl::And(p, q)
            | Ltl::Or(p, q)
            | Ltl::Implies(p, q)
            | Ltl::Iff(p, q)
            | Ltl::Until(p, q)
            | Ltl::Release(p, q)
            | Ltl::WeakUntil(p, q) => {
                p.collect_props(out);
                q.collect_props(out);
            }
        }
    }

    /// Returns the number of AST nodes in the formula (a rough size measure
    /// used by benchmarks and tests).
    pub fn size(&self) -> usize {
        match self {
            Ltl::True | Ltl::False | Ltl::Prop(_) => 1,
            Ltl::Not(p) | Ltl::Next(p) | Ltl::Eventually(p) | Ltl::Globally(p) => 1 + p.size(),
            Ltl::And(p, q)
            | Ltl::Or(p, q)
            | Ltl::Implies(p, q)
            | Ltl::Iff(p, q)
            | Ltl::Until(p, q)
            | Ltl::Release(p, q)
            | Ltl::WeakUntil(p, q) => 1 + p.size() + q.size(),
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Ltl::True | Ltl::False | Ltl::Prop(_) => 6,
            Ltl::Not(_) | Ltl::Next(_) | Ltl::Eventually(_) | Ltl::Globally(_) => 5,
            Ltl::Until(..) | Ltl::Release(..) | Ltl::WeakUntil(..) => 4,
            Ltl::And(..) => 3,
            Ltl::Or(..) => 2,
            Ltl::Implies(..) | Ltl::Iff(..) => 1,
        }
    }

    fn fmt_child(&self, child: &Ltl, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Parenthesize when the child binds looser than (or, for binary
        // operators, as loose as) the parent; the printed form re-parses to
        // the same AST, which the proptest round-trip test relies on.
        if child.precedence() <= self.precedence()
            && !matches!(child, Ltl::True | Ltl::False | Ltl::Prop(_))
        {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

impl std::ops::Not for Ltl {
    type Output = Ltl;

    fn not(self) -> Ltl {
        Ltl::Not(Arc::new(self))
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::True => write!(f, "true"),
            Ltl::False => write!(f, "false"),
            Ltl::Prop(name) => write!(f, "{name}"),
            Ltl::Not(p) => {
                write!(f, "! ")?;
                self.fmt_child(p, f)
            }
            Ltl::Next(p) => {
                write!(f, "X ")?;
                self.fmt_child(p, f)
            }
            Ltl::Eventually(p) => {
                write!(f, "<> ")?;
                self.fmt_child(p, f)
            }
            Ltl::Globally(p) => {
                write!(f, "[] ")?;
                self.fmt_child(p, f)
            }
            Ltl::And(p, q) => {
                self.fmt_child(p, f)?;
                write!(f, " && ")?;
                self.fmt_child(q, f)
            }
            Ltl::Or(p, q) => {
                self.fmt_child(p, f)?;
                write!(f, " || ")?;
                self.fmt_child(q, f)
            }
            Ltl::Implies(p, q) => {
                self.fmt_child(p, f)?;
                write!(f, " -> ")?;
                self.fmt_child(q, f)
            }
            Ltl::Iff(p, q) => {
                self.fmt_child(p, f)?;
                write!(f, " <-> ")?;
                self.fmt_child(q, f)
            }
            Ltl::Until(p, q) => {
                self.fmt_child(p, f)?;
                write!(f, " U ")?;
                self.fmt_child(q, f)
            }
            Ltl::Release(p, q) => {
                self.fmt_child(p, f)?;
                write!(f, " R ")?;
                self.fmt_child(q, f)
            }
            Ltl::WeakUntil(p, q) => {
                self.fmt_child(p, f)?;
                write!(f, " W ")?;
                self.fmt_child(q, f)
            }
        }
    }
}

impl fmt::Debug for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ltl({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_spin_syntax() {
        let f = Ltl::globally(Ltl::prop("req").implies(Ltl::eventually(Ltl::prop("ack"))));
        assert_eq!(f.to_string(), "[] (req -> <> ack)");
    }

    #[test]
    fn display_parenthesizes_mixed_binary_operators() {
        let f = Ltl::or(Ltl::and(Ltl::prop("a"), Ltl::prop("b")), Ltl::prop("c"));
        assert_eq!(f.to_string(), "a && b || c");
        let g = Ltl::and(Ltl::prop("a"), Ltl::or(Ltl::prop("b"), Ltl::prop("c")));
        assert_eq!(g.to_string(), "a && (b || c)");
    }

    #[test]
    fn propositions_deduplicates_in_order() {
        let f = Ltl::until(Ltl::prop("b"), Ltl::and(Ltl::prop("a"), Ltl::prop("b")));
        assert_eq!(f.propositions(), ["b", "a"]);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Ltl::True.size(), 1);
        let f = Ltl::globally(Ltl::prop("p").implies(Ltl::prop("q")));
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn negated_wraps_in_not() {
        let f = Ltl::prop("p");
        assert_eq!(f.negated(), Ltl::not(Ltl::prop("p")));
    }

    #[test]
    fn nested_unary_operators_display() {
        let f = Ltl::globally(Ltl::eventually(Ltl::prop("p")));
        assert_eq!(f.to_string(), "[] (<> p)");
    }
}
