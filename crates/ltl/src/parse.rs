//! Parser for a SPIN-like LTL concrete syntax.
//!
//! Grammar (loosest to tightest binding):
//!
//! ```text
//! iff     := implies ( "<->" implies )*
//! implies := or ( "->" or )*            (right associative)
//! or      := and ( "||" and )*
//! and     := until ( "&&" until )*
//! until   := unary ( ("U" | "R" | "W") unary )*   (right associative)
//! unary   := ("!" | "X" | "<>" | "[]" | "F" | "G") unary | atom
//! atom    := "true" | "false" | ident | "(" iff ")"
//! ```
//!
//! `F`/`G` are accepted as synonyms for `<>`/`[]`. Identifiers are
//! `[A-Za-z_][A-Za-z0-9_]*` minus the reserved operator letters.

use std::fmt;

use crate::Ltl;

/// An error produced while parsing an LTL formula.
///
/// The offset is a byte position into the input string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    offset: usize,
}

impl ParseError {
    fn new(message: impl Into<String>, offset: usize) -> ParseError {
        ParseError {
            message: message.into(),
            offset,
        }
    }

    /// The byte offset in the input at which the error was detected.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    True,
    False,
    Not,
    And,
    Or,
    Implies,
    Iff,
    Next,
    Until,
    Release,
    WeakUntil,
    Eventually,
    Globally,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push((Token::LParen, i));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, i));
                i += 1;
            }
            '!' => {
                tokens.push((Token::Not, i));
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push((Token::And, i));
                    i += 2;
                } else {
                    return Err(ParseError::new("expected '&&'", i));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push((Token::Or, i));
                    i += 2;
                } else {
                    return Err(ParseError::new("expected '||'", i));
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push((Token::Implies, i));
                    i += 2;
                } else {
                    return Err(ParseError::new("expected '->'", i));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'>') => {
                    tokens.push((Token::Eventually, i));
                    i += 2;
                }
                Some(&b'-') if bytes.get(i + 2) == Some(&b'>') => {
                    tokens.push((Token::Iff, i));
                    i += 3;
                }
                _ => return Err(ParseError::new("expected '<>' or '<->'", i)),
            },
            '[' => {
                if bytes.get(i + 1) == Some(&b']') {
                    tokens.push((Token::Globally, i));
                    i += 2;
                } else {
                    return Err(ParseError::new("expected '[]'", i));
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let token = match word {
                    "true" => Token::True,
                    "false" => Token::False,
                    "X" => Token::Next,
                    "U" => Token::Until,
                    "R" | "V" => Token::Release,
                    "W" => Token::WeakUntil,
                    "F" => Token::Eventually,
                    "G" => Token::Globally,
                    _ => Token::Ident(word.to_string()),
                };
                tokens.push((token, start));
            }
            _ => return Err(ParseError::new(format!("unexpected character '{c}'"), i)),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(_, o)| o)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, token: Token) -> Result<(), ParseError> {
        if self.peek() == Some(&token) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected {token:?}"),
                self.offset(),
            ))
        }
    }

    fn parse_iff(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.parse_implies()?;
        while self.peek() == Some(&Token::Iff) {
            self.bump();
            let rhs = self.parse_implies()?;
            lhs = lhs.iff(rhs);
        }
        Ok(lhs)
    }

    fn parse_implies(&mut self) -> Result<Ltl, ParseError> {
        let lhs = self.parse_or()?;
        if self.peek() == Some(&Token::Implies) {
            self.bump();
            // Right associative: a -> b -> c parses as a -> (b -> c).
            let rhs = self.parse_implies()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some(&Token::Or) {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Ltl::or(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Ltl, ParseError> {
        let mut lhs = self.parse_until()?;
        while self.peek() == Some(&Token::And) {
            self.bump();
            let rhs = self.parse_until()?;
            lhs = Ltl::and(lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_until(&mut self) -> Result<Ltl, ParseError> {
        let lhs = self.parse_unary()?;
        match self.peek() {
            Some(&Token::Until) => {
                self.bump();
                let rhs = self.parse_until()?;
                Ok(Ltl::until(lhs, rhs))
            }
            Some(&Token::Release) => {
                self.bump();
                let rhs = self.parse_until()?;
                Ok(Ltl::release(lhs, rhs))
            }
            Some(&Token::WeakUntil) => {
                self.bump();
                let rhs = self.parse_until()?;
                Ok(Ltl::weak_until(lhs, rhs))
            }
            _ => Ok(lhs),
        }
    }

    fn parse_unary(&mut self) -> Result<Ltl, ParseError> {
        match self.peek() {
            Some(&Token::Not) => {
                self.bump();
                Ok(Ltl::not(self.parse_unary()?))
            }
            Some(&Token::Next) => {
                self.bump();
                Ok(Ltl::next(self.parse_unary()?))
            }
            Some(&Token::Eventually) => {
                self.bump();
                Ok(Ltl::eventually(self.parse_unary()?))
            }
            Some(&Token::Globally) => {
                self.bump();
                Ok(Ltl::globally(self.parse_unary()?))
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Ltl, ParseError> {
        let offset = self.offset();
        match self.bump() {
            Some(Token::True) => Ok(Ltl::True),
            Some(Token::False) => Ok(Ltl::False),
            Some(Token::Ident(name)) => Ok(Ltl::prop(name)),
            Some(Token::LParen) => {
                let inner = self.parse_iff()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            other => Err(ParseError::new(
                format!("expected proposition, 'true', 'false', or '(', found {other:?}"),
                offset,
            )),
        }
    }
}

/// Parses an LTL formula from its SPIN-like textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset when the input is not a
/// well-formed formula.
///
/// # Example
///
/// ```
/// use pnp_ltl::parse;
/// let f = parse("[] (send -> X (!send U ack))")?;
/// assert_eq!(f.propositions(), ["send", "ack"]);
/// # Ok::<(), pnp_ltl::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Ltl, ParseError> {
    let tokens = lex(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let formula = parser.parse_iff()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError::new(
            "unexpected trailing input",
            parser.offset(),
        ));
    }
    Ok(formula)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms() {
        assert_eq!(parse("true").unwrap(), Ltl::True);
        assert_eq!(parse("false").unwrap(), Ltl::False);
        assert_eq!(parse("hello_1").unwrap(), Ltl::prop("hello_1"));
    }

    #[test]
    fn parses_spin_temporal_operators() {
        assert_eq!(parse("[] p").unwrap(), Ltl::globally(Ltl::prop("p")));
        assert_eq!(parse("<> p").unwrap(), Ltl::eventually(Ltl::prop("p")));
        assert_eq!(parse("X p").unwrap(), Ltl::next(Ltl::prop("p")));
        assert_eq!(parse("G p").unwrap(), Ltl::globally(Ltl::prop("p")));
        assert_eq!(parse("F p").unwrap(), Ltl::eventually(Ltl::prop("p")));
    }

    #[test]
    fn until_is_right_associative() {
        let f = parse("a U b U c").unwrap();
        assert_eq!(
            f,
            Ltl::until(Ltl::prop("a"), Ltl::until(Ltl::prop("b"), Ltl::prop("c")))
        );
    }

    #[test]
    fn implies_is_right_associative() {
        let f = parse("a -> b -> c").unwrap();
        assert_eq!(
            f,
            Ltl::prop("a").implies(Ltl::prop("b").implies(Ltl::prop("c")))
        );
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let f = parse("a || b && c").unwrap();
        assert_eq!(
            f,
            Ltl::or(Ltl::prop("a"), Ltl::and(Ltl::prop("b"), Ltl::prop("c")))
        );
    }

    #[test]
    fn until_binds_tighter_than_and() {
        let f = parse("a U b && c").unwrap();
        assert_eq!(
            f,
            Ltl::and(Ltl::until(Ltl::prop("a"), Ltl::prop("b")), Ltl::prop("c"))
        );
    }

    #[test]
    fn unary_binds_tightest() {
        let f = parse("! a U b").unwrap();
        assert_eq!(f, Ltl::until(Ltl::not(Ltl::prop("a")), Ltl::prop("b")));
    }

    #[test]
    fn parentheses_override_precedence() {
        let f = parse("(a || b) && c").unwrap();
        assert_eq!(
            f,
            Ltl::and(Ltl::or(Ltl::prop("a"), Ltl::prop("b")), Ltl::prop("c"))
        );
    }

    #[test]
    fn v_is_release_synonym() {
        assert_eq!(parse("a V b").unwrap(), parse("a R b").unwrap());
    }

    #[test]
    fn weak_until_parses() {
        assert_eq!(
            parse("a W b").unwrap(),
            Ltl::weak_until(Ltl::prop("a"), Ltl::prop("b"))
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse("a b").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn rejects_unbalanced_parens() {
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
    }

    #[test]
    fn rejects_single_ampersand() {
        let err = parse("a & b").unwrap_err();
        assert_eq!(err.offset(), 2);
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse("").is_err());
        assert!(parse("   ").is_err());
    }

    #[test]
    fn display_round_trips() {
        for text in [
            "[] (req -> <> ack)",
            "(a U b) W (c R d)",
            "! (a && b) || X c",
            "a <-> b <-> c",
            "[] (<> p)",
            "true U (false R p)",
        ] {
            let f = parse(text).unwrap();
            let printed = f.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(f, reparsed, "round trip failed for {text} -> {printed}");
        }
    }
}
