//! Regenerates every experiment table of the PnP reproduction.
//!
//! Run with: `cargo run --release -p pnp-bench --bin experiments`
//!
//! The output of this binary is what `EXPERIMENTS.md` records (state
//! counts, verdicts, trace lengths, throughput, ablations). Timings vary by
//! machine; everything else is deterministic.

use std::time::Instant;

use pnp_bench::{
    bridges, composed_pipe, fault_pipes, fused_pipe, verify_bridge, verify_bridge_threads,
    verify_bridge_with_backend, verify_deadlock_threads,
};
use pnp_bridge::{at_most_n_bridge, crossings_in, exactly_n_bridge, BridgeConfig};
use pnp_core::{ChannelKind, FusedConnectorKind, RecvPortKind, SendPortKind, SystemBuilder};
use pnp_kernel::{Checker, SafetyChecks, SafetyOutcome, VisitedKind};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    e6_e7_e8_bridge_verdicts();
    e2_connector_swap_costs();
    e9_throughput();
    e10_model_reuse();
    e11_fused_vs_composed();
    e14_scaling(full);
    por_ablation();
    fault_costs();
    visited_backends();
    e15_parallel_scaling();
    e16_service_soak();
    e20_liveness_scaling();
}

fn e20_liveness_scaling() {
    use pnp_bridge::{safety_invariant, side_props};
    use pnp_kernel::{Fairness, LtlOutcome, Proposition, SearchConfig};

    println!("== E20: parallel liveness search (CNDFS) — thread scaling ==");
    println!("(host has {} CPU(s) available)", available_cpus());
    println!(
        "{:<38} {:>8} {:>10} {:>10} {:>9} {:>8}",
        "model / formula", "threads", "verdict", "states", "time", "speedup"
    );
    let run = |label: &str,
               system: &pnp_core::System,
               formula: &str,
               props: &[Proposition],
               fairness: Fairness| {
        let parsed = pnp_ltl::parse(formula).expect("formula parses");
        let mut base = None;
        for threads in [1usize, 2, 4, 8] {
            let t0 = Instant::now();
            let report = Checker::with_config(
                system.program(),
                SearchConfig {
                    threads,
                    ..SearchConfig::default()
                },
            )
            .check_ltl_with(&parsed, props, fairness)
            .expect("liveness check runs");
            let elapsed = t0.elapsed();
            let base_time = *base.get_or_insert(elapsed);
            println!(
                "{:<38} {:>8} {:>10} {:>10} {:>8.2?} {:>7.2}x",
                label,
                threads,
                match report.outcome {
                    LtlOutcome::Holds => "LIVE",
                    LtlOutcome::Violated { .. } => "LASSO",
                },
                report.stats.unique_states,
                elapsed,
                base_time.as_secs_f64() / elapsed.as_secs_f64()
            );
        }
    };

    let bridge =
        exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).expect("fixed bridge builds");
    let (_, safe) = safety_invariant(bridge.program());
    let safe_props = vec![Proposition::new("safe", safe)];
    run(
        "bridge [] safe (weak fairness)",
        &bridge,
        "[] safe",
        &safe_props,
        Fairness::Weak,
    );
    run(
        "bridge [] safe (POR, no fairness)",
        &bridge,
        "[] safe",
        &safe_props,
        Fairness::None,
    );
    let starving = exactly_n_bridge(&BridgeConfig::fixed().with_cars(1, 0).with_laps(None))
        .expect("starving bridge builds");
    let props = side_props(starving.program());
    run(
        "bridge [] <> blue_on (starvation)",
        &starving,
        "[] <> blue_on",
        &props,
        Fairness::Weak,
    );
    println!(
        "(LIVE runs color the whole product, so their states column is invariant across \
         thread counts; LASSO runs stop at the first validated cycle, so states reflect \
         whichever worker interleaving won. Every lasso is replay-validated before it \
         is reported; speedup is wall-clock vs the 1-thread row on this host.)"
    );
    println!();
}

fn e16_service_soak() {
    use pnp_serve::job::{Chaos, JobConfig, JobRequest};
    use pnp_serve::supervisor::{ServeConfig, Supervisor};

    println!("== E16: supervised verification service — soak ==");
    const SPEC: &str = "system {\n    global total = 0;\n\
        component a { var c = 0; state w, d; end d;\n\
            from w if c < 8 do c = c + 1 goto w;\n\
            from w if c >= 8 do total = total + 1 goto d; }\n\
        component b { var c = 0; state w, d; end d;\n\
            from w if c < 8 do c = c + 1 goto w;\n\
            from w if c >= 8 do total = total + 1 goto d; }\n\
        component c { var c = 0; state w, d; end d;\n\
            from w if c < 8 do c = c + 1 goto w;\n\
            from w if c >= 8 do total = total + 1 goto d; }\n\
        property totals: invariant total <= 3;\n}";

    let state_dir = std::env::temp_dir().join(format!("pnp-e16-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let config = ServeConfig {
        workers: 3,
        backoff_base: std::time::Duration::from_millis(5),
        backoff_cap: std::time::Duration::from_millis(25),
        checkpoint_every: 64,
        state_dir: state_dir.clone(),
        ..ServeConfig::default()
    };
    let supervisor = Supervisor::start(config).expect("service starts");

    let budgeted = {
        let mut c = JobConfig::default();
        c.config.max_states = 100;
        c
    };
    let profiles: [(&str, JobConfig, usize); 4] = [
        ("clean", JobConfig::default(), 8),
        (
            "panic once, resume",
            JobConfig {
                chaos: Some(Chaos::PanicOnFlush {
                    flush: 3,
                    attempts: 1,
                }),
                ..JobConfig::default()
            },
            8,
        ),
        (
            "panic storm",
            JobConfig {
                chaos: Some(Chaos::PanicOnFlush {
                    flush: 1,
                    attempts: 99,
                }),
                max_attempts: Some(3),
                ..JobConfig::default()
            },
            4,
        ),
        ("over budget", budgeted, 4),
    ];

    println!(
        "{:<22} {:>5} {:>14} {:>10} {:>9}",
        "profile", "jobs", "verdict", "attempts", "time"
    );
    let t0 = Instant::now();
    for (label, job_config, count) in &profiles {
        let p0 = Instant::now();
        let ids: Vec<_> = (0..*count)
            .map(|_| {
                supervisor
                    .submit(JobRequest::new(SPEC.to_string(), *job_config))
                    .expect("soak stays under the admission watermark")
            })
            .collect();
        let mut verdicts = std::collections::BTreeMap::new();
        let mut attempts = 0u32;
        for id in ids {
            let verdict = supervisor
                .wait_done(id, std::time::Duration::from_secs(120))
                .expect("soak job finishes");
            *verdicts.entry(verdict.as_str()).or_insert(0u32) += 1;
            attempts += supervisor.attempts(id).unwrap_or(0);
        }
        let summary: Vec<String> = verdicts.iter().map(|(v, n)| format!("{n} {v}")).collect();
        println!(
            "{:<22} {:>5} {:>14} {:>10} {:>8.2?}",
            label,
            count,
            summary.join(", "),
            attempts,
            p0.elapsed()
        );
    }
    let stats = supervisor.stats();
    println!(
        "service counters: submitted {} | completed {} | retries {} | \
         panics caught {} | workers replaced {} | shed {}",
        stats.submitted,
        stats.completed,
        stats.retries,
        stats.panics_caught,
        stats.workers_replaced,
        stats.shed
    );
    println!(
        "soak wall clock: {:.2?} for {} jobs\n",
        t0.elapsed(),
        profiles.iter().map(|(_, _, n)| n).sum::<usize>()
    );
    supervisor.drain();
    let _ = std::fs::remove_dir_all(&state_dir);
}

fn e15_parallel_scaling() {
    println!("== E15: parallel safety search — thread scaling ==");
    println!("(host has {} CPU(s) available)", available_cpus());
    println!(
        "{:<34} {:>8} {:>10} {:>10} {:>9} {:>8}",
        "model", "threads", "verdict", "states", "time", "speedup"
    );
    let bridge = exactly_n_bridge(&BridgeConfig::fixed().with_cars(2, 1).with_laps(Some(1)))
        .expect("fixed bridge builds");
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let (outcome, stats) = verify_bridge_threads(&bridge, threads);
        let elapsed = t0.elapsed();
        let base_time = *base.get_or_insert(elapsed);
        println!(
            "{:<34} {:>8} {:>10} {:>10} {:>8.2?} {:>7.2}x",
            "bridge fixed (2+1 cars, 1 lap)",
            threads,
            if outcome.is_holds() { "SAFE" } else { "UNSAFE" },
            stats.unique_states,
            elapsed,
            base_time.as_secs_f64() / elapsed.as_secs_f64()
        );
    }
    for (label, system) in fault_pipes(3) {
        let mut base = None;
        for threads in [1usize, 2, 4, 8] {
            let t0 = Instant::now();
            let (outcome, stats) = verify_deadlock_threads(&system, threads);
            let elapsed = t0.elapsed();
            let base_time = *base.get_or_insert(elapsed);
            println!(
                "{:<34} {:>8} {:>10} {:>10} {:>8.2?} {:>7.2}x",
                format!("{label} pipe (3 msgs)"),
                threads,
                if outcome.trace().is_some() {
                    "UNSAFE"
                } else {
                    "SAFE"
                },
                stats.unique_states,
                elapsed,
                base_time.as_secs_f64() / elapsed.as_secs_f64()
            );
        }
    }
    println!(
        "(states are identical at every thread count — the parallel kernel explores the same \
         reduced graph; speedup is wall-clock vs the 1-thread row on this host)"
    );
    println!();
}

/// Number of CPUs the process may actually run on (the scheduler
/// affinity mask bounds any parallel speedup measured above).
fn available_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn visited_backends() {
    println!("== Visited-set backends — memory vs coverage on the fixed bridge ==");
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>14} {:>10}",
        "backend", "verdict", "states", "est. memory", "omission prob", "time"
    );
    let system = exactly_n_bridge(&BridgeConfig::fixed().with_cars(2, 1).with_laps(Some(1)))
        .expect("fixed bridge builds");
    for (label, kind) in [
        ("exact", VisitedKind::Exact),
        ("compact (64-bit)", VisitedKind::Compact),
        ("bitstate (1 MiB)", VisitedKind::bitstate(1 << 20)),
    ] {
        let t0 = Instant::now();
        let (outcome, stats) = verify_bridge_with_backend(&system, kind);
        let (verdict, omission) = match &outcome {
            SafetyOutcome::Holds => ("SAFE", "0".to_string()),
            SafetyOutcome::HoldsApprox {
                omission_probability,
                ..
            } => ("SAFE*", format!("{omission_probability:.2e}")),
            o => (
                "UNSAFE",
                o.trace()
                    .map(|t| format!("trace {}", t.len()))
                    .unwrap_or_default(),
            ),
        };
        println!(
            "{:<22} {:>10} {:>10} {:>12} {:>14} {:>9.2?}",
            label,
            verdict,
            stats.unique_states,
            format!("{} KiB", stats.approx_memory_bytes / 1024),
            omission,
            t0.elapsed()
        );
    }
    println!("(SAFE* = holds modulo hashing: lossy backend, estimated omission probability shown)");
    println!();
}

fn fault_costs() {
    println!("== Fault injection — verification cost under each fault kind ==");
    println!(
        "{:<26} {:>12} {:>10}",
        "pipe variant (2 msgs)", "states", "time"
    );
    for (label, system) in fault_pipes(2) {
        let t0 = Instant::now();
        let stats = Checker::new(system.program()).state_space_size().unwrap();
        println!(
            "{:<26} {:>12} {:>9.2?}",
            label,
            stats.unique_states,
            t0.elapsed()
        );
    }
    println!();
}

fn e6_e7_e8_bridge_verdicts() {
    println!("== E6/E7/E8 — bridge designs: verdicts and state spaces ==");
    println!(
        "{:<22} {:>10} {:>10} {:>14} {:>10}",
        "design", "verdict", "states", "trace (steps)", "time"
    );
    for (name, system) in bridges() {
        let t0 = Instant::now();
        let (outcome, stats) = verify_bridge(&system, true);
        let (verdict, trace_len) = match &outcome {
            SafetyOutcome::Holds => ("SAFE", "-".to_string()),
            o => (
                "UNSAFE",
                o.trace().map(|t| t.len().to_string()).unwrap_or_default(),
            ),
        };
        println!(
            "{:<22} {:>10} {:>10} {:>14} {:>9.2?}",
            name,
            verdict,
            stats.unique_states,
            trace_len,
            t0.elapsed()
        );
    }
    println!();
}

fn e2_connector_swap_costs() {
    println!("== E2 — plug-and-play swaps: re-verification after one block change ==");
    println!("{:<52} {:>10} {:>10}", "composition", "states", "verdict");
    let channel = ChannelKind::Fifo { capacity: 2 };
    for send in SendPortKind::ALL {
        let system = composed_pipe(send, channel, RecvPortKind::blocking(), 2);
        let report = Checker::new(system.program())
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        println!(
            "{:<52} {:>10} {:>10}",
            format!("{} -> FIFO(2) -> BlRecv(remove)", send.name()),
            report.stats.unique_states,
            if report.outcome.is_holds() {
                "ok"
            } else {
                "FAIL"
            }
        );
    }
    for ch in [
        ChannelKind::SingleSlot,
        ChannelKind::Fifo { capacity: 4 },
        ChannelKind::Priority { capacity: 2 },
        ChannelKind::Dropping { capacity: 2 },
    ] {
        let system = composed_pipe(SendPortKind::AsynBlocking, ch, RecvPortKind::blocking(), 2);
        let report = Checker::new(system.program())
            .check_safety(&SafetyChecks::deadlock_only())
            .unwrap();
        println!(
            "{:<52} {:>10} {:>10}",
            format!("AsynBlockingSend -> {} -> BlRecv(remove)", ch.name()),
            report.stats.unique_states,
            if report.outcome.is_holds() {
                "ok"
            } else {
                "FAIL"
            }
        );
    }
    println!();
}

fn e9_throughput() {
    println!("== E9 — traffic throughput, 20000 scheduler steps, mean of 5 seeds ==");
    println!(
        "{:<22} {:>12} {:>12}",
        "traffic (blue/red)", "exactly-N", "at-most-N"
    );
    for (blue, red) in [(1usize, 1usize), (1, 0)] {
        let cfg = BridgeConfig::fixed().with_cars(blue, red).with_laps(None);
        let strict = exactly_n_bridge(&cfg).unwrap();
        let flexible = at_most_n_bridge(&cfg).unwrap();
        let mean = |system: &pnp_core::System| -> f64 {
            (0..5)
                .map(|seed| {
                    let (b, r) = crossings_in(system.program(), 20_000, seed).unwrap();
                    (b + r) as f64
                })
                .sum::<f64>()
                / 5.0
        };
        println!(
            "{:<22} {:>12.1} {:>12.1}",
            format!("{blue} blue / {red} red"),
            mean(&strict),
            mean(&flexible)
        );
    }
    println!();
}

fn e10_model_reuse() {
    println!("== E10 — model-construction reuse: full rebuild vs one-block swap ==");
    // Full: construct components + connectors from scratch, N times.
    let iterations = 200;
    let t0 = Instant::now();
    for _ in 0..iterations {
        let system = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
        std::hint::black_box(system);
    }
    let scratch = t0.elapsed();

    // Reuse: keep the builder (components already constructed), swap the
    // channel kind and re-instantiate.
    let mut sys = SystemBuilder::new();
    let _g = sys.global("g", 0);
    let conn = sys.connector("wire", ChannelKind::Fifo { capacity: 2 });
    let tx = sys.send_port(conn, SendPortKind::AsynBlocking);
    let rx = sys.recv_port(conn, RecvPortKind::blocking());
    pnp_bench::pipe_components(&mut sys, &tx, &rx, 3);
    let t0 = Instant::now();
    for i in 0..iterations {
        let kind = if i % 2 == 0 {
            SendPortKind::SynBlocking
        } else {
            SendPortKind::AsynBlocking
        };
        sys.set_send_port_kind(&tx, kind);
        let system = sys.build().unwrap();
        std::hint::black_box(system);
    }
    let reuse = t0.elapsed();
    println!("full reconstruction x{iterations}: {scratch:?}");
    println!("swap-and-rebuild    x{iterations}: {reuse:?}");
    println!();
}

fn e11_fused_vs_composed() {
    println!("== E11 — Section 6 ablation: composed blocks vs fused connector ==");
    println!("{:<46} {:>10} {:>10}", "connector", "states", "time");
    for messages in [2usize, 3] {
        let composed = composed_pipe(
            SendPortKind::AsynBlocking,
            ChannelKind::Fifo { capacity: 2 },
            RecvPortKind::blocking(),
            messages,
        );
        let fused = fused_pipe(FusedConnectorKind::AsyncFifo { capacity: 2 }, messages);
        for (label, system) in [
            (format!("composed async fifo ({messages} msgs)"), composed),
            (format!("fused async fifo ({messages} msgs)"), fused),
        ] {
            let t0 = Instant::now();
            let stats = Checker::new(system.program()).state_space_size().unwrap();
            println!(
                "{:<46} {:>10} {:>9.2?}",
                label,
                stats.unique_states,
                t0.elapsed()
            );
        }
    }
    println!();
}

fn e14_scaling(full: bool) {
    println!("== E14 — verification cost scaling (exactly-N fixed bridge) ==");
    println!("{:<26} {:>12} {:>10}", "parameter", "states", "time");
    for laps in [1, 2, 3] {
        let system = exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(laps))).unwrap();
        let t0 = Instant::now();
        let (_, stats) = verify_bridge(&system, true);
        println!(
            "{:<26} {:>12} {:>9.2?}",
            format!("laps = {laps}"),
            stats.unique_states,
            t0.elapsed()
        );
    }
    if full {
        for (blue, red, n) in [(2usize, 2usize, 1i32), (2, 2, 2)] {
            let cfg = BridgeConfig::fixed()
                .with_cars(blue, red)
                .with_cars_per_turn(n)
                .with_laps(Some(1));
            let system = exactly_n_bridge(&cfg).unwrap();
            let t0 = Instant::now();
            let (_, stats) = verify_bridge(&system, true);
            println!(
                "{:<26} {:>12} {:>9.2?}",
                format!("cars {blue}+{red}, N = {n}"),
                stats.unique_states,
                t0.elapsed()
            );
        }
    }
    for capacity in [1usize, 2, 4] {
        let cfg = BridgeConfig {
            enter_channel: ChannelKind::Fifo { capacity },
            ..BridgeConfig::fixed().with_laps(Some(1))
        };
        let system = exactly_n_bridge(&cfg).unwrap();
        let t0 = Instant::now();
        let (_, stats) = verify_bridge(&system, true);
        println!(
            "{:<26} {:>12} {:>9.2?}",
            format!("enter FIFO capacity = {capacity}"),
            stats.unique_states,
            t0.elapsed()
        );
    }
    println!();
}

fn por_ablation() {
    println!("== POR ablation — partial-order reduction on the fixed bridge ==");
    println!("{:<26} {:>12} {:>10}", "reduction", "states", "time");
    let system = exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
    for (label, por) in [("off (full)", false), ("on (ample sets)", true)] {
        let t0 = Instant::now();
        let (_, stats) = verify_bridge(&system, por);
        println!(
            "{:<26} {:>12} {:>9.2?}",
            label,
            stats.unique_states,
            t0.elapsed()
        );
    }
    println!();
}
