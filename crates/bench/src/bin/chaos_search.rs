//! Unified chaos driver: the hand-written fault matrices, the
//! randomized fault-schedule search, and deterministic corpus replay —
//! one binary, three subcommands.
//!
//! * `matrix` — the curated (schedule, seed) grids that used to live in
//!   the separate `chaos` and `cluster_chaos` binaries. Storage and
//!   cluster schedule names share one `--schedule` flag; every old name
//!   still works.
//! * `search` — bounded randomized search: generate a fault schedule
//!   from a seed, run it through the invariant oracle, and on failure
//!   shrink it to a 1-minimal repro file ready to commit to
//!   `chaos-corpus/`.
//! * `replay` — re-run committed schedule files (or whole directories)
//!   deterministically; exits nonzero on any divergence, so CI replays
//!   the corpus on every PR.
//!
//! Examples:
//!
//! ```text
//! chaos_search matrix --seeds 8
//! chaos_search matrix --schedule enospc --seed 3
//! chaos_search search --arena queue --seed 7 --iterations 200 --out chaos-corpus
//! chaos_search replay chaos-corpus
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use pnp_serve::chaos::{run_schedule, Schedule};
use pnp_serve::chaosgen::{replay, replay_repro, search, Arena, BugPlant, FaultSchedule, Profile};
use pnp_serve::netchaos::{run_net_schedule, NetSchedule};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("matrix") => cmd_matrix(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("--help") | Some("-h") | None => usage(""),
        Some(other) => usage(&format!(
            "unknown subcommand '{other}' (want matrix, search, or replay)"
        )),
    }
}

/// Either kind of curated matrix schedule, behind one `--schedule` flag.
#[derive(Clone, Copy)]
enum MatrixSchedule {
    Storage(Schedule),
    Cluster(NetSchedule),
}

impl MatrixSchedule {
    fn parse(name: &str) -> Result<MatrixSchedule, String> {
        if let Ok(schedule) = Schedule::parse(name) {
            return Ok(MatrixSchedule::Storage(schedule));
        }
        if let Ok(schedule) = NetSchedule::parse(name) {
            return Ok(MatrixSchedule::Cluster(schedule));
        }
        Err(format!(
            "unknown chaos schedule '{name}' (want one of: {}, {})",
            Schedule::ALL.map(|s| s.as_str()).join(", "),
            NetSchedule::ALL.map(|s| s.as_str()).join(", ")
        ))
    }
}

fn cmd_matrix(args: &[String]) -> ExitCode {
    let mut seeds: u64 = 8;
    let mut single_seed: Option<u64> = None;
    let mut only: Option<MatrixSchedule> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seeds" => {
                let value = iter.next().cloned().unwrap_or_default();
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => seeds = n,
                    _ => return usage(&format!("--seeds '{value}': want a positive integer")),
                }
            }
            "--seed" => {
                let value = iter.next().cloned().unwrap_or_default();
                match value.parse::<u64>() {
                    Ok(n) => single_seed = Some(n),
                    _ => return usage(&format!("--seed '{value}': want an integer")),
                }
            }
            "--schedule" => {
                let value = iter.next().cloned().unwrap_or_default();
                match MatrixSchedule::parse(&value) {
                    Ok(schedule) => only = Some(schedule),
                    Err(error) => return usage(&error),
                }
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    let seed_range: Vec<u64> = match single_seed {
        Some(seed) => vec![seed],
        None => (0..seeds).collect(),
    };
    let (storage, cluster): (Vec<Schedule>, Vec<NetSchedule>) = match only {
        Some(MatrixSchedule::Storage(schedule)) => (vec![schedule], Vec::new()),
        Some(MatrixSchedule::Cluster(schedule)) => (Vec::new(), vec![schedule]),
        None => (Schedule::ALL.to_vec(), NetSchedule::ALL.to_vec()),
    };

    let mut failures = 0u64;
    if !storage.is_empty() {
        println!(
            "== storage chaos matrix: {} seed(s) x {} schedules ==",
            seed_range.len(),
            storage.len()
        );
        println!(
            "{:<20} {:>5} {:>8} {:>9} {:>10}  detail",
            "schedule", "seed", "reboots", "attempts", "identical"
        );
        for &schedule in &storage {
            for &seed in &seed_range {
                match run_schedule(schedule, seed) {
                    Ok(outcome) => {
                        println!(
                            "{:<20} {:>5} {:>8} {:>9} {:>10}  {}",
                            schedule.as_str(),
                            seed,
                            outcome.reboots,
                            outcome.attempts,
                            if outcome.identical { "yes" } else { "NO" },
                            outcome.detail,
                        );
                        if !outcome.identical {
                            failures += 1;
                        }
                    }
                    Err(error) => {
                        println!(
                            "{:<20} {:>5} {:>8} {:>9} {:>10}  {error}",
                            schedule.as_str(),
                            seed,
                            "-",
                            "-",
                            "ERROR",
                        );
                        failures += 1;
                    }
                }
            }
        }
    }
    if !cluster.is_empty() {
        println!(
            "== cluster chaos matrix: {} seed(s) x {} schedules ==",
            seed_range.len(),
            cluster.len()
        );
        println!(
            "{:<24} {:>5} {:>5} {:>6} {:>11} {:>7} {:>9} {:>9} {:>7} {:>6} {:>6} {:>6}",
            "schedule",
            "seed",
            "jobs",
            "steps",
            "migrations",
            "fenced",
            "discards",
            "snapshots",
            "hedges",
            "sheds",
            "expire",
            "trips"
        );
        for &schedule in &cluster {
            for &seed in &seed_range {
                match run_net_schedule(schedule, seed) {
                    Ok(outcome) => {
                        println!(
                            "{:<24} {:>5} {:>5} {:>6} {:>11} {:>7} {:>9} {:>9} {:>7} {:>6} {:>6} {:>6}",
                            schedule.as_str(),
                            seed,
                            outcome.jobs,
                            outcome.steps,
                            outcome.migrations,
                            outcome.fenced,
                            outcome.worker_discards,
                            outcome.snapshots_shipped,
                            outcome.hedges,
                            outcome.sheds,
                            outcome.expired,
                            outcome.breaker_trips,
                        );
                    }
                    Err(error) => {
                        println!("{:<24} {:>5} FAILED: {error}", schedule.as_str(), seed);
                        failures += 1;
                    }
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("chaos matrix: {failures} cell(s) violated an invariant");
        return ExitCode::FAILURE;
    }
    println!("chaos matrix: all cells clean");
    ExitCode::SUCCESS
}

fn cmd_search(args: &[String]) -> ExitCode {
    let mut arenas: Vec<Arena> = Arena::ALL.to_vec();
    let mut seed: u64 = 0;
    let mut profile = Profile::Medium;
    let mut iterations: u64 = 50;
    let mut plant = BugPlant::None;
    let mut out: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--arena" => {
                let value = iter.next().cloned().unwrap_or_default();
                match Arena::parse(&value) {
                    Ok(arena) => arenas = vec![arena],
                    Err(error) => return usage(&error),
                }
            }
            "--seed" => {
                let value = iter.next().cloned().unwrap_or_default();
                match value.parse::<u64>() {
                    Ok(n) => seed = n,
                    _ => return usage(&format!("--seed '{value}': want an integer")),
                }
            }
            "--profile" => {
                let value = iter.next().cloned().unwrap_or_default();
                match Profile::parse(&value) {
                    Ok(p) => profile = p,
                    Err(error) => return usage(&error),
                }
            }
            "--iterations" => {
                let value = iter.next().cloned().unwrap_or_default();
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => iterations = n,
                    _ => return usage(&format!("--iterations '{value}': want a positive integer")),
                }
            }
            "--plant" => {
                let value = iter.next().cloned().unwrap_or_default();
                match BugPlant::parse(&value) {
                    Ok(p) => plant = p,
                    Err(error) => return usage(&error),
                }
            }
            "--out" => {
                let value = iter.next().cloned().unwrap_or_default();
                if value.is_empty() {
                    return usage("--out: want a directory path");
                }
                out = Some(PathBuf::from(value));
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let mut hits = 0u64;
    for &arena in &arenas {
        println!(
            "== chaos search: arena {arena}, seed {seed}, profile {profile}, \
             up to {iterations} iterations =="
        );
        let report = search(arena, seed, profile, iterations, plant);
        match report.hit {
            None => println!(
                "{arena}: {} iteration(s), no invariant violation",
                report.iterations
            ),
            Some(hit) => {
                hits += 1;
                println!(
                    "{arena}: iteration {} (case seed {}) FAILED:\n{}",
                    hit.iteration, hit.case_seed, hit.failure
                );
                println!(
                    "  shrunk {} -> {} injection(s)",
                    hit.schedule.injections.len(),
                    hit.shrunk.injections.len()
                );
                let encoded = hit.shrunk.encode();
                match &out {
                    Some(dir) => {
                        let name = format!(
                            "{}-{}-{}.schedule",
                            arena, hit.failure.oracle, hit.case_seed
                        );
                        let path = dir.join(name);
                        if let Err(error) = std::fs::create_dir_all(dir)
                            .and_then(|()| std::fs::write(&path, &encoded))
                        {
                            eprintln!("chaos_search: cannot write {}: {error}", path.display());
                            return ExitCode::FAILURE;
                        }
                        println!("  minimized repro written to {}", path.display());
                        println!("  repro: {}", replay_repro(&path.display().to_string()));
                    }
                    None => {
                        println!("  minimized schedule:\n{}", indent(&encoded));
                        println!(
                            "  repro: save the schedule above and run: {}",
                            replay_repro("<file>")
                        );
                    }
                }
            }
        }
    }
    if hits > 0 {
        eprintln!("chaos search: {hits} arena(s) produced a minimized failure");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => return usage(""),
            other if other.starts_with("--") => {
                return usage(&format!("unknown argument '{other}'"))
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() {
        return usage("replay: want one or more schedule files or directories");
    }
    let mut files: Vec<PathBuf> = Vec::new();
    for path in paths {
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = match std::fs::read_dir(&path) {
                Ok(dir) => dir
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|ext| ext == "schedule"))
                    .collect(),
                Err(error) => {
                    eprintln!("chaos_search: cannot read {}: {error}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            entries.sort();
            if entries.is_empty() {
                eprintln!("chaos_search: {} holds no .schedule files", path.display());
                return ExitCode::FAILURE;
            }
            files.extend(entries);
        } else {
            files.push(path);
        }
    }
    println!("== chaos replay: {} schedule file(s) ==", files.len());
    let mut failures = 0u64;
    for file in &files {
        let display = file.display();
        let schedule = match std::fs::read_to_string(file)
            .map_err(|e| e.to_string())
            .and_then(|text| FaultSchedule::parse(&text))
        {
            Ok(schedule) => schedule,
            Err(error) => {
                println!("{display}: PARSE ERROR: {error}");
                failures += 1;
                continue;
            }
        };
        match replay(&schedule) {
            Ok(message) => println!("{display}: {message}"),
            Err(message) => {
                println!(
                    "{display}: DIVERGED: {message}\n  repro: {}",
                    replay_repro(&display.to_string())
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("chaos replay: {failures} schedule(s) diverged");
        return ExitCode::FAILURE;
    }
    println!("chaos replay: corpus is green");
    ExitCode::SUCCESS
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|line| format!("    {line}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("chaos_search: {error}");
    }
    eprintln!(
        "usage: chaos_search <subcommand> [flags]\n\
         \n\
         subcommands:\n\
         \x20 matrix  [--seeds N] [--seed N] [--schedule NAME]\n\
         \x20         curated fault matrices (storage + cluster); NAME accepts every\n\
         \x20         schedule of the old chaos and cluster_chaos binaries\n\
         \x20 search  [--arena storage|storage-spill|queue|cluster] [--seed N]\n\
         \x20         [--profile light|medium|heavy] [--iterations N]\n\
         \x20         [--plant none|unsynced-queue-commit] [--out DIR]\n\
         \x20         bounded randomized fault-schedule search with shrinking\n\
         \x20 replay  <file-or-dir>...\n\
         \x20         deterministically replay committed schedule files"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
