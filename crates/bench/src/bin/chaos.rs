//! Storage-chaos matrix: drives the seeded recovery harness across
//! every fault schedule and prints one row per (schedule, seed) cell.
//!
//! Run with: `cargo run -p pnp-bench --bin chaos -- --seeds 8`
//!
//! Every cell runs a verify → checkpoint → crash → reboot → resume loop
//! (or a drain/restore cycle) on a [`pnp_kernel::SimFs`] seeded from
//! the cell, and asserts the recovered results are byte-identical to an
//! uninterrupted run. The binary exits nonzero on the first divergence
//! or invariant violation, so CI can use it as a smoke gate.
//!
//! Flags:
//!
//! * `--seeds N` — seeds `0..N` per schedule (default 8)
//! * `--schedule S` — run only `checkpoint-crash`, `drain-crash`,
//!   `enospc`, `spill-crash`, `enospc-during-merge`, or
//!   `resume-after-spill` (default: all six)

use std::process::ExitCode;

use pnp_serve::chaos::{run_schedule, Schedule};

fn main() -> ExitCode {
    let mut seeds: u64 = 8;
    let mut only: Option<Schedule> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let value = args.next().unwrap_or_default();
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => seeds = n,
                    _ => return usage(&format!("--seeds '{value}': want a positive integer")),
                }
            }
            "--schedule" => {
                let value = args.next().unwrap_or_default();
                match Schedule::parse(&value) {
                    Ok(schedule) => only = Some(schedule),
                    Err(error) => return usage(&error),
                }
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let schedules: Vec<Schedule> = match only {
        Some(schedule) => vec![schedule],
        None => Schedule::ALL.to_vec(),
    };

    println!(
        "== storage chaos matrix: {seeds} seeds x {} schedules ==",
        schedules.len()
    );
    println!(
        "{:<20} {:>5} {:>8} {:>9} {:>10}  detail",
        "schedule", "seed", "reboots", "attempts", "identical"
    );
    let mut failures = 0u64;
    for &schedule in &schedules {
        for seed in 0..seeds {
            match run_schedule(schedule, seed) {
                Ok(outcome) => {
                    println!(
                        "{:<20} {:>5} {:>8} {:>9} {:>10}  {}",
                        schedule.as_str(),
                        seed,
                        outcome.reboots,
                        outcome.attempts,
                        if outcome.identical { "yes" } else { "NO" },
                        outcome.detail,
                    );
                    if !outcome.identical {
                        failures += 1;
                    }
                }
                Err(error) => {
                    println!(
                        "{:<20} {:>5} {:>8} {:>9} {:>10}  {error}",
                        schedule.as_str(),
                        seed,
                        "-",
                        "-",
                        "ERROR",
                    );
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("chaos matrix: {failures} cell(s) diverged");
        return ExitCode::FAILURE;
    }
    println!("chaos matrix: all cells recovered byte-identical");
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("chaos: {error}");
    }
    eprintln!(
        "usage: chaos [--seeds N] [--schedule checkpoint-crash|drain-crash|enospc\
         |spill-crash|enospc-during-merge|resume-after-spill]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
