//! Cluster-chaos matrix: drives a real coordinator against simulated
//! workers over a seeded [`pnp_net::SimNet`] and prints one row per
//! (schedule, seed) cell.
//!
//! Run with: `cargo run --release -p pnp-bench --bin cluster_chaos -- --seeds 8`
//!
//! Every cell submits a batch of jobs through the retrying client,
//! injects the schedule's faults (worker crash mid-job, a full
//! partition during result upload, a coordinator restart with queue
//! restore, a straggling worker, an admission-capacity burst, a
//! flapping worker) on top of a seeded background plan of drops,
//! duplicates, and resets, and asserts the exactly-once and
//! byte-identical-results invariants. The binary exits nonzero on the
//! first violation, so CI can use it as a smoke gate.
//!
//! Flags:
//!
//! * `--seeds N` — seeds `0..N` per schedule (default 8)
//! * `--schedule S` — run only `worker_crash_mid_job`,
//!   `partition_during_result`, `coordinator_restart`, `straggler`,
//!   `overload_burst`, or `flapping_worker` (default: all)

use std::process::ExitCode;

use pnp_serve::netchaos::{run_net_schedule, NetSchedule};

fn main() -> ExitCode {
    let mut seeds: u64 = 8;
    let mut only: Option<NetSchedule> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let value = args.next().unwrap_or_default();
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => seeds = n,
                    _ => return usage(&format!("--seeds '{value}': want a positive integer")),
                }
            }
            "--schedule" => {
                let value = args.next().unwrap_or_default();
                match NetSchedule::parse(&value) {
                    Ok(schedule) => only = Some(schedule),
                    Err(error) => return usage(&error),
                }
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let schedules: Vec<NetSchedule> = match only {
        Some(schedule) => vec![schedule],
        None => NetSchedule::ALL.to_vec(),
    };

    println!(
        "== cluster chaos matrix: {seeds} seeds x {} schedules ==",
        schedules.len()
    );
    println!(
        "{:<24} {:>5} {:>5} {:>6} {:>11} {:>7} {:>9} {:>9} {:>7} {:>6} {:>6} {:>6}",
        "schedule",
        "seed",
        "jobs",
        "steps",
        "migrations",
        "fenced",
        "discards",
        "snapshots",
        "hedges",
        "sheds",
        "expire",
        "trips"
    );
    let mut failures = 0u64;
    for &schedule in &schedules {
        for seed in 0..seeds {
            match run_net_schedule(schedule, seed) {
                Ok(outcome) => {
                    println!(
                        "{:<24} {:>5} {:>5} {:>6} {:>11} {:>7} {:>9} {:>9} {:>7} {:>6} {:>6} {:>6}",
                        schedule.as_str(),
                        seed,
                        outcome.jobs,
                        outcome.steps,
                        outcome.migrations,
                        outcome.fenced,
                        outcome.worker_discards,
                        outcome.snapshots_shipped,
                        outcome.hedges,
                        outcome.sheds,
                        outcome.expired,
                        outcome.breaker_trips,
                    );
                }
                Err(error) => {
                    println!("{:<24} {:>5} FAILED: {error}", schedule.as_str(), seed);
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("cluster chaos matrix: {failures} cell(s) violated an invariant");
        return ExitCode::FAILURE;
    }
    println!("cluster chaos matrix: every job completed exactly once, byte-identical");
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("cluster_chaos: {error}");
    }
    eprintln!(
        "usage: cluster_chaos [--seeds N] \
         [--schedule worker_crash_mid_job|partition_during_result|coordinator_restart\
         |straggler|overload_burst|flapping_worker]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
