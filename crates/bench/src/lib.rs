//! # pnp-bench — benchmark harness for the PnP reproduction
//!
//! Criterion benchmarks (`cargo bench`) regenerate the timing side of every
//! experiment; the `experiments` binary
//! (`cargo run --release -p pnp-bench --bin experiments`) prints the
//! state-count and outcome tables recorded in `EXPERIMENTS.md`.
//!
//! Helpers here build the standard systems the benchmarks measure.

#![warn(missing_docs)]
use pnp_bridge::{at_most_n_bridge, exactly_n_bridge, safety_invariant, BridgeConfig};
use pnp_core::{
    ChannelKind, ComponentBuilder, FusedConnectorKind, ReceiveBinds, RecvAttachment, RecvPortKind,
    SendAttachment, SendPortKind, System, SystemBuilder,
};
use pnp_kernel::{
    expr, Checker, GlobalId, Guard, SafetyChecks, SafetyOutcome, SearchConfig, SearchStats,
    VisitedKind,
};

/// Builds a producer/consumer pair around the given attachments: `messages`
/// sends, matching receives, payloads recorded to fresh globals.
pub fn pipe_components(
    sys: &mut SystemBuilder,
    tx: &SendAttachment,
    rx: &RecvAttachment,
    messages: usize,
) -> Vec<GlobalId> {
    let got: Vec<GlobalId> = (0..messages)
        .map(|i| sys.global(format!("got{i}"), 0))
        .collect();

    let mut producer = ComponentBuilder::new("producer");
    let mut at = producer.location("start");
    for i in 0..messages {
        let next = producer.location(format!("sent{i}"));
        producer.send_msg(at, next, tx, (i as i32 + 1).into(), 0.into(), None);
        at = next;
    }
    producer.mark_end(at);

    let mut consumer = ComponentBuilder::new("consumer");
    let data = consumer.local("data", 0);
    let mut cat = consumer.location("start");
    for (i, &slot) in got.iter().enumerate() {
        let mid = consumer.location(format!("recv{i}"));
        consumer.recv_msg(cat, mid, rx, None, ReceiveBinds::data_into(data));
        let next = consumer.location(format!("stored{i}"));
        consumer.transition(
            mid,
            next,
            Guard::always(),
            pnp_kernel::Action::assign(slot, expr::local(data)),
            "store",
        );
        cat = next;
    }
    consumer.mark_end(cat);

    sys.add_component(producer);
    sys.add_component(consumer);
    got
}

/// A composed pipe system: send port + channel + receive port.
pub fn composed_pipe(
    send: SendPortKind,
    channel: ChannelKind,
    recv: RecvPortKind,
    messages: usize,
) -> System {
    let mut sys = SystemBuilder::new();
    let conn = sys.connector("pipe", channel);
    let tx = sys.send_port(conn, send);
    let rx = sys.recv_port(conn, recv);
    pipe_components(&mut sys, &tx, &rx, messages);
    sys.build().expect("pipe builds")
}

/// The equivalent fused pipe system.
pub fn fused_pipe(kind: FusedConnectorKind, messages: usize) -> System {
    let mut sys = SystemBuilder::new();
    let (tx, rx) = sys.fused_connector("pipe", kind);
    pipe_components(&mut sys, &tx, &rx, messages);
    sys.build().expect("fused pipe builds")
}

/// Verifies the bridge safety property, returning outcome and stats.
pub fn verify_bridge(system: &System, por: bool) -> (SafetyOutcome, SearchStats) {
    let program = system.program();
    let checker = Checker::with_config(
        program,
        SearchConfig {
            partial_order_reduction: por,
            ..SearchConfig::default()
        },
    );
    let report = checker
        .check_safety(&SafetyChecks {
            deadlock: false,
            invariants: vec![safety_invariant(program)],
        })
        .expect("bridge evaluates");
    (report.outcome, report.stats)
}

/// Verifies the bridge's safety invariant under an explicit visited-set
/// backend, measuring the memory/coverage trade the backend makes. Returns
/// the outcome plus the search stats (`approx_memory_bytes` is the
/// backend-aware peak estimate).
pub fn verify_bridge_with_backend(
    system: &System,
    visited: VisitedKind,
) -> (SafetyOutcome, SearchStats) {
    let program = system.program();
    let report = Checker::with_config(
        program,
        SearchConfig {
            visited,
            ..SearchConfig::default()
        },
    )
    .check_safety(&SafetyChecks {
        deadlock: false,
        invariants: vec![safety_invariant(program)],
    })
    .expect("bridge evaluates");
    (report.outcome, report.stats)
}

/// Verifies the bridge safety property with `threads` worker threads (POR
/// on, exact backend). `threads == 1` is the sequential kernel; any other
/// count runs the level-synchronised parallel search, which reports the
/// same verdict and — for exhaustive runs — the same state counts.
pub fn verify_bridge_threads(system: &System, threads: usize) -> (SafetyOutcome, SearchStats) {
    let program = system.program();
    let report = Checker::with_config(
        program,
        SearchConfig {
            threads,
            ..SearchConfig::default()
        },
    )
    .check_safety(&SafetyChecks {
        deadlock: false,
        invariants: vec![safety_invariant(program)],
    })
    .expect("bridge evaluates");
    (report.outcome, report.stats)
}

/// Deadlock-checks `system` with `threads` worker threads (used for the
/// fault-pipe scaling rows, whose interesting property is deadlock).
pub fn verify_deadlock_threads(system: &System, threads: usize) -> (SafetyOutcome, SearchStats) {
    let report = Checker::with_config(
        system.program(),
        SearchConfig {
            threads,
            ..SearchConfig::default()
        },
    )
    .check_safety(&SafetyChecks::deadlock_only())
    .expect("pipe evaluates");
    (report.outcome, report.stats)
}

/// Builds the fault-injection cost ladder: the same retrying
/// producer/consumer pipe composed with a fault-free channel, each channel
/// fault decorator, and crash-restart ports on both sides. Verifying each
/// variant measures what a fault block costs the checker.
pub fn fault_pipes(messages: usize) -> Vec<(&'static str, System)> {
    let base = ChannelKind::Fifo { capacity: 2 };
    vec![
        (
            "fault-free",
            composed_pipe(
                SendPortKind::AsynBlocking,
                base,
                RecvPortKind::blocking(),
                messages,
            ),
        ),
        (
            "lossy channel",
            composed_pipe(
                SendPortKind::AsynBlocking,
                ChannelKind::lossy(base),
                RecvPortKind::blocking(),
                messages,
            ),
        ),
        (
            "duplicating channel",
            composed_pipe(
                SendPortKind::AsynBlocking,
                ChannelKind::duplicating(base),
                RecvPortKind::blocking(),
                messages,
            ),
        ),
        (
            "reordering channel",
            composed_pipe(
                SendPortKind::AsynBlocking,
                ChannelKind::reordering(base),
                RecvPortKind::blocking(),
                messages,
            ),
        ),
        (
            "crash-restart ports",
            composed_pipe(
                SendPortKind::CrashRestart,
                base,
                RecvPortKind::crash_restart(),
                messages,
            ),
        ),
    ]
}

/// Builds the standard experiment bridges.
pub fn bridges() -> Vec<(&'static str, System)> {
    vec![
        (
            "exactly-N buggy",
            exactly_n_bridge(&BridgeConfig::buggy()).unwrap(),
        ),
        (
            "exactly-N fixed",
            exactly_n_bridge(&BridgeConfig::fixed()).unwrap(),
        ),
        (
            "at-most-N (1 lap)",
            at_most_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_checkable_systems() {
        let composed = composed_pipe(
            SendPortKind::AsynBlocking,
            ChannelKind::Fifo { capacity: 2 },
            RecvPortKind::blocking(),
            2,
        );
        let fused = fused_pipe(FusedConnectorKind::AsyncFifo { capacity: 2 }, 2);
        let c = Checker::new(composed.program()).state_space_size().unwrap();
        let f = Checker::new(fused.program()).state_space_size().unwrap();
        assert!(f.unique_states < c.unique_states);
    }

    #[test]
    fn bridge_helpers_reproduce_verdicts() {
        let all = bridges();
        let (outcome, _) = verify_bridge(&all[0].1, true);
        assert!(!outcome.is_holds());
        let (outcome, _) = verify_bridge(&all[1].1, true);
        assert!(outcome.is_holds());
    }
}
