//! Model-construction benchmarks (paper experiment E10): the cost of
//! building a verifiable system model from scratch versus re-instantiating
//! after a single plug-and-play block swap (components reused).

use criterion::{criterion_group, criterion_main, Criterion};

use pnp_bench::pipe_components;
use pnp_bridge::{exactly_n_bridge, BridgeConfig};
use pnp_core::{ChannelKind, RecvPortKind, SendPortKind, SystemBuilder};

fn bridge_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_construction");

    // Full reconstruction: components and connectors from scratch.
    group.bench_function("bridge_from_scratch", |b| {
        b.iter(|| exactly_n_bridge(&BridgeConfig::buggy()).unwrap())
    });

    // Reuse: the builder retains component models; only a block changes.
    let mut sys = SystemBuilder::new();
    let conn = sys.connector("wire", ChannelKind::Fifo { capacity: 2 });
    let tx = sys.send_port(conn, SendPortKind::AsynBlocking);
    let rx = sys.recv_port(conn, RecvPortKind::blocking());
    pipe_components(&mut sys, &tx, &rx, 3);
    group.bench_function("pipe_swap_and_rebuild", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            sys.set_send_port_kind(
                &tx,
                if flip {
                    SendPortKind::SynBlocking
                } else {
                    SendPortKind::AsynBlocking
                },
            );
            sys.build().unwrap()
        })
    });

    // Reference: the same pipe built from nothing each iteration.
    group.bench_function("pipe_from_scratch", |b| {
        b.iter(|| {
            let mut sys = SystemBuilder::new();
            let conn = sys.connector("wire", ChannelKind::Fifo { capacity: 2 });
            let tx = sys.send_port(conn, SendPortKind::AsynBlocking);
            let rx = sys.recv_port(conn, RecvPortKind::blocking());
            pipe_components(&mut sys, &tx, &rx, 3);
            sys.build().unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bridge_construction);
criterion_main!(benches);
