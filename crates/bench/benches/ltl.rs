//! LTL pipeline benchmarks: formula-to-Büchi translation and an end-to-end
//! liveness check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pnp_bench::composed_pipe;
use pnp_core::{ChannelKind, RecvPortKind, SendPortKind};
use pnp_kernel::{expr, Checker, Fairness, Predicate, Proposition, SearchConfig};
use pnp_ltl::{parse, translate};

fn translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ltl_translate");
    for formula in [
        "[] (p -> <> q)",
        "[] <> p && [] <> q",
        "(p U q) R (r U p)",
        "<> [] p -> [] <> q",
        "[] (p -> (q U (r U p)))",
    ] {
        let parsed = parse(formula).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(formula), &parsed, |b, f| {
            b.iter(|| translate(&f.negated()))
        });
    }
    group.finish();
}

fn liveness_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("ltl_check");
    group.sample_size(20);
    let system = composed_pipe(
        SendPortKind::AsynBlocking,
        ChannelKind::Fifo { capacity: 2 },
        RecvPortKind::blocking(),
        2,
    );
    let program = system.program();
    let got0 = program.global_by_name("got0").unwrap();
    let delivered = Proposition::new(
        "delivered",
        Predicate::from_expr(expr::eq(expr::global(got0), 1.into())),
    );
    let formula = parse("<> delivered").unwrap();
    for (label, fairness) in [("unfair", Fairness::None), ("weak_fair", Fairness::Weak)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &fairness,
            |b, &fairness| {
                b.iter(|| {
                    Checker::new(program)
                        .check_ltl_with(&formula, std::slice::from_ref(&delivered), fairness)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn liveness_threads(c: &mut Criterion) {
    // Thread scaling of the swarmed CNDFS acceptance-cycle search (E20).
    // Weak fairness multiplies the product by the Choueka counter, so
    // this is the largest liveness workload in the suite; `threads = 1`
    // is the exact sequential nested DFS, larger counts swarm the same
    // product with per-worker successor orders.
    let mut group = c.benchmark_group("ltl_threads");
    group.sample_size(10);
    let system = composed_pipe(
        SendPortKind::AsynBlocking,
        ChannelKind::Fifo { capacity: 2 },
        RecvPortKind::blocking(),
        2,
    );
    let program = system.program();
    let got0 = program.global_by_name("got0").unwrap();
    let delivered = Proposition::new(
        "delivered",
        Predicate::from_expr(expr::eq(expr::global(got0), 1.into())),
    );
    let formula = parse("<> delivered").unwrap();
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    Checker::with_config(
                        program,
                        SearchConfig {
                            threads,
                            ..SearchConfig::default()
                        },
                    )
                    .check_ltl_with(&formula, std::slice::from_ref(&delivered), Fairness::Weak)
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, translation, liveness_check, liveness_threads);
criterion_main!(benches);
