//! LTL pipeline benchmarks: formula-to-Büchi translation and an end-to-end
//! liveness check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pnp_bench::composed_pipe;
use pnp_core::{ChannelKind, RecvPortKind, SendPortKind};
use pnp_kernel::{expr, Checker, Fairness, Predicate, Proposition};
use pnp_ltl::{parse, translate};

fn translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ltl_translate");
    for formula in [
        "[] (p -> <> q)",
        "[] <> p && [] <> q",
        "(p U q) R (r U p)",
        "<> [] p -> [] <> q",
        "[] (p -> (q U (r U p)))",
    ] {
        let parsed = parse(formula).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(formula), &parsed, |b, f| {
            b.iter(|| translate(&f.negated()))
        });
    }
    group.finish();
}

fn liveness_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("ltl_check");
    group.sample_size(20);
    let system = composed_pipe(
        SendPortKind::AsynBlocking,
        ChannelKind::Fifo { capacity: 2 },
        RecvPortKind::blocking(),
        2,
    );
    let program = system.program();
    let got0 = program.global_by_name("got0").unwrap();
    let delivered = Proposition::new(
        "delivered",
        Predicate::from_expr(expr::eq(expr::global(got0), 1.into())),
    );
    let formula = parse("<> delivered").unwrap();
    for (label, fairness) in [("unfair", Fairness::None), ("weak_fair", Fairness::Weak)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &fairness,
            |b, &fairness| {
                b.iter(|| {
                    Checker::new(program)
                        .check_ltl_with(&formula, std::slice::from_ref(&delivered), fairness)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, translation, liveness_check);
criterion_main!(benches);
