//! Front-end benchmarks: parsing and compiling architecture specifications,
//! and the end-to-end check a designer pays per edit-verify iteration.

use criterion::{criterion_group, criterion_main, Criterion};

const WIRE: &str = include_str!("../../../examples/specs/wire.pnp");
const BRIDGE: &str = include_str!("../../../examples/specs/bridge_buggy.pnp");

fn front_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("lang");
    group.bench_function("parse_bridge_spec", |b| {
        b.iter(|| pnp_lang::parse_system(BRIDGE).unwrap())
    });
    group.bench_function("compile_bridge_spec", |b| {
        b.iter(|| pnp_lang::compile(BRIDGE).unwrap())
    });
    group.sample_size(20);
    group.bench_function("verify_wire_spec_end_to_end", |b| {
        b.iter(|| {
            let spec = pnp_lang::compile(WIRE).unwrap();
            let results = spec.verify_all().unwrap();
            assert!(results.iter().all(|r| r.holds));
        })
    });
    group.finish();
}

criterion_group!(benches, front_end);
criterion_main!(benches);
