//! Verification benchmarks: the cost of checking each bridge design and
//! connector composition, plus the partial-order-reduction and fused-model
//! ablations (paper experiments E6-E8, E11, E14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pnp_bench::{
    composed_pipe, fault_pipes, fused_pipe, verify_bridge, verify_bridge_threads,
    verify_deadlock_threads,
};
use pnp_bridge::{exactly_n_bridge, BridgeConfig};
use pnp_core::{ChannelKind, FusedConnectorKind, RecvPortKind, SendPortKind};
use pnp_kernel::{Checker, SafetyChecks};

fn bridge_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("bridge_verify");
    group.sample_size(10);

    let buggy = exactly_n_bridge(&BridgeConfig::buggy()).unwrap();
    group.bench_function("buggy_find_violation", |b| {
        b.iter(|| {
            let (outcome, _) = verify_bridge(&buggy, true);
            assert!(!outcome.is_holds());
        })
    });

    let fixed = exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
    group.bench_function("fixed_exhaustive", |b| {
        b.iter(|| {
            let (outcome, _) = verify_bridge(&fixed, true);
            assert!(outcome.is_holds());
        })
    });
    group.finish();
}

fn por_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("por_ablation");
    group.sample_size(10);
    let fixed = exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
    for (label, por) in [("full", false), ("reduced", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &por, |b, &por| {
            b.iter(|| verify_bridge(&fixed, por))
        });
    }
    group.finish();
}

fn connector_compositions(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition_deadlock_check");
    for send in [
        SendPortKind::AsynNonblocking,
        SendPortKind::AsynBlocking,
        SendPortKind::SynBlocking,
    ] {
        let system = composed_pipe(
            send,
            ChannelKind::Fifo { capacity: 2 },
            RecvPortKind::blocking(),
            2,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(send.name()),
            &system,
            |b, system| {
                b.iter(|| {
                    Checker::new(system.program())
                        .check_safety(&SafetyChecks::deadlock_only())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn fused_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_vs_composed");
    let composed = composed_pipe(
        SendPortKind::AsynBlocking,
        ChannelKind::Fifo { capacity: 2 },
        RecvPortKind::blocking(),
        3,
    );
    let fused = fused_pipe(FusedConnectorKind::AsyncFifo { capacity: 2 }, 3);
    group.bench_function("composed", |b| {
        b.iter(|| Checker::new(composed.program()).state_space_size().unwrap())
    });
    group.bench_function("fused", |b| {
        b.iter(|| Checker::new(fused.program()).state_space_size().unwrap())
    });
    group.finish();
}

fn fault_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_injection_overhead");
    for (label, system) in fault_pipes(2) {
        group.bench_with_input(BenchmarkId::from_parameter(label), &system, |b, system| {
            b.iter(|| Checker::new(system.program()).state_space_size().unwrap())
        });
    }
    group.finish();
}

fn parallel_scaling(c: &mut Criterion) {
    // Thread-scaling of the safety search (paper-scale numbers live in the
    // experiments binary's E15 table; this group tracks regressions).
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    let fixed = exactly_n_bridge(&BridgeConfig::fixed().with_laps(Some(1))).unwrap();
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("bridge_fixed", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let (outcome, _) = verify_bridge_threads(&fixed, threads);
                    assert!(outcome.is_holds());
                })
            },
        );
    }

    let (label, crash_pipe) = fault_pipes(2)
        .into_iter()
        .last()
        .expect("fault ladder is non-empty");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
            b.iter(|| verify_deadlock_threads(&crash_pipe, threads))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bridge_verification,
    por_ablation,
    connector_compositions,
    fused_ablation,
    fault_overhead,
    parallel_scaling
);
criterion_main!(benches);
